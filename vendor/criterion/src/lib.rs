//! Offline stand-in for `criterion`.
//!
//! Supports the harness surface the workspace's benches use:
//! `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Each bench runs its closure for a small fixed number of
//! iterations and prints mean wall-clock per iteration — enough to compile
//! the bench targets and get a rough number offline, with none of the
//! statistical machinery. When invoked with `--test` (what `cargo test`
//! passes to `harness = false` targets) it runs a single iteration per
//! bench so test runs stay fast.

use std::hint;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortises setup; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    iterations: u64,
    /// Total measured nanoseconds across all iterations.
    elapsed_nanos: u128,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            hint::black_box(routine());
        }
        self.elapsed_nanos = start.elapsed().as_nanos();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total: u128 = 0;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_nanos = total;
    }
}

/// Stand-in for `criterion::Criterion`.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness = false benches with `--test`; keep
        // those invocations to one iteration so the tier-1 suite stays fast.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iterations: if test_mode { 1 } else { 100 },
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed_nanos: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_nanos / u128::from(b.iterations.max(1));
        println!(
            "bench {id}: {per_iter} ns/iter ({} iterations)",
            b.iterations
        );
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { iterations: 3 };
        let mut runs = 0u64;
        c.bench_function("probe", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_pairs_setup_with_routine() {
        let mut c = Criterion { iterations: 4 };
        let mut consumed = Vec::new();
        c.bench_function("batched", |b| {
            let consumed = &mut consumed;
            let mut next = 0;
            b.iter_batched(
                move || {
                    next += 1;
                    next
                },
                |v| consumed.push(v),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(consumed, vec![1, 2, 3, 4]);
    }
}

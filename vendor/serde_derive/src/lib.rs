//! Offline stand-in for `serde_derive`.
//!
//! The workspace only ever *annotates* types with
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` field attributes;
//! nothing serializes at runtime (there is no `serde_json` anywhere). These
//! derives therefore expand to nothing — they exist so the annotations parse
//! and the `#[serde]` helper attribute is registered.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`
//! (which has itself been crossbeam-based since Rust 1.67). `Sender` is a
//! single cloneable type whether the channel was created `bounded` or
//! `unbounded`, matching the crossbeam API the runtime relies on.

pub mod channel {
    use std::sync::mpsc;

    /// Cloneable sending half of a channel.
    pub struct Sender<T>(SenderKind<T>);

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking if the channel is bounded and full. Errors only
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Drain whatever is currently queued without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }
    }

    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without a `T: Debug` bound, so callers can
    // `.expect(..)` sends of non-Debug message types.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }

    /// Channel that blocks senders once `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip_preserves_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(
                rx.try_iter().collect::<Vec<_>>(),
                (0..10).collect::<Vec<_>>()
            );
        }

        #[test]
        fn bounded_reply_channel_works_across_threads() {
            let (tx, rx) = bounded(1);
            std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv(), Ok(42));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}

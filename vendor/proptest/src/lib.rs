//! Offline stand-in for `proptest`.
//!
//! Implements the exact surface the workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy, ..) { .. } }`
//! * `prop_assert!` / `prop_assert_eq!` (with optional format messages)
//! * range strategies (`0.0..1.0f64`, `0u64..200`, ...), tuple strategies,
//!   and `prop::collection::vec(elem, len_range)`
//! * `ProptestConfig::with_cases(n)`
//!
//! Unlike the real crate it is fully deterministic: inputs come from a
//! splitmix64 stream seeded by the test's module path and case index, so
//! every run on every machine explores the same cases. There is no
//! shrinking — on failure the macro panics with the case index, which is
//! enough to reproduce (the same index regenerates the same input).

use std::fmt;

/// Per-`proptest!` configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the deterministic suite
        // fast while still exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-family macros inside a test body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seed a generator from a test identifier and case index (FNV-1a over the
/// name, mixed with the case number).
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng {
        state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A deterministic input generator. Ranges, tuples of strategies, and
    /// `collection::vec` all implement this.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            let v: f64 = f64::from(self.start) + rng.next_f64() * f64::from(self.end - self.start);
            v as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    if span == 0 {
                        return self.start;
                    }
                    let offset = (rng.next_u64() as u128) % span;
                    ((self.start as u128).wrapping_add(offset)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let start = *self.start();
                    let span = (*self.end() as u128)
                        .wrapping_sub(start as u128)
                        .wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every value is valid.
                        return rng.next_u64() as $t;
                    }
                    let offset = (rng.next_u64() as u128) % span;
                    ((start as u128).wrapping_add(offset)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
    );
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element_strategy, min..max)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, TestCaseError};

    /// Mirror of `proptest::prelude::prop` — the module-style entry point
    /// (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Like `assert!` but returns a [`TestCaseError`] so the harness can report
/// the failing case index before panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` but routed through [`TestCaseError`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// The `proptest!` block: expands each `fn name(pat in strategy, ..) { body }`
/// into a plain `#[test]`-able function that runs the body over
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)), case);
                $(
                    let $parm = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} of {}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::rng_for("x", 3);
        let mut b = crate::rng_for("x", 3);
        let s = prop::collection::vec(0.0..1.0f64, 1..50);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::rng_for("bounds", 0);
        for case in 0..10_000 {
            let _ = case;
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_binds_tuples_and_vecs(
            (a, b) in (0u32..10, 0.0..1.0f64),
            mut xs in prop::collection::vec(0u64..100, 1..5),
        ) {
            xs.sort_unstable();
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b), "b out of range: {}", b);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}

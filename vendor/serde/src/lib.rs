//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and metric
//! types as forward-looking annotations but never serializes through serde
//! at runtime (all JSON/CSV output is hand-rolled for byte-stability). This
//! stand-in provides the trait names and re-exports the no-op derives so
//! those annotations compile without the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (never invoked at runtime).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (never invoked at runtime).
pub trait Deserialize<'de> {}

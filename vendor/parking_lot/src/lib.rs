//! Offline stand-in for `parking_lot`.
//!
//! Provides `Mutex` with the parking_lot signature (`lock()` returns the
//! guard directly, no poisoning `Result`) over `std::sync::Mutex`. A
//! poisoned lock is recovered rather than propagated — panicking while
//! holding one of these locks already fails the owning test or bench.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}

//! Deployment-level workload intelligence: the WebConf scenario (Fig. 4).
//!
//! A WebConf deployment keeps *average* utilization below 50 % so it can
//! absorb a failed availability zone. A VM-local overclocking policy sees
//! only the hot VM and overclocks it — wasting lifetime budget — while a
//! deployment-aware policy recognizes the goal is already met. The example
//! then fails a zone to show when deployment-aware overclocking *does*
//! engage.
//!
//! Run with: `cargo run --release --example webconf_deployment`

use simcore::time::SimTime;
use smartoclock::wi::{GlobalWiAgent, MetricKind, MetricTrigger, OverclockPolicy, VmMetrics};
use soc_power::freq::FrequencyPlan;
use soc_workloads::webconf::WebConfDeployment;

fn main() {
    let plan = FrequencyPlan::amd_reference();
    let mut dep = WebConfDeployment::new(plan.turbo(), 0.5);
    // Two zones' worth of VMs: zone A lightly loaded, zone B hot.
    let a1 = dep.add_vm(0.10);
    let a2 = dep.add_vm(0.25);
    let b1 = dep.add_vm(0.80);
    let b2 = dep.add_vm(0.65);

    // Deployment-aware policy: utilization trigger + deployment goal.
    let mut policy = OverclockPolicy::latency(1.0, 0.5); // placeholder trigger, replaced below
    policy.trigger = Some(MetricTrigger::new(MetricKind::CpuUtilization, 0.55, 0.35));
    policy.deployment_goal = Some(0.5);
    let mut wi = GlobalWiAgent::new(policy);

    let report = |dep: &WebConfDeployment| -> Vec<VmMetrics> {
        (0..dep.vm_count())
            .map(|i| VmMetrics {
                tail_latency_ms: f64::NAN,
                cpu_utilization: dep.vm_utilization(i),
                queue_length: 0.0,
            })
            .collect()
    };

    println!("--- normal operation ---");
    for (name, i) in [("A1", a1), ("A2", a2), ("B1", b1), ("B2", b2)] {
        println!("VM {name}: utilization {:.2}", dep.vm_utilization(i));
    }
    println!(
        "deployment utilization: {:.2} (goal 0.50)",
        dep.deployment_utilization()
    );
    println!(
        "VM-local policy (>70% util) would overclock VMs {:?}",
        dep.vms_above(0.7)
    );
    wi.report(report(&dep));
    let d = wi.decide(SimTime::ZERO);
    println!(
        "deployment-aware decision: overclock = {} (goal already met)\n",
        d.overclock
    );
    assert!(!d.overclock);

    println!("--- zone A fails: its load lands on zone B ---");
    let mut failed = WebConfDeployment::new(plan.turbo(), 0.5);
    let b1 = failed.add_vm(0.80 + 0.10); // absorbs A1
    let b2 = failed.add_vm(0.65 + 0.25); // absorbs A2
    println!(
        "VM B1: {:.2}, VM B2: {:.2}",
        failed.vm_utilization(b1),
        failed.vm_utilization(b2)
    );
    println!(
        "deployment utilization: {:.2}",
        failed.deployment_utilization()
    );
    wi.report(report(&failed));
    let d = wi.decide(SimTime::ZERO);
    println!("deployment-aware decision: overclock = {}", d.overclock);
    assert!(d.overclock);

    // Overclocking the surviving VMs brings utilization back down.
    failed.set_frequency(b1, plan.max_overclock());
    failed.set_frequency(b2, plan.max_overclock());
    println!(
        "after overclocking both VMs to {}: deployment utilization {:.2}",
        plan.max_overclock(),
        failed.deployment_utilization()
    );
}

//! Heterogeneous power budgeting across a rack, end to end.
//!
//! Generates a synthetic rack trace, builds per-server power and demand
//! templates from the first week (exactly what the sOAs exchange with the
//! gOA, §IV-C), and prints the heterogeneous budget split at three times of
//! day against the even split — showing how servers with more overclocking
//! demand receive larger budgets without exceeding the rack limit.
//!
//! Run with: `cargo run --release --example rack_budgeting`

use simcore::time::{SimDuration, SimTime};
use smartoclock::goa::{GlobalOverclockAgent, ServerProfile};
use smartoclock::policy::PolicyKind;
use soc_traces::gen::{FleetConfig, TraceGenerator};

fn main() {
    let mut cfg = FleetConfig::small_test();
    cfg.servers_per_rack_min = 6;
    cfg.servers_per_rack_max = 6;
    cfg.span = SimDuration::WEEK;
    let generator = TraceGenerator::new(7);
    let rack = generator.generate_rack(&cfg, 0);
    let model = &generator.model_for(rack.generation);
    let oc_freq = model.plan().max_overclock();

    // Build the profiles the sOAs would exchange with the gOA.
    let profiles: Vec<ServerProfile> = rack
        .servers
        .iter()
        .map(|s| ServerProfile::from_history(&s.power, &s.oc_demand_cores, model, oc_freq, 0.9))
        .collect();

    let goa = GlobalOverclockAgent::new(rack.limit, PolicyKind::SmartOClock);
    let even = rack.limit / profiles.len() as f64;

    println!(
        "rack limit: {} across {} servers (even share {even})\n",
        rack.limit,
        profiles.len()
    );
    for hour in [3u64, 11, 20] {
        // Predict for the Tuesday after the training week.
        let t = SimTime::ZERO + SimDuration::from_days(8) + SimDuration::from_hours(hour);
        let budgets = goa.budgets_at(t, &profiles);
        println!("{:02}:00 —", hour);
        for (i, (b, p)) in budgets.iter().zip(&profiles).enumerate() {
            let d = p.demand_at(t);
            println!(
                "  server {i}: regular {:>7}, OC demand {:>6} -> budget {:>7} ({:+.0}W vs even)",
                d.regular,
                d.overclock_demand,
                b,
                b.get() - even.get(),
            );
        }
        let total: f64 = budgets.iter().map(|b| b.get()).sum();
        assert!(
            (total - rack.limit.get()).abs() < 1e-6,
            "split must conserve the limit"
        );
        println!("  (sum = {:.0}W = rack limit)\n", total);
    }
    println!(
        "Servers whose history shows more overclocking demand receive a larger \
         share of the headroom — the §IV-C split — while the total never \
         exceeds the rack limit."
    );
}

//! Quickstart: the SmartOClock control loop on one server, in ~60 lines.
//!
//! Builds a Server Overclocking Agent, installs a power template and a
//! budget, submits a metrics-based overclocking request, and drives the
//! prioritized feedback loop — watching the frequency ramp, a rack warning
//! force a retreat, and a capping event reset exploration.
//!
//! Run with: `cargo run --release --example quickstart`

use simcore::series::TimeSeries;
use simcore::time::{SimDuration, SimTime};
use smartoclock::config::SoaConfig;
use smartoclock::messages::OverclockRequest;
use smartoclock::policy::PolicyKind;
use smartoclock::soa::ServerOverclockAgent;
use soc_power::model::PowerModel;
use soc_power::rack::RackSignal;
use soc_power::units::{MegaHertz, Watts};
use soc_predict::template::{PowerTemplate, TemplateKind};

fn main() {
    // A 64-core reference server (100 W idle, ~400 W at full turbo load).
    let model = PowerModel::reference_server();
    let mut soa = ServerOverclockAgent::new(model, SoaConfig::reference(), PolicyKind::SmartOClock);

    // The gOA assigned this server a 320 W budget from the rack split.
    soa.set_power_budget(Watts::new(320.0));

    // Its regular draw is predictable: ~250 W around the clock this week.
    let history = TimeSeries::generate(
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::WEEK,
        SimDuration::from_minutes(5),
        |_| 250.0,
    );
    soa.set_power_template(PowerTemplate::build(&history, TemplateKind::DailyMed));

    // A VM asks to overclock 8 cores to 4.0 GHz.
    let request = OverclockRequest::metrics_based("vm-0", 8, MegaHertz::new(4000));
    let grant = soa
        .request_overclock(SimTime::ZERO, request)
        .expect("admission control accepts: 250W predicted + OC delta < 320W budget");
    println!(
        "granted {grant}; weekly overclocking budget: {}",
        soa.lifetime_remaining()
    );

    // Drive the control loop. The measured draw tracks the commanded
    // frequency loosely; we script a few phases to show the behaviour.
    let phases: &[(u64, f64, Option<RackSignal>, &str)] = &[
        (1, 260.0, None, "headroom: frequency steps up"),
        (2, 270.0, None, "still ramping"),
        (3, 280.0, None, "still ramping"),
        (4, 300.0, None, "hold band reached"),
        (
            5,
            318.0,
            None,
            "constrained below target: exploration begins",
        ),
        (
            6,
            330.0,
            Some(RackSignal::Warning),
            "rack warning: retreat + backoff",
        ),
        (7, 300.0, None, "backed off"),
        (
            8,
            335.0,
            Some(RackSignal::Capping),
            "capping event: reset to assigned budget",
        ),
    ];
    for &(sec, watts, signal, note) in phases {
        let now = SimTime::from_secs(sec);
        let events = soa.control_tick(now, Watts::new(watts), signal);
        let freq = soa
            .grant(grant)
            .map(|g| g.current.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "t={sec}s draw={watts:.0}W budget={} freq={} | {note}{}",
            soa.effective_budget(),
            freq,
            if events.is_empty() {
                String::new()
            } else {
                format!(" | events: {events:?}")
            },
        );
    }

    let stats = soa.stats();
    println!(
        "\nrequests={} granted={} warning-retreats={} capping-resets={}",
        stats.requests, stats.granted, stats.warning_retreats, stats.capping_resets
    );
}

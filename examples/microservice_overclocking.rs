//! A latency-critical microservice riding out a load spike with
//! metrics-based overclocking.
//!
//! Couples the open-loop queueing simulator (`soc-workloads`) to a Workload
//! Intelligence agent and a Server Overclocking Agent: when the P99 tail
//! crosses the trigger threshold during the spike, the WI agent requests
//! overclocking, the sOA grants it, and the feedback loop ramps the VM from
//! 3.3 GHz toward 4.0 GHz — pulling the tail back under the SLO without
//! scaling out.
//!
//! Run with: `cargo run --release --example microservice_overclocking`

use simcore::series::TimeSeries;
use simcore::time::{SimDuration, SimTime};
use smartoclock::config::SoaConfig;
use smartoclock::messages::{OverclockRequest, SoaEvent};
use smartoclock::policy::PolicyKind;
use smartoclock::soa::ServerOverclockAgent;
use smartoclock::wi::{GlobalWiAgent, OverclockPolicy, VmMetrics};
use soc_power::model::PowerModel;
use soc_power::units::Watts;
use soc_predict::template::{PowerTemplate, TemplateKind};
use soc_workloads::loadgen::RateSchedule;
use soc_workloads::microservice::MicroserviceSim;
use soc_workloads::socialnet::socialnet_service;

fn main() {
    let model = PowerModel::reference_server();
    let plan = model.plan();
    let spec = socialnet_service("ComposePost").expect("catalog service");
    let slo = spec.slo_ms();

    // Steady 45% load with a 3-minute spike to 95% in the middle.
    let base = 0.45 * spec.capacity_per_vm(1.0);
    let spike = 0.95 * spec.capacity_per_vm(1.0);
    let schedule = RateSchedule::constant(base)
        .with_segment(SimTime::from_secs(180), spike)
        .with_segment(SimTime::from_secs(360), base);
    let mut sim = MicroserviceSim::new(spec.clone(), plan.turbo(), schedule, 1, 42);

    // Workload Intelligence: overclock when P99 > 0.9·SLO, stop below 0.45·SLO.
    let mut wi = GlobalWiAgent::new(OverclockPolicy::latency(0.9 * slo, 0.45 * slo));

    // The server agent with a generous budget and a flat template.
    let mut soa = ServerOverclockAgent::new(model, SoaConfig::reference(), PolicyKind::SmartOClock);
    soa.set_power_budget(Watts::new(400.0));
    let history = TimeSeries::generate(
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::WEEK,
        SimDuration::from_minutes(5),
        |_| 220.0,
    );
    soa.set_power_template(PowerTemplate::build(&history, TemplateKind::DailyMed));

    println!("SLO = {slo:.0} ms; spike from t=180s to t=360s\n");
    println!(
        "{:>4}  {:>9} {:>8} {:>9} {:>11}",
        "t(s)", "P99(ms)", "util", "freq", "overclock?"
    );
    let mut grant = None;
    for window in 1..=36u64 {
        let now = SimTime::from_secs(window * 15);
        let stats = sim.advance_window(now);
        wi.report(vec![VmMetrics {
            tail_latency_ms: stats.p99_ms,
            cpu_utilization: stats.cpu_utilization,
            queue_length: sim.in_system() as f64,
        }]);
        let decision = wi.decide(now);
        match (decision.overclock, grant) {
            (true, None) => {
                let req = OverclockRequest::metrics_based(
                    "compose-post",
                    spec.cores_per_vm,
                    plan.max_overclock(),
                );
                match soa.request_overclock(now, req) {
                    Ok(id) => grant = Some(id),
                    Err(reason) => println!("      request rejected: {reason}"),
                }
            }
            (false, Some(id)) => {
                soa.end_overclock(now, id);
                sim.set_all_frequencies(plan.turbo());
                grant = None;
            }
            _ => {}
        }
        // Feedback loop: measured power tracks utilization and frequency.
        let freq = grant
            .and_then(|id| soa.grant(id))
            .map_or(plan.turbo(), |g| g.current);
        let measured = model.server_power_uniform(stats.cpu_utilization, freq);
        for event in soa.control_tick(now, measured, None) {
            if let SoaEvent::SetFrequency { frequency, .. } = event {
                sim.set_all_frequencies(frequency);
            }
        }
        let freq = grant
            .and_then(|id| soa.grant(id))
            .map_or(plan.turbo(), |g| g.current);
        println!(
            "{:>4}  {:>9.1} {:>8.2} {:>9} {:>11}",
            now.as_secs_f64(),
            stats.p99_ms,
            stats.cpu_utilization,
            freq.to_string(),
            if grant.is_some() { "yes" } else { "" },
        );
    }
    println!(
        "\nThe spike drives P99 past {:.0} ms at turbo; overclocking to 4.0 GHz \
         absorbs it without adding a VM, and the grant is released when the \
         tail falls back below {:.0} ms.",
        0.9 * slo,
        0.45 * slo
    );
}

//! Schedule-based overclocking with budget reservations and threshold
//! inference.
//!
//! A workload with a predictable 9–10 AM peak (§IV-A "workloads that have
//! predictable times for high traffic … can use schedule-based thresholds")
//! reserves its overclocking budget in advance, guaranteeing a predictable
//! experience; the example also shows §IV-A's threshold inference deriving
//! a metrics-based trigger from a week of latency history.
//!
//! Run with: `cargo run --release --example schedule_based`

use simcore::rng::Pcg32;
use simcore::series::TimeSeries;
use simcore::time::{SimDuration, SimTime};
use smartoclock::config::SoaConfig;
use smartoclock::infer::{expected_duty_cycle, infer_trigger, InferenceConfig};
use smartoclock::messages::OverclockRequest;
use smartoclock::policy::PolicyKind;
use smartoclock::soa::ServerOverclockAgent;
use smartoclock::wi::{GlobalWiAgent, MetricKind, OverclockPolicy, ScheduleWindow};
use soc_power::model::PowerModel;
use soc_power::units::Watts;
use soc_predict::template::{PowerTemplate, TemplateKind};

fn main() {
    let model = PowerModel::reference_server();
    let plan = model.plan();

    // --- Part 1: schedule-based reservation. ---
    println!("--- schedule-based overclocking (9-10 AM weekdays) ---");
    let policy = OverclockPolicy::scheduled(vec![ScheduleWindow::new(9.0, 10.0, false)]);
    let mut wi = GlobalWiAgent::new(policy);

    let mut soa = ServerOverclockAgent::new(model, SoaConfig::reference(), PolicyKind::SmartOClock);
    soa.set_power_budget(Watts::new(400.0));
    let history = TimeSeries::generate(
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::WEEK,
        SimDuration::from_minutes(5),
        |_| 220.0,
    );
    soa.set_power_template(PowerTemplate::build(&history, TemplateKind::DailyMed));

    // Monday 8:55 — the WI agent knows the peak is coming and reserves one
    // hour of budget for the scheduled window.
    let pre_peak = SimTime::ZERO + SimDuration::from_hours(8) + SimDuration::from_minutes(55);
    println!("budget before reservation: {}", soa.lifetime_remaining());
    let request =
        OverclockRequest::scheduled("frontend", 16, plan.max_overclock(), SimDuration::HOUR);
    let grant = soa
        .request_overclock(pre_peak, request)
        .expect("reservation fits the budget");
    println!(
        "reserved 1h at {} for grant {grant}; unreserved budget now {}",
        plan.max_overclock(),
        soa.lifetime_remaining()
    );

    // During the window the schedule keeps the WI decision on; after 10 AM
    // the sOA expires the grant on its own.
    for (h, m) in [(9u64, 0u64), (9, 30), (10, 1)] {
        let t = SimTime::ZERO + SimDuration::from_hours(h) + SimDuration::from_minutes(m);
        let decision = wi.decide(t);
        let events = soa.control_tick(t, Watts::new(300.0), None);
        println!(
            "{:02}:{:02} schedule-wants-overclock={} active-grants={}{}",
            h,
            m,
            decision.overclock,
            soa.grants().count(),
            if events.is_empty() {
                String::new()
            } else {
                format!(" events={events:?}")
            },
        );
    }

    // --- Part 2: threshold inference (§IV-A). ---
    println!("\n--- inferred metrics-based thresholds ---");
    let mut rng = Pcg32::seed_from_u64(11);
    let mut latency_history = Vec::new();
    for _day in 0..7 {
        for slot in 0..288 {
            let hour = slot as f64 / 12.0;
            let base = if (9.0..11.4).contains(&hour) {
                105.0
            } else {
                55.0
            };
            latency_history.push(base + rng.sample_normal(0.0, 3.0));
        }
    }
    let cfg = InferenceConfig::reference();
    let trigger = infer_trigger(MetricKind::TailLatencyMs, &latency_history, cfg);
    let duty = expected_duty_cycle(&latency_history, trigger);
    println!(
        "history of {} samples -> scale-up {:.1} ms, scale-down {:.1} ms",
        latency_history.len(),
        trigger.scale_up,
        trigger.scale_down
    );
    println!(
        "that trigger would have overclocked {:.1}% of the time (budget: {:.0}%)",
        duty * 100.0,
        cfg.overclock_time_fraction * 100.0
    );
}

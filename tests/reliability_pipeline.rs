//! Cross-crate integration: wear model + budgets + sOA lifetime management
//! across epochs (§III-Q2 and §IV-B together).

use simcore::time::{SimDuration, SimTime};
use smartoclock::config::SoaConfig;
use smartoclock::messages::{GrantEndReason, OverclockRequest, SoaEvent};
use smartoclock::policy::PolicyKind;
use smartoclock::soa::ServerOverclockAgent;
use soc_cluster::ageing::{cumulative_ageing, fig7_utilization, AgeingPolicy};
use soc_power::model::PowerModel;
use soc_power::units::Watts;
use soc_reliability::wear::WearModel;

fn soa_with_budget(scale: f64) -> ServerOverclockAgent {
    let mut soa = ServerOverclockAgent::new(
        PowerModel::reference_server(),
        SoaConfig::reference(),
        PolicyKind::SmartOClock,
    );
    soa.set_power_budget(Watts::new(450.0));
    if scale < 1.0 {
        soa.scale_lifetime_budget(scale);
    }
    soa
}

#[test]
fn budget_enforcement_bounds_actual_wear() {
    // Run an sOA for a simulated week with an always-on overclock request;
    // the lifetime budget must cap total overclocked time at the configured
    // fraction, which in turn bounds the wear-model ageing.
    let mut soa = soa_with_budget(1.0);
    let wear = WearModel::default();
    let plan = PowerModel::reference_server().plan();
    let mut grant = soa
        .request_overclock(
            SimTime::ZERO,
            OverclockRequest::metrics_based("vm", 8, plan.max_overclock()),
        )
        .ok();

    let tick = SimDuration::from_minutes(10);
    let mut overclocked = SimDuration::ZERO;
    let mut t = SimTime::ZERO;
    let horizon = SimTime::ZERO + SimDuration::WEEK;
    while t < horizon {
        t += tick;
        let events = soa.control_tick(t, Watts::new(300.0), None);
        let ended = events.iter().any(|e| {
            matches!(
                e,
                SoaEvent::GrantEnded {
                    reason: GrantEndReason::LifetimeBudgetExhausted,
                    ..
                }
            )
        });
        if grant.is_some() {
            if soa.grants().next().is_some() {
                overclocked += tick;
            }
            if ended {
                grant = None;
            }
        }
    }
    let fraction = overclocked.ratio(SimDuration::WEEK);
    assert!(
        fraction <= 0.22,
        "overclocked {fraction:.3} of the week; budget (10% + carry-over headroom) exceeded"
    );
    // The extra ageing from that bounded overclocking stays bounded too.
    let oc_accel = wear.voltage_acceleration(plan.max_overclock());
    let worst_extra_rate = fraction * (oc_accel - 1.0) * 2.22; // β·u²≤β
    assert!(
        worst_extra_rate < 2.0,
        "bounded OC time implies bounded wear impact"
    );
}

#[test]
fn restricted_budgets_exhaust_proportionally_faster() {
    let plan = PowerModel::reference_server().plan();
    let mut ends = Vec::new();
    for scale in [0.04, 0.02] {
        let mut soa = soa_with_budget(scale);
        let _ = soa
            .request_overclock(
                SimTime::ZERO,
                OverclockRequest::metrics_based("vm", 4, plan.max_overclock()),
            )
            .unwrap();
        let mut t = SimTime::ZERO;
        let mut end_at = None;
        for _ in 0..2000 {
            t += SimDuration::from_minutes(5);
            let events = soa.control_tick(t, Watts::new(300.0), None);
            if events
                .iter()
                .any(|e| matches!(e, SoaEvent::GrantEnded { .. }))
            {
                end_at = Some(t);
                break;
            }
        }
        ends.push(end_at.expect("budget must exhaust"));
    }
    assert!(
        ends[0] > ends[1],
        "the larger budget must last longer: {:?}",
        ends
    );
}

#[test]
fn fig7_policies_and_budget_agree_on_affordable_fraction() {
    // The offline wear model's affordable fraction and the online
    // overclock-aware policy must roughly agree.
    let wear = WearModel::default();
    let util = fig7_utilization(5);
    let plan = wear.curve().plan();
    let aware = cumulative_ageing(
        &wear,
        &util,
        AgeingPolicy::OverclockAware { threshold: 0.5 },
    );
    let expected = cumulative_ageing(&wear, &util, AgeingPolicy::Expected);
    assert!(*aware.last().unwrap() <= *expected.last().unwrap() + 1e-9);

    let baseline_rate = {
        let non_oc = cumulative_ageing(&wear, &util, AgeingPolicy::NonOverclocked);
        non_oc.last().unwrap() / 5.0
    };
    let frac = wear.affordable_overclock_fraction(
        baseline_rate,
        0.6,
        plan.max_overclock(),
        wear.reference_temp_c(),
    );
    assert!(frac > 0.0 && frac < 1.0, "affordable fraction {frac}");
}

//! Chaos regression suite: graceful degradation under deterministic fault
//! injection.
//!
//! Three guarantees are pinned here across the public crate APIs:
//!
//! 1. **Safety under faults** — with local (decentralized) enforcement, the
//!    post-enforcement rack draw never exceeds the contracted limit under
//!    *any* generated fault plan: gOA outages, dropped/delayed budget
//!    updates, telemetry gaps, prediction bias/noise, and sOA restarts.
//! 2. **Deterministic chaos** — fault schedules are part of the seed: the
//!    same `FaultPlanConfig` reproduces byte-identical traces, metrics and
//!    outcomes, and `--threads N` matches `--threads 1` with faults active
//!    (CI runs this at `SOC_SIM_THREADS=1` and `=4`).
//! 3. **Zero-fault transparency** — a plan whose probabilities are all zero
//!    leaves every trace byte-identical to a run with the default (no-op)
//!    fault config, regardless of the fault seed.
//!
//! A fail-open centralized baseline under a long outage is the teeth of the
//! suite: it must violate the budget, proving the invariant in (1) is not
//! vacuous.

use simcore::faults::FaultPlanConfig;
use simcore::time::SimDuration;
use smartoclock::policy::PolicyKind;
use soc_cluster::harness::{ClusterConfig, SystemKind};
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::largescale_metrics::RackOutcome;
use soc_cluster::shard::{run_cluster_sims, simulate_policy_sharded};
use soc_reliability::binning::BinningConfig;
use soc_telemetry::json::event_to_json;
use soc_telemetry::Telemetry;

/// The "many threads" side of the invariance checks (see
/// `tests/determinism.rs`); CI sets `SOC_SIM_THREADS` to 1 and 4.
fn multi_threads() -> usize {
    std::env::var("SOC_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

/// An aggressive every-fault-at-once plan, parameterized by seed.
fn hostile_faults(seed: u64) -> FaultPlanConfig {
    FaultPlanConfig {
        seed,
        goa_outages: 2,
        goa_outage_len: SimDuration::from_hours(12),
        budget_drop_prob: 0.3,
        budget_delay_prob: 0.3,
        budget_delay: SimDuration::from_minutes(30),
        telemetry_gap_prob: 0.2,
        prediction_bias: 0.9, // systematic under-prediction: worst case
        prediction_noise: 0.1,
        soa_restart_prob: 0.01,
    }
}

fn faulted_config(sim_seed: u64, fault_seed: u64) -> LargeScaleConfig {
    let mut cfg = LargeScaleConfig::small_test();
    cfg.seed = sim_seed;
    cfg.faults = hostile_faults(fault_seed);
    cfg
}

/// Run one traced policy simulation; return (trace lines, rendered metrics,
/// outcomes).
fn traced_run(
    cfg: &LargeScaleConfig,
    policy: PolicyKind,
    threads: usize,
) -> (
    Vec<String>,
    String,
    Vec<soc_cluster::largescale_metrics::RackOutcome>,
) {
    let (tm, sink) = Telemetry::memory();
    let outcomes = simulate_policy_sharded(cfg, policy, &tm, threads);
    let lines: Vec<String> = sink.events().iter().map(event_to_json).collect();
    let metrics = tm.metrics_snapshot().render();
    (lines, metrics, outcomes)
}

#[test]
fn rack_power_never_exceeds_budget_under_any_fault_plan() {
    for fault_seed in [1, 2, 3] {
        let cfg = faulted_config(42, fault_seed);
        let outcomes =
            simulate_policy_sharded(&cfg, PolicyKind::SmartOClock, &Telemetry::disabled(), 1);
        let stale: u64 = outcomes.iter().map(|o| o.stale_budget_steps).sum();
        assert!(
            stale > 0,
            "fault seed {fault_seed}: outages must actually land in the horizon"
        );
        for o in &outcomes {
            assert_eq!(
                o.violation_steps, 0,
                "fault seed {fault_seed}, rack {}: local enforcement must hold the budget",
                o.rack
            );
            assert!(
                o.max_draw <= o.limit,
                "fault seed {fault_seed}, rack {}: max draw {:?} exceeds limit {:?}",
                o.rack,
                o.max_draw,
                o.limit
            );
        }
    }
}

#[test]
fn fail_open_central_violates_under_long_outage_proving_teeth() {
    // The safety invariant above must not pass vacuously: the same fault
    // plans against a fail-open centralized controller (grants keep running
    // unenforced while the arbiter is down) do violate the budget. Whether
    // a given outage window overlaps enough overclock demand depends on
    // where it lands, so the check sums over the same fault seeds the
    // safety test sweeps.
    let mut violations = 0u64;
    for fault_seed in [1, 2, 3] {
        let mut cfg = faulted_config(42, fault_seed);
        cfg.central_fail_open = true;
        let outcomes =
            simulate_policy_sharded(&cfg, PolicyKind::Central, &Telemetry::disabled(), 1);
        violations += outcomes.iter().map(|o| o.violation_steps).sum::<u64>();
    }
    assert!(
        violations > 0,
        "fail-open central under 12h outages must violate the budget \
         (otherwise the zero-violation invariant proves nothing)"
    );
}

#[test]
fn fault_schedules_are_byte_reproducible() {
    let cfg = faulted_config(7, 11);
    let a = traced_run(&cfg, PolicyKind::SmartOClock, 1);
    let b = traced_run(&cfg, PolicyKind::SmartOClock, 1);
    assert!(!a.0.is_empty(), "faulted runs must emit trace events");
    assert_eq!(a.0, b.0, "same fault seed must emit identical trace lines");
    assert_eq!(a.1, b.1, "same fault seed must render identical metrics");
    assert_eq!(a.2, b.2, "same fault seed must produce identical outcomes");
    // And the schedule is genuinely seed-dependent.
    let c = traced_run(&faulted_config(7, 12), PolicyKind::SmartOClock, 1);
    assert_ne!(a.2, c.2, "different fault seeds must change outcomes");
}

#[test]
fn faulted_runs_are_thread_count_invariant() {
    let cfg = faulted_config(42, 5);
    let n = multi_threads();
    let serial = traced_run(&cfg, PolicyKind::SmartOClock, 1);
    let sharded = traced_run(&cfg, PolicyKind::SmartOClock, n);
    assert_eq!(
        serial.0, sharded.0,
        "faulted trace must be byte-identical at 1 vs {n} threads"
    );
    assert_eq!(
        serial.1, sharded.1,
        "faulted metrics must be identical at 1 vs {n} threads"
    );
    assert_eq!(
        serial.2, sharded.2,
        "faulted outcomes must be identical at 1 vs {n} threads"
    );
}

#[test]
fn zero_fault_plan_is_byte_identical_to_unfaulted_run() {
    let mut clean = LargeScaleConfig::small_test();
    clean.seed = 42;
    let mut noop = clean.clone();
    // All probabilities zero and no outages: the fault seed must be inert.
    noop.faults = FaultPlanConfig {
        seed: 0xDEAD_BEEF,
        ..FaultPlanConfig::none()
    };
    let a = traced_run(&clean, PolicyKind::SmartOClock, 1);
    let b = traced_run(&noop, PolicyKind::SmartOClock, 1);
    assert_eq!(a.0, b.0, "no-op fault plan must not change a single byte");
    assert_eq!(a.1, b.1, "no-op fault plan must not change metrics");
    assert_eq!(a.2, b.2, "no-op fault plan must not change outcomes");
}

#[test]
fn binned_silicon_identity_survives_soa_restarts() {
    // Silicon is a physical property of the chip, not control-plane state:
    // a restarted sOA loses its grants but re-derives the same part
    // identity from the stateless `(seed, part_id)` draw. Under a hostile
    // plan with injected restarts, the per-rack bin census (denied /
    // down-binned parts) must match the same binned fleet with no faults
    // at all, the safety invariant must still hold, and the composition of
    // binning + restarts must stay thread-count invariant.
    let mut cfg = faulted_config(42, 3);
    cfg.binning = BinningConfig {
        bins: 8,
        risk_budget: 0.3,
        wear_spread: 0.4,
        seed: 9,
    };
    let faulted = traced_run(&cfg, PolicyKind::SmartOClock, 1);
    let restarts: u64 = faulted.2.iter().map(|o| o.restarts).sum();
    assert!(
        restarts > 0,
        "the hostile plan must actually inject restarts"
    );
    assert!(
        faulted.2.iter().map(|o| o.wear_days).sum::<f64>() > 0.0,
        "binned grants must accrue per-part wear even under restarts"
    );
    for o in &faulted.2 {
        assert_eq!(
            o.violation_steps, 0,
            "rack {}: enforcement must hold the budget for binned fleets too",
            o.rack
        );
    }
    let mut calm = cfg.clone();
    calm.faults = FaultPlanConfig::none();
    let clean = traced_run(&calm, PolicyKind::SmartOClock, 1);
    let census = |outcomes: &[RackOutcome]| -> Vec<(usize, u64, u64)> {
        outcomes
            .iter()
            .map(|o| (o.rack, o.bin_denied, o.down_binned))
            .collect()
    };
    assert_eq!(
        census(&faulted.2),
        census(&clean.2),
        "restarts must not change which parts are denied or down-binned"
    );
    let sharded = traced_run(&cfg, PolicyKind::SmartOClock, multi_threads());
    assert_eq!(
        faulted.0, sharded.0,
        "binned chaos trace must not depend on threads"
    );
    assert_eq!(
        faulted.1, sharded.1,
        "binned chaos metrics must not depend on threads"
    );
    assert_eq!(
        faulted.2, sharded.2,
        "binned chaos outcomes must not depend on threads"
    );
}

#[test]
fn cluster_harness_chaos_is_thread_count_invariant() {
    let configs = || {
        let mut smart = ClusterConfig::small_test(SystemKind::SmartOClock);
        smart.faults.seed = 11;
        smart.faults.goa_outages = 1;
        smart.faults.goa_outage_len = SimDuration::from_minutes(2);
        smart.faults.budget_drop_prob = 0.25;
        smart.faults.soa_restart_prob = 0.05;
        let mut naive = ClusterConfig::small_test(SystemKind::NaiveOClock);
        naive.faults.soa_restart_prob = 0.05;
        vec![smart, naive]
    };
    let run = |threads: usize| {
        let (tm, sink) = Telemetry::memory();
        let results = run_cluster_sims(configs(), &tm, threads);
        let lines: Vec<String> = sink.events().iter().map(event_to_json).collect();
        (results, lines, tm.metrics_snapshot().render())
    };
    let serial = run(1);
    let sharded = run(multi_threads());
    assert_eq!(
        serial.0, sharded.0,
        "faulted cluster results must not depend on threads"
    );
    assert_eq!(
        serial.1, sharded.1,
        "faulted cluster traces must not depend on threads"
    );
    assert_eq!(
        serial.2, sharded.2,
        "faulted cluster metrics must not depend on threads"
    );
}

//! Profiling-is-observation-only harness.
//!
//! The perf-observability layer (`soc-prof` + `soc_cluster::probe`) must
//! never perturb the simulation: attaching a live [`ProfProbe`] to the
//! sharded engine has to yield byte-identical telemetry traces, metrics,
//! and outcomes to the default [`NoopProbe`] run, at any thread count.
//! That invariant is what lets `--prof` default to off-but-harmless and
//! lets CI gate on `BENCH_largescale.json` without a "profiled build"
//! variant. Pinned here end to end across the public crate APIs, with
//! tiny configs so it runs in the tier-1 suite.

use smartoclock::policy::PolicyKind;
use soc_bench::probe::ProfProbe;
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::probe::{NoopProbe, ShardProbe};
use soc_cluster::shard::{
    generate_fleet, simulate_policy_prepared_probed, simulate_policy_sharded_probed,
    train_fleet_probed,
};
use soc_prof::Profiler;
use soc_telemetry::json::event_to_json;
use soc_telemetry::Telemetry;
use std::sync::Mutex;

// The allocation-regression test below reads the process-global counters
// behind this allocator, so every test in this binary serializes on
// [`SERIAL`] — otherwise a concurrently-running test's allocations would
// land inside another test's measured window.
#[global_allocator]
static ALLOC: soc_prof::CountingAlloc = soc_prof::CountingAlloc;

static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_config(seed: u64) -> LargeScaleConfig {
    let mut cfg = LargeScaleConfig::small_test();
    cfg.seed = seed;
    cfg
}

/// Run one traced policy simulation under `probe`; return (trace lines,
/// rendered metrics, outcomes) — everything a consumer can observe.
fn probed_run(
    cfg: &LargeScaleConfig,
    threads: usize,
    probe: &dyn ShardProbe,
) -> (
    Vec<String>,
    String,
    Vec<soc_cluster::largescale_metrics::RackOutcome>,
) {
    let (tm, sink) = Telemetry::memory();
    let outcomes =
        simulate_policy_sharded_probed(cfg, PolicyKind::SmartOClock, &tm, threads, probe);
    let lines: Vec<String> = sink.events().iter().map(event_to_json).collect();
    let metrics = tm.metrics_snapshot().render();
    (lines, metrics, outcomes)
}

#[test]
fn profiled_run_is_byte_identical_to_unprofiled() {
    let _guard = serialized();
    let cfg = small_config(11);
    for threads in [1, 4] {
        let baseline = probed_run(&cfg, threads, &NoopProbe);
        let profiler = Profiler::new("prof-test");
        let probed = probed_run(&cfg, threads, &ProfProbe::new(profiler.clone()));
        assert_eq!(
            baseline.0, probed.0,
            "telemetry trace changed under profiling at {threads} threads"
        );
        assert_eq!(
            baseline.1, probed.1,
            "metrics snapshot changed under profiling at {threads} threads"
        );
        assert_eq!(
            baseline.2, probed.2,
            "outcomes changed under profiling at {threads} threads"
        );
        // ... and the probe really was live, not silently disabled: the
        // engine's spans and counters landed in the snapshot.
        let snap = profiler.snapshot();
        assert!(
            snap.phases.contains_key("shard/sim"),
            "expected a shard/sim phase, got {:?}",
            snap.phases.keys().collect::<Vec<_>>()
        );
        assert_eq!(snap.counters.get("racks").copied(), Some(cfg.racks as u64));
    }
}

#[test]
fn disabled_profiler_probe_records_nothing() {
    let _guard = serialized();
    // `--prof` off hands bench binaries a disabled Profiler; the probe must
    // then return no tokens and the snapshot must stay empty.
    let cfg = small_config(11);
    let profiler = Profiler::disabled();
    let probe = ProfProbe::new(profiler.clone());
    assert!(probe.span("shard/sim").is_none());
    let _ = probed_run(&cfg, 2, &probe);
    let snap = profiler.snapshot();
    assert!(snap.phases.is_empty(), "disabled profiler recorded phases");
    assert!(
        snap.counters.is_empty(),
        "disabled profiler recorded counters"
    );
}

#[test]
fn profiled_runs_are_reproducible_across_thread_counts() {
    let _guard = serialized();
    // The committed baseline is generated at --threads 2; nothing about the
    // probe may couple snapshot *simulation* content to the thread count.
    let cfg = small_config(23);
    let one = probed_run(&cfg, 1, &NoopProbe);
    for threads in [2, 4] {
        let profiler = Profiler::new("prof-test");
        let probed = probed_run(&cfg, threads, &ProfProbe::new(profiler));
        assert_eq!(one.0, probed.0, "trace differs at {threads} threads");
        assert_eq!(one.1, probed.1, "metrics differ at {threads} threads");
        assert_eq!(one.2, probed.2, "outcomes differ at {threads} threads");
    }
}

/// Allocations of one steady-state simulation pass: traces pre-generated,
/// templates pre-trained, telemetry disabled, serial — the measured window
/// covers only the columnar engine itself (after one warm-up pass).
fn sim_alloc_delta(weeks: u64) -> u64 {
    let mut cfg = small_config(42);
    cfg.weeks = weeks;
    let fleet = generate_fleet(&cfg, 1);
    let trained = train_fleet_probed(&cfg, &fleet, 1, &NoopProbe);
    let telemetry = Telemetry::disabled();
    let run = || {
        simulate_policy_prepared_probed(
            &cfg,
            PolicyKind::SmartOClock,
            &fleet,
            &trained,
            &telemetry,
            1,
            &NoopProbe,
        )
    };
    let warmup = run();
    let (before, _) = soc_prof::alloc_counts();
    let measured = run();
    let (after, _) = soc_prof::alloc_counts();
    assert_eq!(warmup, measured, "sim must be deterministic");
    after - before
}

#[test]
fn steady_state_allocations_are_bounded_and_step_independent() {
    let _guard = serialized();
    // Absolute ceiling: per-run allocations are per-rack setup (columns,
    // step buffers, slot tables, fault plan, outcome) — O(racks × servers),
    // measured at 82 for this config. The ceiling has ample headroom for
    // toolchain drift, while a per-step allocation sneaking back into the
    // hot loop (4 racks × ~672 evaluated steps) blows straight through it.
    let w2 = sim_alloc_delta(2);
    assert!(
        w2 < 1_000,
        "steady-state sim made {w2} allocations (ceiling 1000) — \
         something allocates per step again"
    );
    // Step-independence: weeks=3 evaluates twice the steps of weeks=2 but
    // must allocate the same, modulo a tiny constant.
    let w3 = sim_alloc_delta(3);
    assert!(
        w3 <= w2 + 64,
        "allocations scale with sim steps: weeks=2 -> {w2}, weeks=3 -> {w3}"
    );
}

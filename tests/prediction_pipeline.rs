//! Cross-crate integration: synthetic traces → power templates → sOA
//! admission control, the full prediction pipeline of §IV-B.

use simcore::stats::Ecdf;
use simcore::time::{SimDuration, SimTime};
use smartoclock::config::SoaConfig;
use smartoclock::messages::OverclockRequest;
use smartoclock::policy::PolicyKind;
use smartoclock::soa::ServerOverclockAgent;
use soc_power::units::Watts;
use soc_predict::eval::{template_at, walk_forward};
use soc_predict::template::TemplateKind;
use soc_traces::gen::{FleetConfig, TraceGenerator};

fn two_week_config() -> FleetConfig {
    let mut cfg = FleetConfig::small_test();
    cfg.span = SimDuration::WEEK * 2;
    cfg
}

#[test]
fn generated_racks_are_predictable_with_dailymed() {
    // The Q3 property end-to-end: templates built on generated traces have
    // low relative RMSE.
    let fleet = TraceGenerator::new(3).generate(&two_week_config());
    let mut rel_errors = Vec::new();
    for rack in &fleet.racks {
        let report = walk_forward(&rack.power, TemplateKind::DailyMed);
        rel_errors.push(report.rmse / rack.power.mean());
    }
    let cdf = Ecdf::from_samples(&rel_errors);
    assert!(
        cdf.quantile(0.5) < 0.10,
        "median relative RMSE {} should be below 10%",
        cdf.quantile(0.5)
    );
}

#[test]
fn dailymed_outperforms_flat_templates_on_generated_traces() {
    let fleet = TraceGenerator::new(4).generate(&two_week_config());
    let rack = &fleet.racks[0];
    let daily = walk_forward(&rack.power, TemplateKind::DailyMed).rmse;
    let flat_max = walk_forward(&rack.power, TemplateKind::FlatMax).rmse;
    assert!(
        daily < flat_max,
        "DailyMed {daily} must beat FlatMax {flat_max}"
    );
}

#[test]
fn soa_admission_uses_trace_built_template() {
    // Build a server template from a generated trace and verify admission
    // respects the predicted draw at different times of day.
    let generator = TraceGenerator::new(5);
    let fleet = generator.generate(&two_week_config());
    let rack = &fleet.racks[0];
    let server = &rack.servers[0];
    let model = generator.model_for(rack.generation);

    let now = SimTime::ZERO + SimDuration::WEEK;
    let template = template_at(&server.power, now, TemplateKind::DailyMed);

    let mut soa = ServerOverclockAgent::new(model, SoaConfig::reference(), PolicyKind::SmartOClock);
    soa.set_power_template(template.clone());

    // Find the peak and trough of the template's weekday profile.
    let mut peak_t = now;
    let mut trough_t = now;
    let (mut peak, mut trough) = (f64::MIN, f64::MAX);
    for h in 0..24 {
        let t = now + SimDuration::from_hours(h);
        let p = template.predict(t);
        if p > peak {
            peak = p;
            peak_t = t;
        }
        if p < trough {
            trough = p;
            trough_t = t;
        }
    }
    assert!(peak > trough, "template must have diurnal structure");

    // Budget between trough+delta and peak+delta: the same request is
    // admitted at the trough but rejected at the peak.
    let cores = 16;
    let target = model.plan().max_overclock();
    let delta = model.overclock_delta(0.9, cores, target);
    soa.set_power_budget(Watts::new((peak + trough) / 2.0) + delta);

    let req = OverclockRequest::metrics_based("vm", cores, target);
    let at_trough = soa.request_overclock(trough_t, req.clone());
    assert!(at_trough.is_ok(), "trough-time request should be admitted");
    let id = at_trough.unwrap();
    soa.end_overclock(trough_t, id);
    let at_peak = soa.request_overclock(peak_t, req);
    assert!(at_peak.is_err(), "peak-time request should be rejected");
}

#[test]
fn fleet_statistics_are_region_independent_in_shape() {
    // Different regions get different streams but the same structural
    // properties (used by the Fig. 8 four-region comparison).
    for region in ["r1", "r2"] {
        let mut cfg = two_week_config();
        cfg.region = region.into();
        let fleet = TraceGenerator::new(6).generate(&cfg);
        for rack in &fleet.racks {
            let u = rack.mean_utilization();
            assert!(u > 0.1 && u < 1.0, "region {region} rack utilization {u}");
        }
    }
}

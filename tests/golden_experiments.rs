//! Golden-file regression tests for the experiment pipelines.
//!
//! Pins the summary metrics behind Fig. 15 (walk-forward template accuracy)
//! and Fig. 16 (production-service utilization sweep) on tiny fixtures, so
//! an accidental behavior change in the trace generator, the predictors, or
//! the microservice simulator shows up as a readable diff instead of a
//! silently shifted table.
//!
//! Values are formatted to six decimal places: exact enough to catch any
//! real behavior change, coarse enough to absorb last-ulp libm differences
//! across toolchains. To regenerate after an *intentional* change:
//!
//! ```text
//! SOC_UPDATE_GOLDEN=1 cargo test -p soc-bench --test golden_experiments
//! ```
//!
//! and commit the diff together with a justification.

use simcore::faults::{FaultPlan, FaultPlanConfig};
use simcore::time::SimDuration;
use smartoclock::policy::PolicyKind;
use soc_cluster::envs::{run_at_rate, Environment};
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::largescale_metrics::PolicyMetrics;
use soc_cluster::shard::{generate_fleet, simulate_policy_sharded, FleetTraces};
use soc_power::freq::FrequencyPlan;
use soc_predict::eval::walk_forward;
use soc_predict::template::TemplateKind;
use soc_reliability::binning::BinningConfig;
use soc_telemetry::Telemetry;
use soc_traces::gen::{FleetConfig, TraceGenerator};
use soc_workloads::microservice::ServiceSpec;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden_experiments.txt"
);

/// Compute the pinned summary: deterministic, fixed formatting, one line
/// per metric so diffs are line-oriented.
fn compute_summary() -> String {
    let mut out = String::new();

    // --- Fig. 15 slice: walk-forward accuracy per template on a 2-rack,
    // 2-week fixture fleet (the full figure uses 100 racks x 3 weeks).
    let mut cfg = FleetConfig::small_test();
    cfg.span = SimDuration::WEEK * 2;
    let fleet = TraceGenerator::new(42).generate(&cfg);
    for (rack_idx, rack) in fleet.racks.iter().enumerate() {
        for &kind in TemplateKind::ALL.iter() {
            let report = walk_forward(&rack.power, kind);
            let _ = writeln!(
                out,
                "fig15 rack={rack_idx} template={kind} mean_error={:.6} rmse={:.6} samples={}",
                report.mean_error, report.rmse, report.samples
            );
        }
    }

    // --- Fig. 16 slice: Service B utilization at three deployment rates
    // under baseline and overclocked frequencies (60s measure window).
    let plan = FrequencyPlan::amd_reference();
    let spec = ServiceSpec::new("ServiceB", 22.0, 1.1, 4);
    let measure = SimDuration::from_secs(60);
    for rps_k in [0.6_f64, 1.2, 1.8] {
        for env in [Environment::Baseline, Environment::Overclock] {
            let r = run_at_rate(&spec, rps_k * 100.0, env, plan, measure, 42);
            let _ = writeln!(
                out,
                "fig16 rps_k={rps_k:.1} env={env:?} util={:.6} p99_ms={:.6} slo_miss={:.6}",
                r.cpu_utilization, r.p99_ms, r.slo_miss_frac
            );
        }
    }

    // --- exp_fault_tolerance slice: the tiny-fixture form of the bench's
    // gOA-outage comparison (the binary runs 8-24 racks; this pins 4).
    for (label, hours) in [("none", 0u64), ("2h", 2), ("12h", 12)] {
        let mut cfg = LargeScaleConfig::small_test();
        cfg.faults = FaultPlanConfig {
            seed: 42,
            goa_outages: if hours == 0 { 0 } else { 2 },
            goa_outage_len: SimDuration::from_hours(hours),
            ..FaultPlanConfig::none()
        };
        for (system, policy, fail_open) in [
            ("smart", PolicyKind::SmartOClock, false),
            ("central_stop", PolicyKind::Central, false),
            ("central_open", PolicyKind::Central, true),
        ] {
            cfg.central_fail_open = fail_open;
            let outcomes = simulate_policy_sharded(&cfg, policy, &Telemetry::disabled(), 1);
            let m = PolicyMetrics::aggregate(policy, &outcomes);
            let _ = writeln!(
                out,
                "fault_tolerance outage={label} system={system} violations={} \
                 stale_steps={} success={:.6} granted={}",
                m.violation_steps, m.stale_budget_steps, m.success_rate, m.granted
            );
        }
    }
    // --- exp_binning slice: the tiny-fixture form of the bench's bins ×
    // risk-budget sweep (the binary runs 8-24 racks; this pins 4). The
    // certified column is the silicon-only frontier; granted/denied/wear
    // are the simulated consequences.
    for (bins, budget) in [(1u32, 1.0f64), (8, 1.0), (8, 0.1)] {
        let mut cfg = LargeScaleConfig::small_test();
        cfg.binning = binning_config(bins, budget);
        let fleet = generate_fleet(&cfg, 1);
        let outcomes =
            simulate_policy_sharded(&cfg, PolicyKind::SmartOClock, &Telemetry::disabled(), 1);
        let m = PolicyMetrics::aggregate(PolicyKind::SmartOClock, &outcomes);
        let _ = writeln!(
            out,
            "binning bins={bins} budget={budget:.2} certified={:.6} granted={} \
             denied={} down_binned={} wear_days={:.6}",
            certified_fraction(&fleet, &cfg.binning),
            m.granted,
            m.bin_denied,
            m.down_binned,
            m.wear_days
        );
    }
    out
}

/// The bench sweep's binning cell for the fixture fleet.
fn binning_config(bins: u32, risk_budget: f64) -> BinningConfig {
    BinningConfig {
        bins,
        risk_budget,
        wear_spread: if bins > 1 { 0.3 } else { 0.0 },
        seed: 42,
    }
}

/// Mean certified overclock fraction across every part in the fleet (the
/// `exp_binning` frontier column): the admitted frequency's position in the
/// turbo→max-overclock span, 0 for a bin-denied part.
fn certified_fraction(fleet: &FleetTraces, binning: &BinningConfig) -> f64 {
    let mut certified = 0.0;
    let mut parts = 0u64;
    for (rack, model) in fleet.iter() {
        let plan = model.plan();
        let span = plan.max_overclock().saturating_sub(plan.turbo());
        if span.get() == 0 {
            continue;
        }
        for s in 0..rack.servers.len() {
            let part = binning.part(&plan, FaultPlan::entity_id(rack.index, s));
            certified += part
                .admit(&plan, binning.risk_budget, plan.max_overclock())
                .map_or(0.0, |f| f.saturating_sub(plan.turbo()).ratio(span));
            parts += 1;
        }
    }
    certified / parts.max(1) as f64
}

#[test]
fn certified_frontier_is_monotone_in_risk_budget() {
    // The exp_binning headline depends on the certified fraction being
    // monotone non-increasing as the budget tightens; pin it over the
    // fixture fleet at every bin count the bench sweeps.
    let cfg = LargeScaleConfig::small_test();
    let fleet = generate_fleet(&cfg, 1);
    for bins in [1u32, 4, 8] {
        let mut last = f64::INFINITY;
        for budget in [1.0, 0.5, 0.25, 0.1] {
            let c = certified_fraction(&fleet, &binning_config(bins, budget));
            assert!(
                c <= last + 1e-12,
                "certified fraction rose from {last} to {c} as the budget \
                 tightened to {budget} (bins={bins})"
            );
            last = c;
        }
    }
}

#[test]
fn experiment_summaries_match_golden_file() {
    let actual = compute_summary();
    if std::env::var_os("SOC_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden file");
        eprintln!("golden file updated: {GOLDEN_PATH}");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; run with SOC_UPDATE_GOLDEN=1 to create it");
    if expected != actual {
        // Line-by-line diff beats one giant assert_eq dump.
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            assert_eq!(a, e, "golden mismatch at line {}", i + 1);
        }
        assert_eq!(
            actual.lines().count(),
            expected.lines().count(),
            "golden file line count changed"
        );
        panic!("golden file differs (whitespace-only change?)");
    }
}

#[test]
fn summary_is_stable_across_runs() {
    // The golden comparison is only sound if the summary itself is a pure
    // function of the seed.
    assert_eq!(compute_summary(), compute_summary());
}

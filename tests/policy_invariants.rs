//! Cross-crate integration: Table I ordering invariants over the
//! trace-driven large-scale simulation.

use smartoclock::policy::PolicyKind;
use soc_cluster::largescale::{simulate_policy, LargeScaleConfig};
use soc_cluster::largescale_metrics::PolicyMetrics;

fn metrics(policy: PolicyKind, seed: u64) -> PolicyMetrics {
    let mut cfg = LargeScaleConfig::small_test();
    cfg.racks = 6;
    cfg.seed = seed;
    PolicyMetrics::aggregate(policy, &simulate_policy(&cfg, policy))
}

#[test]
fn capping_ordering_central_smart_naive() {
    let central = metrics(PolicyKind::Central, 42);
    let smart = metrics(PolicyKind::SmartOClock, 42);
    let naive = metrics(PolicyKind::NaiveOClock, 42);
    assert!(central.capping_events <= smart.capping_events);
    assert!(
        smart.capping_events <= naive.capping_events,
        "SmartOClock ({}) must cap at most as often as NaiveOClock ({})",
        smart.capping_events,
        naive.capping_events
    );
}

#[test]
fn success_ordering_exploration_helps() {
    let smart = metrics(PolicyKind::SmartOClock, 42);
    let nofb = metrics(PolicyKind::NoFeedback, 42);
    assert!(
        smart.success_rate >= nofb.success_rate,
        "exploration must help: SmartOClock {} vs NoFeedback {}",
        smart.success_rate,
        nofb.success_rate
    );
}

#[test]
fn naive_has_perfect_success_but_worst_capping() {
    let naive = metrics(PolicyKind::NaiveOClock, 42);
    assert!((naive.success_rate - 1.0).abs() < 1e-12);
    for policy in [
        PolicyKind::Central,
        PolicyKind::NoFeedback,
        PolicyKind::SmartOClock,
    ] {
        let other = metrics(policy, 42);
        assert!(
            other.capping_events <= naive.capping_events,
            "{policy} vs NaiveOClock"
        );
    }
}

#[test]
fn performance_between_one_and_full_overclock() {
    for policy in PolicyKind::ALL {
        let m = metrics(policy, 42);
        assert!(
            (0.5..=1.215).contains(&m.normalized_performance),
            "{policy} normalized performance {} out of plausible range",
            m.normalized_performance
        );
    }
}

#[test]
fn capping_penalty_only_when_capping() {
    let central = metrics(PolicyKind::Central, 42);
    if central.capping_events == 0 {
        assert_eq!(central.capping_penalty, 0.0);
    }
}

#[test]
fn results_stable_across_identical_runs() {
    let a = metrics(PolicyKind::SmartOClock, 11);
    let b = metrics(PolicyKind::SmartOClock, 11);
    assert_eq!(a, b);
}

//! Cross-crate integration: the full cluster harness exercising the queueing
//! simulator, the power model, the rack monitor, and all three SmartOClock
//! agent layers together.

use soc_cluster::harness::{ClusterConfig, ClusterSim, SystemKind};
use soc_telemetry::{FieldValue, Telemetry};
use soc_workloads::socialnet::LoadLevel;

fn run(system: SystemKind, seed: u64) -> soc_cluster::harness::ClusterResult {
    let mut cfg = ClusterConfig::small_test(system);
    cfg.seed = seed;
    ClusterSim::new(cfg).run()
}

#[test]
fn smartoclock_beats_baseline_tail_at_high_load() {
    let base = run(SystemKind::Baseline, 1);
    let smart = run(SystemKind::SmartOClock, 1);
    let b = base.p99_by_load(LoadLevel::High);
    let s = smart.p99_by_load(LoadLevel::High);
    assert!(
        s < b,
        "SmartOClock P99 {s:.1} must beat Baseline {b:.1} at high load"
    );
}

#[test]
fn smartoclock_cheaper_than_scaleout() {
    let scale = run(SystemKind::ScaleOut, 2);
    let smart = run(SystemKind::SmartOClock, 2);
    assert!(
        smart.avg_active_vms <= scale.avg_active_vms,
        "SmartOClock {} VMs must not exceed ScaleOut {} VMs",
        smart.avg_active_vms,
        scale.avg_active_vms
    );
}

#[test]
fn smartoclock_reduces_missed_slos_vs_baseline() {
    let base = run(SystemKind::Baseline, 3);
    let smart = run(SystemKind::SmartOClock, 3);
    let b: u64 = base.instances.iter().map(|i| i.missed).sum();
    let s: u64 = smart.instances.iter().map(|i| i.missed).sum();
    assert!(
        s <= b,
        "SmartOClock misses {s} must not exceed Baseline {b}"
    );
}

#[test]
fn overclocking_systems_issue_and_grant_requests() {
    for system in [SystemKind::NaiveOClock, SystemKind::SmartOClock] {
        let r = run(system, 4);
        let (granted, total) = r.oc_requests;
        assert!(total > 0, "{system} should issue overclock requests");
        assert!(granted > 0, "{system} should grant some requests");
        assert!(granted <= total);
    }
}

#[test]
fn energy_accounting_is_consistent() {
    let r = run(SystemKind::SmartOClock, 5);
    assert!(r.socialnet_energy_j > 0.0);
    assert!(r.socialnet_energy_j < r.total_energy_j);
    // Per-load-class energy entries exist for each class present.
    assert!(r.per_server_energy_by_load.iter().all(|&e| e >= 0.0));
}

#[test]
fn runs_are_deterministic() {
    let a = run(SystemKind::SmartOClock, 6);
    let b = run(SystemKind::SmartOClock, 6);
    assert_eq!(a, b, "identical seeds must give identical results");
}

#[test]
fn different_seeds_change_details_not_structure() {
    let a = run(SystemKind::SmartOClock, 7);
    let b = run(SystemKind::SmartOClock, 8);
    assert_eq!(a.instances.len(), b.instances.len());
    assert_ne!(
        a.instances.iter().map(|i| i.completed).sum::<u64>(),
        b.instances.iter().map(|i| i.completed).sum::<u64>()
    );
}

#[test]
fn constrained_rack_produces_capping_for_naive() {
    let mut cfg = ClusterConfig::small_test(SystemKind::NaiveOClock);
    cfg.rack_limit_scale = 0.82;
    cfg.seed = 9;
    let naive = ClusterSim::new(cfg).run();
    let mut cfg = ClusterConfig::small_test(SystemKind::SmartOClock);
    cfg.rack_limit_scale = 0.82;
    cfg.seed = 9;
    let smart = ClusterSim::new(cfg).run();
    assert!(
        smart.capping_events <= naive.capping_events,
        "SmartOClock capping {} must not exceed NaiveOClock {}",
        smart.capping_events,
        naive.capping_events
    );
    // MLTrain throughput suffers at least as much under naive overclocking.
    assert!(smart.mltrain_relative_throughput >= naive.mltrain_relative_throughput - 1e-9);
}

#[test]
fn power_capped_run_emits_revoke_telemetry() {
    // A tightly constrained rack under NaiveOClock reliably hits the limit,
    // so the harness must record the capping and the grants it revokes.
    let mut cfg = ClusterConfig::small_test(SystemKind::NaiveOClock);
    cfg.rack_limit_scale = 0.78;
    cfg.seed = 10;
    let (telemetry, sink) = Telemetry::memory();
    let result = ClusterSim::with_telemetry(cfg, telemetry.clone()).run();
    assert!(result.capping_events > 0, "the constrained rack must cap");

    let events = sink.events();
    assert!(
        !sink.named("rack_capping").is_empty(),
        "capping must be traced"
    );
    let revokes = sink.named("revoke");
    assert!(
        !revokes.is_empty(),
        "capping a granted server must emit a revoke"
    );
    assert!(
        revokes
            .iter()
            .all(|e| { matches!(e.get("reason"), Some(FieldValue::Str(s)) if s == "cap") }),
        "every revoke in this scenario is capping-induced"
    );
    // Sim-time stamps are monotone within the single-threaded harness run
    // (spans are stamped with their *start* time, so they are exempt).
    let stamped: Vec<_> = events
        .iter()
        .filter(|e| e.get("dur_us").is_none())
        .collect();
    assert!(stamped.windows(2).all(|w| w[0].time <= w[1].time));

    // The agent stack reported through the same handle: sOA admissions and
    // WI observations land next to the harness events.
    assert!(!sink.named("oc_grant").is_empty(), "sOAs must trace grants");
    assert!(
        !sink.named("wi_observe").is_empty(),
        "WI agents must trace observations"
    );
    assert!(!sink.named("run_start").is_empty() && !sink.named("run_end").is_empty());

    // Counters aggregate the same story.
    let snapshot = telemetry.metrics_snapshot();
    let revoke_count: u64 = snapshot
        .counters
        .iter()
        .filter(|(k, _)| k.name == "harness_revokes")
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(revoke_count, revokes.len() as u64);
}

#[test]
fn every_revoke_cause_resolves_to_an_earlier_cap_set() {
    // Causal-id contract on the capping path: each revoke carries a
    // `cause_id` naming the `cap_set` decision that forced it, on the same
    // server, stamped no later than the revoke itself.
    let mut cfg = ClusterConfig::small_test(SystemKind::NaiveOClock);
    cfg.rack_limit_scale = 0.78;
    cfg.seed = 10;
    let (telemetry, sink) = Telemetry::memory();
    let result = ClusterSim::with_telemetry(cfg, telemetry).run();
    assert!(result.capping_events > 0, "the constrained rack must cap");

    let field_u64 = |e: &soc_telemetry::Event, key: &str| match e.get(key) {
        Some(FieldValue::U64(v)) => Some(*v),
        _ => None,
    };
    let cap_sets = sink.named("cap_set");
    let revokes = sink.named("revoke");
    assert!(!revokes.is_empty(), "scenario must revoke at least once");
    for revoke in &revokes {
        let cause = field_u64(revoke, "cause_id").expect("revoke has cause_id");
        assert_ne!(cause, 0, "revoke cause_id must name a cap decision");
        let cap = cap_sets
            .iter()
            .find(|c| field_u64(c, "decision_id") == Some(cause))
            .unwrap_or_else(|| panic!("revoke cause {cause} has no cap_set"));
        assert!(cap.time <= revoke.time, "cap_set precedes its revoke");
        assert_eq!(
            field_u64(cap, "server"),
            field_u64(revoke, "server"),
            "cap and revoke must target the same server"
        );
    }

    // Capping-attributed SLO misses point back at real cap decisions too.
    let cap_ids: Vec<u64> = cap_sets
        .iter()
        .filter_map(|c| field_u64(c, "decision_id"))
        .collect();
    for miss in sink.named("slo_miss") {
        if matches!(miss.get("attribution"), Some(FieldValue::Str(s)) if s == "cap") {
            let cause = field_u64(&miss, "cause_id").unwrap_or(0);
            assert!(
                cap_ids.contains(&cause),
                "cap-attributed slo_miss must cite a cap_set decision"
            );
        }
    }

    // Decision ids are unique across the whole trace.
    let mut ids: Vec<u64> = sink
        .events()
        .iter()
        .filter_map(|e| field_u64(e, "decision_id"))
        .filter(|&id| id != 0)
        .collect();
    let total = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), total, "decision ids must never repeat");
}

#[test]
fn disabled_telemetry_changes_nothing() {
    let mut cfg = ClusterConfig::small_test(SystemKind::SmartOClock);
    cfg.seed = 11;
    let plain = ClusterSim::new(cfg.clone()).run();
    let (telemetry, _sink) = Telemetry::memory();
    let traced = ClusterSim::with_telemetry(cfg, telemetry).run();
    assert_eq!(plain, traced, "telemetry must be a pure observer");
}

//! Cross-crate integration: the full cluster harness exercising the queueing
//! simulator, the power model, the rack monitor, and all three SmartOClock
//! agent layers together.

use soc_cluster::harness::{ClusterConfig, ClusterSim, SystemKind};
use soc_workloads::socialnet::LoadLevel;

fn run(system: SystemKind, seed: u64) -> soc_cluster::harness::ClusterResult {
    let mut cfg = ClusterConfig::small_test(system);
    cfg.seed = seed;
    ClusterSim::new(cfg).run()
}

#[test]
fn smartoclock_beats_baseline_tail_at_high_load() {
    let base = run(SystemKind::Baseline, 1);
    let smart = run(SystemKind::SmartOClock, 1);
    let b = base.p99_by_load(LoadLevel::High);
    let s = smart.p99_by_load(LoadLevel::High);
    assert!(s < b, "SmartOClock P99 {s:.1} must beat Baseline {b:.1} at high load");
}

#[test]
fn smartoclock_cheaper_than_scaleout() {
    let scale = run(SystemKind::ScaleOut, 2);
    let smart = run(SystemKind::SmartOClock, 2);
    assert!(
        smart.avg_active_vms <= scale.avg_active_vms,
        "SmartOClock {} VMs must not exceed ScaleOut {} VMs",
        smart.avg_active_vms,
        scale.avg_active_vms
    );
}

#[test]
fn smartoclock_reduces_missed_slos_vs_baseline() {
    let base = run(SystemKind::Baseline, 3);
    let smart = run(SystemKind::SmartOClock, 3);
    let b: u64 = base.instances.iter().map(|i| i.missed).sum();
    let s: u64 = smart.instances.iter().map(|i| i.missed).sum();
    assert!(s <= b, "SmartOClock misses {s} must not exceed Baseline {b}");
}

#[test]
fn overclocking_systems_issue_and_grant_requests() {
    for system in [SystemKind::NaiveOClock, SystemKind::SmartOClock] {
        let r = run(system, 4);
        let (granted, total) = r.oc_requests;
        assert!(total > 0, "{system} should issue overclock requests");
        assert!(granted > 0, "{system} should grant some requests");
        assert!(granted <= total);
    }
}

#[test]
fn energy_accounting_is_consistent() {
    let r = run(SystemKind::SmartOClock, 5);
    assert!(r.socialnet_energy_j > 0.0);
    assert!(r.socialnet_energy_j < r.total_energy_j);
    // Per-load-class energy entries exist for each class present.
    assert!(r.per_server_energy_by_load.iter().all(|&e| e >= 0.0));
}

#[test]
fn runs_are_deterministic() {
    let a = run(SystemKind::SmartOClock, 6);
    let b = run(SystemKind::SmartOClock, 6);
    assert_eq!(a, b, "identical seeds must give identical results");
}

#[test]
fn different_seeds_change_details_not_structure() {
    let a = run(SystemKind::SmartOClock, 7);
    let b = run(SystemKind::SmartOClock, 8);
    assert_eq!(a.instances.len(), b.instances.len());
    assert_ne!(
        a.instances.iter().map(|i| i.completed).sum::<u64>(),
        b.instances.iter().map(|i| i.completed).sum::<u64>()
    );
}

#[test]
fn constrained_rack_produces_capping_for_naive() {
    let mut cfg = ClusterConfig::small_test(SystemKind::NaiveOClock);
    cfg.rack_limit_scale = 0.82;
    cfg.seed = 9;
    let naive = ClusterSim::new(cfg).run();
    let mut cfg = ClusterConfig::small_test(SystemKind::SmartOClock);
    cfg.rack_limit_scale = 0.82;
    cfg.seed = 9;
    let smart = ClusterSim::new(cfg).run();
    assert!(
        smart.capping_events <= naive.capping_events,
        "SmartOClock capping {} must not exceed NaiveOClock {}",
        smart.capping_events,
        naive.capping_events
    );
    // MLTrain throughput suffers at least as much under naive overclocking.
    assert!(smart.mltrain_relative_throughput >= naive.mltrain_relative_throughput - 1e-9);
}

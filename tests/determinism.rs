//! Reproducibility harness for the sharded large-scale simulator.
//!
//! Two guarantees are pinned here, end to end across the public crate APIs:
//!
//! 1. **Same seed, same bytes** — running an experiment twice with one seed
//!    produces byte-identical telemetry traces and metrics.
//! 2. **Thread-count invariance** — `--threads N` produces the same bytes
//!    as `--threads 1`, for the trace, the metrics snapshot, and the
//!    simulation outcomes. The multi-thread count under test defaults to 4
//!    and can be overridden with the `SOC_SIM_THREADS` environment variable
//!    (CI runs the suite at 1 and 4).
//!
//! These tests are intentionally cheap (tiny configs) so they run in the
//! tier-1 suite on every push; they are the committed form of the
//! "deterministic sharded execution" acceptance criterion.

use smartoclock::policy::PolicyKind;
use soc_cluster::harness::{ClusterConfig, SystemKind};
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::shard::{run_cluster_sims, simulate_policy_sharded};
use soc_telemetry::json::event_to_json;
use soc_telemetry::Telemetry;

/// The "many threads" side of the invariance checks. CI sets
/// `SOC_SIM_THREADS` to exercise both sides; locally it defaults to 4.
fn multi_threads() -> usize {
    std::env::var("SOC_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

fn small_config(seed: u64) -> LargeScaleConfig {
    let mut cfg = LargeScaleConfig::small_test();
    cfg.seed = seed;
    cfg
}

/// Run one traced policy simulation; return (trace lines, rendered metrics,
/// outcomes).
fn traced_run(
    cfg: &LargeScaleConfig,
    policy: PolicyKind,
    threads: usize,
) -> (
    Vec<String>,
    String,
    Vec<soc_cluster::largescale_metrics::RackOutcome>,
) {
    let (tm, sink) = Telemetry::memory();
    let outcomes = simulate_policy_sharded(cfg, policy, &tm, threads);
    let lines: Vec<String> = sink.events().iter().map(event_to_json).collect();
    let metrics = tm.metrics_snapshot().render();
    (lines, metrics, outcomes)
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let cfg = small_config(7);
    let a = traced_run(&cfg, PolicyKind::SmartOClock, 1);
    let b = traced_run(&cfg, PolicyKind::SmartOClock, 1);
    assert_eq!(a.0, b.0, "same-seed runs must emit identical trace lines");
    assert_eq!(a.1, b.1, "same-seed runs must produce identical metrics");
    assert_eq!(a.2, b.2, "same-seed runs must produce identical outcomes");
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against the identity tests above passing vacuously (e.g. the
    // trace being empty or the seed being ignored).
    let a = traced_run(&small_config(7), PolicyKind::SmartOClock, 1);
    let b = traced_run(&small_config(8), PolicyKind::SmartOClock, 1);
    assert!(!a.0.is_empty(), "traced run must emit events");
    assert_ne!(a.2, b.2, "different seeds must change outcomes");
}

#[test]
fn thread_count_does_not_change_trace_metrics_or_outcomes() {
    let cfg = small_config(42);
    let n = multi_threads();
    for policy in [PolicyKind::SmartOClock, PolicyKind::NaiveOClock] {
        let serial = traced_run(&cfg, policy, 1);
        let sharded = traced_run(&cfg, policy, n);
        assert_eq!(
            serial.0, sharded.0,
            "{policy}: trace must be byte-identical at 1 vs {n} threads"
        );
        assert_eq!(
            serial.1, sharded.1,
            "{policy}: metrics must be identical at 1 vs {n} threads"
        );
        assert_eq!(
            serial.2, sharded.2,
            "{policy}: outcomes must be identical at 1 vs {n} threads"
        );
    }
}

#[test]
fn jsonl_trace_files_are_byte_identical_across_thread_counts() {
    // The end-to-end form of the guarantee: the actual JSONL file a bench
    // binary would write with `--trace-out` is byte-for-byte the same for
    // any `--threads` value.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let write_trace = |threads: usize| -> Vec<u8> {
        let path = dir.join(format!("soc-determinism-{pid}-{threads}.jsonl"));
        let tm = Telemetry::jsonl(&path).expect("create trace file");
        simulate_policy_sharded(&small_config(42), PolicyKind::SmartOClock, &tm, threads);
        tm.flush();
        drop(tm);
        let bytes = std::fs::read(&path).expect("read trace file");
        let _ = std::fs::remove_file(&path);
        bytes
    };
    let serial = write_trace(1);
    let sharded = write_trace(multi_threads());
    assert!(!serial.is_empty(), "trace file must not be empty");
    assert_eq!(
        serial, sharded,
        "JSONL trace bytes must not depend on --threads"
    );
}

#[test]
fn cluster_sims_are_thread_count_invariant() {
    let configs = || {
        vec![
            ClusterConfig::small_test(SystemKind::NaiveOClock),
            ClusterConfig::small_test(SystemKind::SmartOClock),
        ]
    };
    let run = |threads: usize| {
        let (tm, sink) = Telemetry::memory();
        let results = run_cluster_sims(configs(), &tm, threads);
        let lines: Vec<String> = sink.events().iter().map(event_to_json).collect();
        (results, lines, tm.metrics_snapshot().render())
    };
    let serial = run(1);
    let sharded = run(multi_threads());
    assert_eq!(
        serial.0, sharded.0,
        "cluster results must not depend on threads"
    );
    assert_eq!(
        serial.1, sharded.1,
        "cluster traces must not depend on threads"
    );
    assert_eq!(
        serial.2, sharded.2,
        "cluster metrics must not depend on threads"
    );
}

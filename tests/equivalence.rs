//! Engine-equivalence harness: the columnar production engine must be a
//! pure performance change.
//!
//! `crates/cluster/src/columns.rs` rewrote the large-scale per-rack hot
//! path from the row-oriented loop (retained verbatim as
//! `simulate_rack_reference` / `simulate_policy_prepared_reference`) to a
//! struct-of-arrays layout with batched template lookups and reused
//! buffers. This suite pins that the rewrite changed **nothing
//! observable**: byte-identical telemetry traces, rendered metrics, and
//! rack outcomes across seeds × thread counts × fault plans × policies.
//!
//! The `#[ignore]`d `smoke_100k_racks_*` test is the ROADMAP direction-1
//! scale check (100k racks through the streaming sharded path); CI's
//! perf-gate job runs it with `--include-ignored`.

use simcore::faults::FaultPlanConfig;
use simcore::time::SimDuration;
use smartoclock::policy::PolicyKind;
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::largescale_metrics::RackOutcome;
use soc_cluster::shard::{
    generate_fleet, simulate_policy_prepared_probed, simulate_policy_prepared_reference,
    simulate_policy_sharded, train_fleet_probed,
};
use soc_cluster::NoopProbe;
use soc_reliability::binning::BinningConfig;
use soc_telemetry::json::event_to_json;
use soc_telemetry::Telemetry;

fn config(seed: u64, faults: FaultPlanConfig) -> LargeScaleConfig {
    let mut cfg = LargeScaleConfig::small_test();
    cfg.seed = seed;
    cfg.faults = faults;
    cfg
}

/// A heterogeneous silicon fleet: many bins, a tight-ish risk budget, and a
/// wide wear spread so denials, down-bins, and per-part wear all occur.
fn binned(mut cfg: LargeScaleConfig, seed: u64) -> LargeScaleConfig {
    cfg.binning = BinningConfig {
        bins: 8,
        risk_budget: 0.3,
        wear_spread: 0.4,
        seed,
    };
    cfg
}

/// A fault plan exercising every fault dimension at once.
fn chaos_faults(seed: u64) -> FaultPlanConfig {
    FaultPlanConfig {
        seed,
        goa_outages: 2,
        goa_outage_len: SimDuration::from_hours(2),
        budget_drop_prob: 0.05,
        budget_delay_prob: 0.05,
        budget_delay: SimDuration::from_minutes(30),
        telemetry_gap_prob: 0.03,
        prediction_bias: 1.05,
        prediction_noise: 0.02,
        soa_restart_prob: 0.01,
    }
}

/// Everything a consumer can observe from one run: telemetry trace lines,
/// the rendered metrics snapshot, and the rack outcomes.
type Observed = (Vec<String>, String, Vec<RackOutcome>);

/// Run the retained row-oriented reference engine (always serial) over
/// pre-generated traces and pre-trained templates.
fn reference_run(cfg: &LargeScaleConfig, policy: PolicyKind) -> Observed {
    let fleet = generate_fleet(cfg, 1);
    let trained = train_fleet_probed(cfg, &fleet, 1, &NoopProbe);
    let (tm, sink) = Telemetry::memory();
    let outcomes = simulate_policy_prepared_reference(cfg, policy, &fleet, &trained, &tm);
    let lines = sink.events().iter().map(event_to_json).collect();
    (lines, tm.metrics_snapshot().render(), outcomes)
}

/// Run the columnar production engine at `threads` over pre-generated
/// traces and pre-trained templates.
fn columnar_run(cfg: &LargeScaleConfig, policy: PolicyKind, threads: usize) -> Observed {
    let fleet = generate_fleet(cfg, threads);
    let trained = train_fleet_probed(cfg, &fleet, threads, &NoopProbe);
    let (tm, sink) = Telemetry::memory();
    let outcomes =
        simulate_policy_prepared_probed(cfg, policy, &fleet, &trained, &tm, threads, &NoopProbe);
    let lines = sink.events().iter().map(event_to_json).collect();
    (lines, tm.metrics_snapshot().render(), outcomes)
}

fn assert_equivalent(cfg: &LargeScaleConfig, policy: PolicyKind, label: &str) {
    let reference = reference_run(cfg, policy);
    for threads in [1, 2, 4] {
        let columnar = columnar_run(cfg, policy, threads);
        assert_eq!(
            reference.0, columnar.0,
            "telemetry trace diverged ({label}, {policy}, {threads} threads)"
        );
        assert_eq!(
            reference.1, columnar.1,
            "metrics snapshot diverged ({label}, {policy}, {threads} threads)"
        );
        assert_eq!(
            reference.2, columnar.2,
            "outcomes diverged ({label}, {policy}, {threads} threads)"
        );
    }
}

#[test]
fn columnar_engine_matches_reference_across_seeds_and_threads() {
    for seed in [7, 42, 1234] {
        let cfg = config(seed, FaultPlanConfig::none());
        assert_equivalent(&cfg, PolicyKind::SmartOClock, &format!("seed {seed}"));
    }
}

#[test]
fn columnar_engine_matches_reference_for_every_policy() {
    let cfg = config(42, FaultPlanConfig::none());
    for policy in PolicyKind::ALL {
        assert_equivalent(&cfg, policy, "all-policies");
    }
}

#[test]
fn columnar_engine_matches_reference_with_heterogeneous_silicon() {
    // Per-part silicon heterogeneity across seeds: the columnar engine's
    // per-bin factor tables must reproduce the reference engine's per-server
    // frequency resolution bit for bit.
    for seed in [7, 42] {
        let cfg = binned(config(seed, FaultPlanConfig::none()), seed);
        assert_equivalent(&cfg, PolicyKind::SmartOClock, &format!("binned {seed}"));
    }
    // Every policy over one binned fleet.
    let cfg = binned(config(42, FaultPlanConfig::none()), 42);
    for policy in PolicyKind::ALL {
        assert_equivalent(&cfg, policy, "binned all-policies");
    }
    // Binning and the full chaos fault plan composed.
    let cfg = binned(config(42, chaos_faults(3)), 13);
    assert_equivalent(&cfg, PolicyKind::SmartOClock, "binned chaos");
    assert_equivalent(&cfg, PolicyKind::Central, "binned chaos");
}

#[test]
fn columnar_engine_matches_reference_on_fallback_prediction_path() {
    // A step that does not divide the week would make the columnar engine's
    // slot memoization build no tables and predict per step. No trainable
    // config can produce such a step (template training asserts the step
    // divides a day, and every day-divisor divides the week), so the
    // `disable_slot_memo` kill switch forces the same fallback arms — which
    // must still agree byte for byte, with and without heterogeneous
    // silicon. `SlotTables::build`'s non-divisor guard itself is pinned by
    // an in-crate unit test.
    let mut cfg = config(42, FaultPlanConfig::none());
    cfg.disable_slot_memo = true;
    assert_equivalent(&cfg, PolicyKind::SmartOClock, "slot memo disabled");
    let cfg = binned(cfg, 42);
    assert_equivalent(&cfg, PolicyKind::SmartOClock, "slot memo disabled binned");
}

#[test]
fn columnar_engine_matches_reference_under_fault_plans() {
    // Chaos plan across two seeds, plus the two paper-relevant policies
    // (decentralized SmartOClock and the centralized baseline) and both
    // central failure modes during outages.
    for fault_seed in [3, 99] {
        let cfg = config(42, chaos_faults(fault_seed));
        assert_equivalent(
            &cfg,
            PolicyKind::SmartOClock,
            &format!("chaos {fault_seed}"),
        );
        assert_equivalent(&cfg, PolicyKind::Central, &format!("chaos {fault_seed}"));
    }
    let mut open = config(42, chaos_faults(5));
    open.central_fail_open = true;
    assert_equivalent(&open, PolicyKind::Central, "chaos fail-open");
}

#[test]
fn reference_runs_are_deterministic() {
    // The reference engine itself must be reproducible, or the comparisons
    // above prove nothing.
    let cfg = config(42, chaos_faults(11));
    assert_eq!(
        reference_run(&cfg, PolicyKind::SmartOClock),
        reference_run(&cfg, PolicyKind::SmartOClock),
    );
}

/// ROADMAP direction-1 scale smoke: 100k racks, a simulated week of
/// evaluation, streamed through the sharded path (traces generated inside
/// each worker, so memory stays bounded by shard, not fleet). Byte-equal
/// outcomes at 1 and 4 threads. Too slow for tier-1 — CI's perf-gate job
/// runs it via `--include-ignored`.
#[test]
#[ignore = "multi-minute scale smoke; run in CI perf-gate with --include-ignored"]
fn smoke_100k_racks_streams_and_stays_deterministic() {
    let mut cfg = LargeScaleConfig::small_test();
    cfg.racks = 100_000;
    cfg.servers_per_rack = (1, 2);
    cfg.weeks = 2;
    // 6h divides a day evenly (template slots stay aligned) and keeps the
    // run to ~8 evaluated steps per rack.
    cfg.step = SimDuration::from_hours(6);
    // Heterogeneous silicon at scale: the per-bin tables must stay
    // deterministic across sharding too.
    let cfg = binned(cfg, 42);
    let telemetry = Telemetry::disabled();
    let one = simulate_policy_sharded(&cfg, PolicyKind::SmartOClock, &telemetry, 1);
    assert_eq!(one.len(), 100_000);
    let four = simulate_policy_sharded(&cfg, PolicyKind::SmartOClock, &telemetry, 4);
    assert_eq!(one, four, "100k-rack outcomes diverged at 4 threads");
    let granted: u64 = one.iter().map(|o| o.granted).sum();
    assert!(granted > 0, "no overclocking granted across 100k racks");
    let denied: u64 = one.iter().map(|o| o.bin_denied).sum();
    assert!(denied > 0, "a 0.3 risk budget must deny some of 100k racks");
}

//! Cross-crate integration: the deployment-shaped threaded runtime driven by
//! generated traces and gOA budgets — the full per-server-daemon path.

use simcore::time::{SimDuration, SimTime};
use smartoclock::config::SoaConfig;
use smartoclock::goa::{GlobalOverclockAgent, ServerProfile};
use smartoclock::messages::OverclockRequest;
use smartoclock::policy::PolicyKind;
use smartoclock::runtime::RackRuntime;
use soc_power::rack::{RackMonitor, RackSignal};
use soc_power::units::Watts;
use soc_predict::template::{PowerTemplate, TemplateKind};
use soc_traces::gen::{FleetConfig, TraceGenerator};

#[test]
fn threaded_rack_follows_goa_budgets_from_traces() {
    // Generate a rack, build per-server profiles, compute heterogeneous
    // budgets, and drive one simulated hour through threaded agents.
    let mut cfg = FleetConfig::small_test();
    cfg.servers_per_rack_min = 4;
    cfg.servers_per_rack_max = 4;
    let generator = TraceGenerator::new(17);
    let rack = generator.generate_rack(&cfg, 0);
    let model = generator.model_for(rack.generation);
    let oc_freq = model.plan().max_overclock();

    let profiles: Vec<ServerProfile> = rack
        .servers
        .iter()
        .map(|s| ServerProfile::from_history(&s.power, &s.oc_demand_cores, &model, oc_freq, 0.9))
        .collect();
    let goa = GlobalOverclockAgent::new(rack.limit, PolicyKind::SmartOClock);

    let runtime = RackRuntime::start(
        rack.servers.len(),
        model,
        SoaConfig::reference(),
        PolicyKind::SmartOClock,
    );

    // Push budgets and templates, as the weekly exchange would.
    let now = SimTime::ZERO + SimDuration::WEEK;
    let budgets = goa.budgets_at(now, &profiles);
    for (i, (budget, server)) in budgets.iter().zip(&rack.servers).enumerate() {
        runtime.set_budget(i, *budget);
        runtime.set_template(
            i,
            PowerTemplate::build(&server.power, TemplateKind::DailyMed),
        );
    }

    // Drive one hour of 30-second ticks with rack-level signals.
    let mut monitor = RackMonitor::new(rack.limit, 0.95);
    let mut granted = 0usize;
    let mut rejected = 0usize;
    for k in 0..120u64 {
        let t = now + SimDuration::from_secs(30 * k);
        // Each server with trace demand submits a request once.
        if k == 2 {
            for (i, server) in rack.servers.iter().enumerate() {
                let cores = server.oc_demand_cores.max().max(2.0) as usize;
                let req =
                    OverclockRequest::metrics_based(format!("srv{i}-vm"), cores.min(8), oc_freq);
                match runtime.request(i, t, req) {
                    Ok(_) => granted += 1,
                    Err(_) => rejected += 1,
                }
            }
        }
        let measured: Vec<Watts> = rack
            .servers
            .iter()
            .map(|s| Watts::new(s.power.value_at(t).unwrap_or(0.0)))
            .collect();
        let total: Watts = measured.iter().copied().sum();
        let signal = monitor.observe(total);
        runtime.tick_all(t, &measured, Some(signal));
    }
    // Let the threads drain, then inspect.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let events = runtime.drain_events();
    let stats = runtime.stats();
    assert_eq!(granted + rejected, rack.servers.len());
    assert!(
        granted > 0,
        "budgets from real traces should admit some requests"
    );
    assert!(
        !events.is_empty(),
        "the feedback loop should have produced frequency commands"
    );
    let total_requests: u64 = stats.iter().map(|s| s.requests).sum();
    assert_eq!(total_requests as usize, granted + rejected);
    // Baseline traces stay below the limit, so no capping resets occurred.
    assert!(monitor.capping_events() == 0 || signal_seen(&stats));
    runtime.shutdown();
}

fn signal_seen(stats: &[smartoclock::soa::SoaStats]) -> bool {
    stats.iter().any(|s| s.capping_resets > 0)
}

#[test]
fn runtime_survives_goa_silence() {
    // Fault tolerance (§III-Q5): agents keep serving requests with stale
    // budgets when no gOA messages arrive at all.
    let model = soc_power::model::PowerModel::reference_server();
    let runtime = RackRuntime::start(2, model, SoaConfig::reference(), PolicyKind::SmartOClock);
    runtime.set_budget(0, Watts::new(450.0));
    runtime.set_budget(1, Watts::new(450.0));
    // ... and then the gOA goes silent forever.
    for k in 0..10u64 {
        let t = SimTime::ZERO + SimDuration::from_minutes(10 * k);
        let req = OverclockRequest::metrics_based("vm", 4, model.plan().max_overclock());
        let grant = runtime
            .request(k as usize % 2, t, req)
            .expect("stale budgets keep working");
        runtime.tick_all(
            t,
            &[Watts::new(250.0), Watts::new(250.0)],
            Some(RackSignal::Normal),
        );
        runtime.end(k as usize % 2, t + SimDuration::from_minutes(5), grant);
    }
    runtime.shutdown();
}

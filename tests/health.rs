//! Health-recording-is-observation-only harness.
//!
//! The fleet-health layer (`soc-health` + the `gauge`/`event` hooks on
//! `soc_cluster::probe::ShardProbe`) must never perturb the simulation:
//! attaching a live [`HealthProbe`] to the sharded engine has to yield
//! byte-identical telemetry traces, metrics, and outcomes to the default
//! [`NoopProbe`] run, at any thread count. That is what lets `--health`
//! default to off-but-harmless in every bench binary.
//!
//! The chaos case then drives the recorder end to end: an injected gOA
//! outage must surface as exactly one resolved degraded-window incident
//! whose sim-time bounds match the generated fault plan and whose root
//! cause joins back to a real decision id in the trace.

use simcore::faults::FaultPlan;
use simcore::time::{SimDuration, SimTime};
use smartoclock::policy::PolicyKind;
use soc_bench::probe::HealthProbe;
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::probe::{NoopProbe, ShardProbe};
use soc_cluster::shard::simulate_policy_sharded_probed;
use soc_health::{default_rules, Recorder};
use soc_telemetry::json::event_to_json;
use soc_telemetry::Telemetry;

fn small_config(seed: u64) -> LargeScaleConfig {
    let mut cfg = LargeScaleConfig::small_test();
    cfg.seed = seed;
    cfg
}

/// Run one traced policy simulation under `probe`; return (trace lines,
/// rendered metrics, outcomes) — everything a consumer can observe.
fn probed_run(
    cfg: &LargeScaleConfig,
    threads: usize,
    probe: &dyn ShardProbe,
) -> (
    Vec<String>,
    String,
    Vec<soc_cluster::largescale_metrics::RackOutcome>,
) {
    let (tm, sink) = Telemetry::memory();
    let outcomes =
        simulate_policy_sharded_probed(cfg, PolicyKind::SmartOClock, &tm, threads, probe);
    let lines: Vec<String> = sink.events().iter().map(event_to_json).collect();
    let metrics = tm.metrics_snapshot().render();
    (lines, metrics, outcomes)
}

#[test]
fn health_recorded_run_is_byte_identical_to_unrecorded() {
    let cfg = small_config(11);
    for threads in [1, 4] {
        let baseline = probed_run(&cfg, threads, &NoopProbe);
        let recorder = Recorder::new("health-test");
        let probed = probed_run(&cfg, threads, &HealthProbe::new(recorder.clone()));
        assert_eq!(
            baseline.0, probed.0,
            "telemetry trace changed under health recording at {threads} threads"
        );
        assert_eq!(
            baseline.1, probed.1,
            "metrics snapshot changed under health recording at {threads} threads"
        );
        assert_eq!(
            baseline.2, probed.2,
            "outcomes changed under health recording at {threads} threads"
        );
        // ... and the recorder really was live, not silently disabled: the
        // engine's per-rack draw gauges landed in the store.
        assert!(
            recorder.samples() > 0,
            "expected gauge samples, recorder stayed empty"
        );
        let report = recorder
            .finalize(&default_rules(cfg.step.as_micros()))
            .expect("enabled recorder finalizes to a report");
        assert!(
            report.store.entities("rack_draw_w").len() == cfg.racks,
            "expected one rack_draw_w series per rack"
        );
    }
}

#[test]
fn health_series_are_identical_across_thread_counts() {
    // Each series is fed by exactly one worker in time order, so the
    // canonical store (and with it the health JSON) must not depend on how
    // racks were dealt across threads.
    let cfg = small_config(23);
    let mut reports = Vec::new();
    for threads in [1, 4] {
        let recorder = Recorder::new("health-test");
        let _ = probed_run(&cfg, threads, &HealthProbe::new(recorder.clone()));
        let report = recorder
            .finalize(&default_rules(cfg.step.as_micros()))
            .expect("report");
        reports.push(soc_health::json::to_json(&report));
    }
    assert_eq!(
        reports[0], reports[1],
        "health JSON differs across thread counts"
    );
}

#[test]
fn injected_goa_outage_produces_one_resolved_incident() {
    let mut cfg = small_config(42);
    cfg.faults.seed = 7;
    cfg.faults.goa_outages = 1;
    cfg.faults.goa_outage_len = SimDuration::from_hours(12);

    // Expected degraded-window bounds, from the same pure fault plan the
    // engine realizes: the racks step a fixed grid, so the window is entered
    // at the first grid point inside the outage and left at the first grid
    // point after it.
    let train_end = SimTime::ZERO + SimDuration::WEEK;
    let trace_end = SimTime::ZERO + SimDuration::WEEK * cfg.weeks;
    let plan = FaultPlan::generate(&cfg.faults, train_end, trace_end);
    let (mut enter_us, mut exit_us) = (None, None);
    let mut t = train_end;
    while t < trace_end {
        let down = plan.goa_unreachable(t);
        if down && enter_us.is_none() {
            enter_us = Some(t.as_micros());
        }
        if !down && enter_us.is_some() && exit_us.is_none() {
            exit_us = Some(t.as_micros());
        }
        t += cfg.step;
    }
    let enter_us = enter_us.expect("outage starts inside the horizon");
    let exit_us = exit_us.expect("outage ends inside the horizon");

    let recorder = Recorder::new("chaos-health");
    let _ = probed_run(&cfg, 2, &HealthProbe::new(recorder.clone()));
    let report = recorder
        .finalize(&default_rules(cfg.step.as_micros()))
        .expect("report");

    // One outage, all racks degraded over the same window: the overlapping
    // per-rack alerts group into exactly one degraded incident, and every
    // incident (including any near-limit headroom windows elsewhere in the
    // run) is resolved by the end of the trace.
    let degraded: Vec<_> = report
        .incidents
        .iter()
        .filter(|i| i.rules().contains(&"degraded"))
        .collect();
    assert_eq!(
        degraded.len(),
        1,
        "expected exactly one degraded incident, got {:?}",
        report.incidents
    );
    let incident = degraded[0];
    assert_eq!(incident.start_us, enter_us, "incident start off the plan");
    assert_eq!(
        incident.end_us,
        Some(exit_us),
        "incident did not resolve at the planned exit"
    );
    assert_eq!(report.open_incidents(), 0);
    assert_eq!(report.resolved_incidents(), report.incidents.len());
    // Every rack contributed a degraded alert to the single incident.
    assert_eq!(incident.alerts.len(), cfg.racks);
    assert!(incident.rules().iter().all(|r| *r == "degraded"));
    // Root cause joins back to a real decision in the trace, and the causal
    // chain names the degraded entry.
    assert_ne!(incident.root_decision, 0, "incident is unattributed");
    assert!(
        incident.cause.contains("degraded_enter"),
        "cause chain {:?} does not mention degraded_enter",
        incident.cause
    );
}

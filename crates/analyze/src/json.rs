//! Minimal hand-rolled JSON parser for telemetry traces.
//!
//! The workspace deliberately has no JSON crate; `soc-telemetry` emits a
//! small, well-formed subset of JSON (flat objects of scalars), so a
//! recursive-descent parser of ~200 lines keeps `soc-analyze` dependency-free
//! while still accepting any valid JSON document.

use std::fmt;

/// A parsed JSON value.
///
/// Numbers without a fraction or exponent that fit in `i64` parse as
/// [`JsonValue::Int`]; everything else numeric parses as [`JsonValue::Float`].
/// Object keys keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::Float(x) => Some(*x),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
///
/// # Errors
/// Returns a [`JsonError`] with the byte offset of the first invalid input.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed (the input is a &str, so it is valid).
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Byte width of the UTF-8 sequence starting with `first`.
fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_telemetry_line() {
        let line = r#"{"t_us":42,"component":"soa","severity":"warn","name":"oc_deny","fields":{"server":7,"reason":"power_budget","ok":false,"x":2.5,"n":null}}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("t_us"), Some(&JsonValue::Int(42)));
        assert_eq!(v.get("component").and_then(JsonValue::as_str), Some("soa"));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("server").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(fields.get("x").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(fields.get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(fields.get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn integers_and_floats_are_distinguished() {
        assert_eq!(parse("7").unwrap(), JsonValue::Int(7));
        assert_eq!(parse("-3").unwrap(), JsonValue::Int(-3));
        assert_eq!(parse("7.0").unwrap(), JsonValue::Float(7.0));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Float(1000.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd\u0001e\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{01}e\u{e9}"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn arrays_and_nesting() {
        let v = parse(r#"[1, {"a": [true, null]}, "x"]"#).unwrap();
        let JsonValue::Arr(items) = &v else {
            panic!("expected array")
        };
        assert_eq!(items.len(), 3);
        assert_eq!(
            items[1].get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Bool(true),
                JsonValue::Null
            ]))
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn non_ascii_outside_escapes_survives() {
        let v = parse("\"caf\u{e9} \u{1F600}\"").unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9} \u{1F600}"));
    }
}

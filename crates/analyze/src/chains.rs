//! Causal-chain reconstruction over `decision_id`/`cause_id` links.
//!
//! Control-plane events carry a `decision_id` (the id of the decision the
//! event records) and a `cause_id` (the id of the parent decision). Walking
//! `cause_id` links backwards from a terminal event (an SLO miss, a grant
//! revocation) reconstructs the full story: warning → cap → revoke →
//! SLO-miss.

use crate::trace::{Trace, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Terminal event names a chain may end at, in severity order: these are the
/// outcomes an operator wants explained. `budget_violation` is emitted by
/// the fault-injection layer when a post-enforcement rack draw exceeds the
/// contracted limit (only fail-open baselines produce it);
/// `degraded_enter`/`degraded_exit` bracket the stale-budget windows a gOA
/// outage forces on a rack.
pub const DEFAULT_TERMINALS: [&str; 5] = [
    "budget_violation",
    "degraded_enter",
    "degraded_exit",
    "slo_miss",
    "revoke",
];

/// One reconstructed causal chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalChain {
    /// Indices into [`Trace::events`], root decision first, terminal last.
    pub path: Vec<usize>,
}

impl CausalChain {
    /// Number of links in the chain (events on the path).
    pub fn depth(&self) -> usize {
        self.path.len()
    }
}

/// Map every non-zero `decision_id` to the index of the first event carrying
/// it. Single-threaded runs allocate ids sequentially, so the first carrier
/// *is* the decision event; duplicates only appear in merged traces.
pub fn decision_index(trace: &Trace) -> BTreeMap<u64, usize> {
    let mut index = BTreeMap::new();
    for (i, event) in trace.events().iter().enumerate() {
        let id = event.decision_id();
        if id != 0 {
            index.entry(id).or_insert(i);
        }
    }
    index
}

/// Reconstruct the causal chain ending at event `terminal` (an index into
/// [`Trace::events`]) by following `cause_id` links. Cycles (possible only in
/// corrupt traces) and dangling links terminate the walk.
pub fn chain_ending_at(
    trace: &Trace,
    index: &BTreeMap<u64, usize>,
    terminal: usize,
) -> CausalChain {
    let mut path = vec![terminal];
    let mut cause = trace.events()[terminal].cause_id();
    while cause != 0 {
        let Some(&i) = index.get(&cause) else { break };
        if path.contains(&i) {
            break; // cycle guard
        }
        path.push(i);
        cause = trace.events()[i].cause_id();
    }
    path.reverse();
    CausalChain { path }
}

/// Reconstruct one chain per event whose name is in `terminals`, in canonical
/// trace order.
pub fn chains(trace: &Trace, terminals: &[&str]) -> Vec<CausalChain> {
    let index = decision_index(trace);
    trace
        .events()
        .iter()
        .enumerate()
        .filter(|(_, e)| terminals.contains(&e.name.as_str()))
        .map(|(i, _)| chain_ending_at(trace, &index, i))
        .collect()
}

/// Aggregate statistics over the trace's causal links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainStats {
    /// Chains reconstructed (one per terminal event).
    pub chains: usize,
    /// Links in the longest chain.
    pub longest: usize,
    /// Chains with at least two events (the cause link resolved).
    pub multi_event: usize,
    /// Non-zero `cause_id`s anywhere in the trace that resolve to a
    /// `decision_id` present in the trace.
    pub resolved_links: usize,
    /// Non-zero `cause_id`s that do not resolve (trace was truncated, or the
    /// producer dropped the parent event).
    pub dangling_links: usize,
}

/// Compute [`ChainStats`] for `trace` with the given terminal event names.
pub fn stats(trace: &Trace, terminals: &[&str]) -> ChainStats {
    let index = decision_index(trace);
    let all = chains(trace, terminals);
    let mut s = ChainStats {
        chains: all.len(),
        longest: all.iter().map(CausalChain::depth).max().unwrap_or(0),
        multi_event: all.iter().filter(|c| c.depth() > 1).count(),
        ..ChainStats::default()
    };
    for event in trace.events() {
        let cause = event.cause_id();
        if cause != 0 {
            if index.contains_key(&cause) {
                s.resolved_links += 1;
            } else {
                s.dangling_links += 1;
            }
        }
    }
    s
}

/// Render one event for a chain timeline: label plus its fields (ids last).
fn render_event(out: &mut String, event: &TraceEvent, indent: usize) {
    let _ = write!(out, "{:indent$}{}", "", event.label(), indent = indent);
    if let crate::json::JsonValue::Obj(members) = &event.fields {
        for (k, v) in members {
            if k == "decision_id" || k == "cause_id" {
                continue;
            }
            let _ = write!(out, " {k}=");
            match v {
                crate::json::JsonValue::Str(s) => {
                    let _ = write!(out, "{s}");
                }
                crate::json::JsonValue::Int(n) => {
                    let _ = write!(out, "{n}");
                }
                crate::json::JsonValue::Float(x) => {
                    let _ = write!(out, "{x:.3}");
                }
                crate::json::JsonValue::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                _ => {
                    let _ = write!(out, "?");
                }
            }
        }
    }
    let (d, c) = (event.decision_id(), event.cause_id());
    if d != 0 {
        let _ = write!(out, " decision={d}");
    }
    if c != 0 {
        let _ = write!(out, " cause={c}");
    }
    out.push('\n');
}

/// Render up to `limit` chains as indented timelines (0 = no limit).
pub fn render_chains(trace: &Trace, chains: &[CausalChain], limit: usize) -> String {
    let mut out = String::new();
    let shown = if limit == 0 {
        chains.len()
    } else {
        chains.len().min(limit)
    };
    for (n, chain) in chains.iter().take(shown).enumerate() {
        let terminal = &trace.events()[*chain.path.last().expect("non-empty path")];
        let _ = writeln!(
            out,
            "chain #{} (depth {}, ends {} @ {}us)",
            n + 1,
            chain.depth(),
            terminal.name,
            terminal.t_us
        );
        for (level, &i) in chain.path.iter().enumerate() {
            render_event(&mut out, &trace.events()[i], 2 * (level + 1));
        }
    }
    if shown < chains.len() {
        let _ = writeln!(out, "... {} more chains not shown", chains.len() - shown);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Trace {
        let text = concat!(
            r#"{"t_us":100,"component":"harness","severity":"error","name":"rack_capping","fields":{"decision_id":1}}"#,
            "\n",
            r#"{"t_us":100,"component":"harness","severity":"error","name":"cap_set","fields":{"server":3,"decision_id":2,"cause_id":1}}"#,
            "\n",
            r#"{"t_us":100,"component":"harness","severity":"error","name":"revoke","fields":{"server":3,"decision_id":3,"cause_id":2}}"#,
            "\n",
            r#"{"t_us":200,"component":"harness","severity":"warn","name":"slo_miss","fields":{"service":3,"attribution":"cap","decision_id":4,"cause_id":2}}"#,
            "\n",
            r#"{"t_us":300,"component":"harness","severity":"warn","name":"slo_miss","fields":{"service":1,"attribution":"queueing","decision_id":5,"cause_id":0}}"#,
            "\n",
            r#"{"t_us":400,"component":"soa","severity":"info","name":"oc_release","fields":{"server":9,"cause_id":77}}"#,
        );
        Trace::parse(text).unwrap()
    }

    #[test]
    fn chains_walk_cause_links_to_the_root() {
        let trace = fixture();
        let all = chains(&trace, &DEFAULT_TERMINALS);
        // Terminals in canonical order: revoke@100, slo_miss@200, slo_miss@300.
        assert_eq!(all.len(), 3);
        let names: Vec<Vec<&str>> = all
            .iter()
            .map(|c| {
                c.path
                    .iter()
                    .map(|&i| trace.events()[i].name.as_str())
                    .collect()
            })
            .collect();
        assert_eq!(names[0], vec!["rack_capping", "cap_set", "revoke"]);
        assert_eq!(names[1], vec!["rack_capping", "cap_set", "slo_miss"]);
        assert_eq!(names[2], vec!["slo_miss"]);
    }

    #[test]
    fn stats_count_resolution() {
        let trace = fixture();
        let s = stats(&trace, &DEFAULT_TERMINALS);
        assert_eq!(s.chains, 3);
        assert_eq!(s.longest, 3);
        assert_eq!(s.multi_event, 2);
        assert_eq!(s.resolved_links, 3); // cap_set, revoke, slo_miss@200
        assert_eq!(s.dangling_links, 1); // oc_release cause 77
    }

    #[test]
    fn rendering_is_indented_and_bounded() {
        let trace = fixture();
        let all = chains(&trace, &DEFAULT_TERMINALS);
        let text = render_chains(&trace, &all, 2);
        assert!(text.contains("chain #1 (depth 3, ends revoke @ 100us)"));
        assert!(text.contains("rack_capping"));
        assert!(text.contains("attribution=cap"));
        assert!(text.contains("... 1 more chains not shown"));
    }

    #[test]
    fn cycle_in_corrupt_trace_terminates() {
        let text = concat!(
            r#"{"t_us":1,"component":"soa","severity":"info","name":"revoke","fields":{"decision_id":1,"cause_id":2}}"#,
            "\n",
            r#"{"t_us":2,"component":"soa","severity":"info","name":"x","fields":{"decision_id":2,"cause_id":1}}"#,
        );
        let trace = Trace::parse(text).unwrap();
        let all = chains(&trace, &["revoke"]);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].depth(), 2);
    }
}

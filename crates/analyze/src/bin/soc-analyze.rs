//! `soc-analyze` — command-line trace analysis.
//!
//! ```text
//! soc-analyze summary   <trace.jsonl>
//! soc-analyze chains    <trace.jsonl> [--limit N]
//! soc-analyze attribute <trace.jsonl>
//! soc-analyze metrics   <trace.jsonl>
//! soc-analyze report    <trace.jsonl> [--out report.txt]
//! soc-analyze diff      <a.jsonl> <b.jsonl> [--filter-a k=v] [--filter-b k=v]
//!                       [--strip-label policy] [--out report.txt]
//! ```
//!
//! Traces come from any bench binary run with `--trace-out` (or `SOC_TRACE`).

use soc_analyze::chains::{self, DEFAULT_TERMINALS};
use soc_analyze::{report, rollup, AttributionCounts, Trace, TraceDiff};
use std::process::ExitCode;

const USAGE: &str = "usage: soc-analyze <command> [args]

commands:
  summary   <trace.jsonl>                 event counts, span, link health
  chains    <trace.jsonl> [--limit N]     causal chains ending at revoke/slo_miss/
                                          budget_violation/degraded_enter/
                                          degraded_exit
  attribute <trace.jsonl>                 SLO-miss attribution table
  metrics   <trace.jsonl>                 end-of-run metric rollups
  report    <trace.jsonl> [--out FILE]    full report (all of the above)
  diff      <a.jsonl> <b.jsonl> [--filter-a k=v] [--filter-b k=v]
            [--strip-label LABEL] [--out FILE]
                                          A/B comparison of two traces

Traces are produced by the soc-bench binaries via --trace-out (or SOC_TRACE).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("soc-analyze: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `--flag value` pairs pulled out of the argument list.
type Flags<'a> = Vec<(&'a str, &'a str)>;

/// Split off every `--flag value` pair; returns (positional, flags).
fn split_flags(args: &[String]) -> Result<(Vec<&str>, Flags<'_>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(name) = arg.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(arg);
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| *v)
}

fn load(path: &str) -> Result<Trace, String> {
    Trace::load(path).map_err(|e| format!("{path}: {e}"))
}

/// Print to stdout, or write to `--out FILE` when given.
fn deliver(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text)
            .map_err(|e| format!("writing {path}: {e}"))
            .map(|()| eprintln!("soc-analyze: report written to {path}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first().map(String::as_str) else {
        return Err(USAGE.to_string());
    };
    let (positional, flags) = split_flags(&args[1..])?;
    let need = |n: usize| -> Result<(), String> {
        if positional.len() == n {
            Ok(())
        } else {
            Err(format!("{command} takes {n} trace path(s)\n\n{USAGE}"))
        }
    };
    match command {
        "summary" => {
            need(1)?;
            print!("{}", report::summary(&load(positional[0])?));
            Ok(())
        }
        "chains" => {
            need(1)?;
            let limit: usize = match flag(&flags, "limit") {
                Some(v) => v.parse().map_err(|_| format!("bad --limit {v}"))?,
                None => 0,
            };
            let trace = load(positional[0])?;
            let all = chains::chains(&trace, &DEFAULT_TERMINALS);
            if all.is_empty() {
                println!(
                    "no revoke, slo_miss, budget_violation, or degraded-window events in {}",
                    positional[0]
                );
            } else {
                print!("{}", chains::render_chains(&trace, &all, limit));
            }
            Ok(())
        }
        "attribute" => {
            need(1)?;
            let counts = AttributionCounts::from_trace(&load(positional[0])?);
            if counts.total() == 0 {
                println!("no slo_miss events in {}", positional[0]);
            } else {
                print!("{}", counts.table().render());
            }
            Ok(())
        }
        "metrics" => {
            need(1)?;
            let trace = load(positional[0])?;
            let scalars = rollup::scalar_metric_table(&trace);
            let hists = rollup::histogram_table(&trace);
            if scalars.is_empty() && hists.is_empty() {
                println!("no metric records in {}", positional[0]);
                return Ok(());
            }
            if !scalars.is_empty() {
                print!("{}", scalars.render());
            }
            if !hists.is_empty() {
                print!("{}", hists.render());
            }
            Ok(())
        }
        "report" => {
            need(1)?;
            let trace = load(positional[0])?;
            deliver(
                &report::full_report(&trace, positional[0]),
                flag(&flags, "out"),
            )
        }
        "diff" => {
            need(2)?;
            let mut a = load(positional[0])?;
            let mut b = load(positional[1])?;
            let apply = |trace: Trace, spec: Option<&str>| -> Result<Trace, String> {
                match spec {
                    Some(spec) => {
                        let (key, value) = spec
                            .split_once('=')
                            .ok_or_else(|| format!("filter '{spec}' is not k=v"))?;
                        Ok(trace.filter_field(key, value))
                    }
                    None => Ok(trace),
                }
            };
            a = apply(a, flag(&flags, "filter-a"))?;
            b = apply(b, flag(&flags, "filter-b"))?;
            let diff = TraceDiff::compute(&a, &b, flag(&flags, "strip-label"));
            deliver(
                &diff.render(positional[0], positional[1]),
                flag(&flags, "out"),
            )
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

//! Loading and canonicalizing JSONL telemetry traces.

use crate::json::{self, JsonValue};
use std::fmt;
use std::path::Path;

/// One parsed telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated timestamp in microseconds.
    pub t_us: u64,
    /// Emitting component (`wi`, `soa`, `goa`, `rack`, `harness`, `sim`,
    /// `metrics`).
    pub component: String,
    /// Severity (`debug`, `info`, `warn`, `error`).
    pub severity: String,
    /// Event name, e.g. `cap_set`.
    pub name: String,
    /// The `fields` object of the record.
    pub fields: JsonValue,
    /// The original JSONL line (used as a canonical-order tiebreaker).
    pub raw: String,
}

impl TraceEvent {
    /// A string field, if present.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(JsonValue::as_str)
    }

    /// An unsigned integer field, if present.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.fields.get(key).and_then(JsonValue::as_u64)
    }

    /// A numeric field widened to `f64`, if present.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(JsonValue::as_f64)
    }

    /// The event's own causal decision id (`0` when absent).
    pub fn decision_id(&self) -> u64 {
        self.field_u64("decision_id").unwrap_or(0)
    }

    /// The decision id of the event's parent decision (`0` when absent).
    pub fn cause_id(&self) -> u64 {
        self.field_u64("cause_id").unwrap_or(0)
    }

    /// Whether this is an end-of-run `metric` registry record.
    pub fn is_metric(&self) -> bool {
        self.name == "metric" && self.component == "metrics"
    }

    /// For `metric` records: the rendered metric key, e.g.
    /// `rack_power_w{rack=0}`.
    pub fn metric_key(&self) -> Option<&str> {
        self.field_str("key")
    }

    /// For `metric` records: the metric kind (`counter`, `gauge`, `hist`).
    pub fn metric_kind(&self) -> Option<&str> {
        self.field_str("kind")
    }

    /// A compact `time component name` label for timeline rendering.
    pub fn label(&self) -> String {
        format!(
            "[{:>12}us] {:<7} {:<5} {}",
            self.t_us, self.component, self.severity, self.name
        )
    }
}

/// A load/parse failure.
#[derive(Debug)]
pub enum TraceError {
    /// File I/O failed.
    Io(std::io::Error),
    /// A line was not valid JSON or missed a required key.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A canonically ordered telemetry trace.
///
/// Events are sorted by `(t_us, raw line)` on load, so two traces containing
/// the same *set* of lines analyze identically regardless of the order the
/// sink happened to write them in (multi-threaded runs flush spools in
/// nondeterministic interleavings).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Parse a trace from JSONL text. Blank lines are skipped.
    ///
    /// # Errors
    /// Returns [`TraceError::Parse`] on the first malformed line.
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = json::parse(line).map_err(|e| TraceError::Parse {
                line: i + 1,
                message: e.to_string(),
            })?;
            let missing = |key: &str| TraceError::Parse {
                line: i + 1,
                message: format!("record is missing \"{key}\""),
            };
            let t_us = value
                .get("t_us")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| missing("t_us"))?;
            let component = value
                .get("component")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| missing("component"))?
                .to_string();
            let severity = value
                .get("severity")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| missing("severity"))?
                .to_string();
            let name = value
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| missing("name"))?
                .to_string();
            let fields = value
                .get("fields")
                .cloned()
                .unwrap_or(JsonValue::Obj(vec![]));
            events.push(TraceEvent {
                t_us,
                component,
                severity,
                name,
                fields,
                raw: line.to_string(),
            });
        }
        events.sort_by(|a, b| a.t_us.cmp(&b.t_us).then_with(|| a.raw.cmp(&b.raw)));
        Ok(Trace { events })
    }

    /// Load a trace from a JSONL file.
    ///
    /// # Errors
    /// Returns [`TraceError::Io`] when reading fails, or the first parse
    /// error.
    pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        let text = std::fs::read_to_string(path)?;
        Trace::parse(&text)
    }

    /// The events in canonical order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterate the non-metric (control-plane) events.
    pub fn control_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| !e.is_metric())
    }

    /// Iterate the `metric` registry records.
    pub fn metric_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.is_metric())
    }

    /// Keep only events where field `key` renders (via `Display`-like
    /// formatting) to `value` — e.g. `policy=SmartOClock` to isolate one
    /// policy's events from a multi-policy trace. `metric` registry records
    /// match on the `key=value` label inside their metric key instead, so a
    /// policy filter keeps that policy's counters too.
    pub fn filter_field(&self, key: &str, value: &str) -> Trace {
        let label = format!("{key}={value}");
        let has_label = |metric_key: &str| {
            let Some(open) = metric_key.find('{') else {
                return false;
            };
            metric_key[open + 1..]
                .trim_end_matches('}')
                .split(',')
                .any(|pair| pair == label)
        };
        let events = self
            .events
            .iter()
            .filter(|e| {
                if e.is_metric() {
                    return e.metric_key().is_some_and(has_label);
                }
                e.fields.get(key).is_some_and(|v| match v {
                    JsonValue::Str(s) => s == value,
                    JsonValue::Int(n) => n.to_string() == value,
                    JsonValue::Float(x) => x.to_string() == value,
                    JsonValue::Bool(b) => b.to_string() == value,
                    _ => false,
                })
            })
            .cloned()
            .collect();
        Trace { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINES: &str = concat!(
        r#"{"t_us":2000,"component":"harness","severity":"error","name":"cap_set","fields":{"server":1,"decision_id":5,"cause_id":4}}"#,
        "\n",
        r#"{"t_us":1000,"component":"soa","severity":"info","name":"oc_grant","fields":{"server":1,"decision_id":2,"cause_id":1}}"#,
        "\n\n",
        r#"{"t_us":2000,"component":"harness","severity":"error","name":"revoke","fields":{"server":1,"decision_id":6,"cause_id":5}}"#,
        "\n",
    );

    #[test]
    fn parse_sorts_by_time_then_line() {
        let trace = Trace::parse(LINES).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.events()[0].name, "oc_grant");
        // Same timestamp: "cap_set" line sorts before "revoke" line.
        assert_eq!(trace.events()[1].name, "cap_set");
        assert_eq!(trace.events()[2].name, "revoke");
        assert_eq!(trace.events()[1].decision_id(), 5);
        assert_eq!(trace.events()[2].cause_id(), 5);
    }

    #[test]
    fn shuffled_input_parses_to_identical_order() {
        let mut lines: Vec<&str> = LINES.lines().filter(|l| !l.is_empty()).collect();
        lines.reverse();
        let shuffled = lines.join("\n");
        let a = Trace::parse(LINES).unwrap();
        let b = Trace::parse(&shuffled).unwrap();
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = Trace::parse("{\"t_us\":1}\nnot json\n").unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 1), // missing keys
            other => panic!("unexpected: {other}"),
        }
        let err = Trace::parse(
            r#"{"t_us":1,"component":"soa","severity":"info","name":"x","fields":{}}
broken"#,
        )
        .unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn filter_field_matches_rendered_values() {
        let text = concat!(
            r#"{"t_us":1,"component":"sim","severity":"info","name":"a","fields":{"policy":"SmartOClock","rack":0}}"#,
            "\n",
            r#"{"t_us":2,"component":"sim","severity":"info","name":"b","fields":{"policy":"NaiveOClock","rack":1}}"#,
        );
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.filter_field("policy", "SmartOClock").len(), 1);
        assert_eq!(trace.filter_field("rack", "1").len(), 1);
        assert_eq!(trace.filter_field("policy", "nope").len(), 0);
    }

    #[test]
    fn filter_field_matches_metric_key_labels() {
        let text = concat!(
            r#"{"t_us":9,"component":"metrics","severity":"debug","name":"metric","fields":{"kind":"counter","key":"sim_grants{policy=SmartOClock}","value":3}}"#,
            "\n",
            r#"{"t_us":9,"component":"metrics","severity":"debug","name":"metric","fields":{"kind":"counter","key":"sim_grants{policy=NaiveOClock}","value":5}}"#,
            "\n",
            r#"{"t_us":9,"component":"metrics","severity":"debug","name":"metric","fields":{"kind":"counter","key":"plain_counter","value":1}}"#,
        );
        let trace = Trace::parse(text).unwrap();
        let smart = trace.filter_field("policy", "SmartOClock");
        assert_eq!(smart.len(), 1);
        assert_eq!(
            smart.events()[0].metric_key(),
            Some("sim_grants{policy=SmartOClock}")
        );
    }
}

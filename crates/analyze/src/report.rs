//! Assembling the full analysis report for one trace.

use crate::attribution::AttributionCounts;
use crate::chains::{self, DEFAULT_TERMINALS};
use crate::rollup;
use crate::trace::Trace;
use std::fmt::Write as _;

/// Default number of causal chains shown in the full report.
pub const DEFAULT_CHAIN_LIMIT: usize = 10;

/// One-paragraph summary: event counts, simulated time span, per-component
/// counts, and causal-link health.
pub fn summary(trace: &Trace) -> String {
    let mut out = String::new();
    let control = trace.control_events().count();
    let metric = trace.metric_events().count();
    let _ = writeln!(
        out,
        "events: {} ({control} control-plane, {metric} metric records)",
        trace.len()
    );
    if let (Some(first), Some(last)) = (trace.events().first(), trace.events().last()) {
        let _ = writeln!(out, "span:   {}us .. {}us", first.t_us, last.t_us);
    }
    let mut by_component: std::collections::BTreeMap<&str, usize> =
        std::collections::BTreeMap::new();
    for event in trace.control_events() {
        *by_component.entry(event.component.as_str()).or_insert(0) += 1;
    }
    let parts: Vec<String> = by_component
        .iter()
        .map(|(c, n)| format!("{c}={n}"))
        .collect();
    if !parts.is_empty() {
        let _ = writeln!(out, "by component: {}", parts.join(" "));
    }
    let s = chains::stats(trace, &DEFAULT_TERMINALS);
    let _ = writeln!(
        out,
        "causal links: {} resolved, {} dangling; {} chains (longest {})",
        s.resolved_links, s.dangling_links, s.chains, s.longest
    );
    out
}

/// The complete deterministic analysis report: summary, causal chains,
/// SLO-miss attribution, event-class rollup, and metric tables. Two runs
/// with the same seed produce byte-identical reports.
pub fn full_report(trace: &Trace, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== soc-analyze report: {title} ==\n");
    out.push_str("-- Summary --\n");
    out.push_str(&summary(trace));

    out.push_str(
        "\n-- Causal chains (warning/cap -> revoke / SLO miss / budget violation / degraded window) --\n",
    );
    let all = chains::chains(trace, &DEFAULT_TERMINALS);
    if all.is_empty() {
        out.push_str(
            "no revoke, slo_miss, budget_violation, or degraded-window events in this trace\n",
        );
    } else {
        out.push_str(&chains::render_chains(trace, &all, DEFAULT_CHAIN_LIMIT));
    }

    out.push_str("\n-- SLO-miss attribution --\n");
    let counts = AttributionCounts::from_trace(trace);
    if counts.total() == 0 {
        out.push_str("no slo_miss events in this trace\n");
    } else {
        out.push_str(&counts.table().render());
    }

    out.push_str("\n-- Event classes --\n");
    out.push_str(&rollup::event_class_table(trace).render());

    let scalars = rollup::scalar_metric_table(trace);
    if !scalars.is_empty() {
        out.push_str("\n-- Metrics --\n");
        out.push_str(&scalars.render());
    }
    let hists = rollup::histogram_table(trace);
    if !hists.is_empty() {
        out.push_str("\n-- Histograms --\n");
        out.push_str(&hists.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_all_sections() {
        let text = concat!(
            r#"{"t_us":100,"component":"harness","severity":"error","name":"cap_set","fields":{"server":0,"decision_id":1}}"#,
            "\n",
            r#"{"t_us":100,"component":"harness","severity":"error","name":"revoke","fields":{"server":0,"decision_id":2,"cause_id":1}}"#,
            "\n",
            r#"{"t_us":200,"component":"harness","severity":"warn","name":"slo_miss","fields":{"service":0,"load":"High","attribution":"cap","decision_id":3,"cause_id":1}}"#,
            "\n",
            r#"{"t_us":300,"component":"metrics","severity":"debug","name":"metric","fields":{"kind":"counter","key":"harness_revokes{reason=cap}","value":1}}"#,
        );
        let trace = Trace::parse(text).unwrap();
        let report = full_report(&trace, "test");
        for section in [
            "-- Summary --",
            "-- Causal chains",
            "-- SLO-miss attribution --",
            "-- Event classes --",
            "-- Metrics --",
        ] {
            assert!(report.contains(section), "missing {section}:\n{report}");
        }
        assert!(report.contains("cap_set"));
        assert!(report.contains("100.0%"));
        // Determinism: rendering twice is byte-identical.
        assert_eq!(report, full_report(&trace, "test"));
    }

    #[test]
    fn empty_trace_report_degrades_gracefully() {
        let report = full_report(&Trace::parse("").unwrap(), "empty");
        assert!(report.contains("no revoke, slo_miss, budget_violation, or degraded-window events"));
        assert!(report.contains("no slo_miss events"));
    }
}

//! Run-to-run A/B comparison of two traces.
//!
//! Compares event-class counts and end-of-run metrics between a baseline
//! trace (A) and a candidate trace (B) — e.g. `SmartOClock` vs `NaiveOClock`
//! from `table1_policies`. A label key (typically `policy`) can be stripped
//! from rendered metric keys so per-policy metrics line up across runs.

use crate::rollup::{self, MetricValue};
use crate::trace::Trace;
use simcore::report::{fmt_f64, Table};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Remove the `label=...` pair named `label` from a rendered metric key
/// (`name{k=v,...}`), collapsing `name{}` to `name`.
pub fn strip_key_label(key: &str, label: &str) -> String {
    let Some(open) = key.find('{') else {
        return key.to_string();
    };
    let name = &key[..open];
    let inner = key[open + 1..].trim_end_matches('}');
    let kept: Vec<&str> = inner
        .split(',')
        .filter(|pair| pair.split('=').next() != Some(label))
        .collect();
    if kept.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{}}}", kept.join(","))
    }
}

fn scalar(value: &MetricValue) -> f64 {
    match value {
        MetricValue::Counter(n) => *n as f64,
        MetricValue::Gauge(x) => *x,
        MetricValue::Histogram { mean, .. } => *mean,
    }
}

fn kind(value: &MetricValue) -> &'static str {
    match value {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram { .. } => "hist(mean)",
    }
}

/// The outcome of diffing two traces.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Event classes (`component/name/severity`) with their A and B counts.
    pub event_classes: BTreeMap<(String, String, String), (u64, u64)>,
    /// Metrics by (possibly label-stripped) key with their A and B values
    /// (`None` when absent on that side).
    pub metrics: BTreeMap<String, (Option<MetricValue>, Option<MetricValue>)>,
}

impl TraceDiff {
    /// Diff `a` against `b`. When `strip_label` is set, that label is removed
    /// from every metric key before matching sides (use `Some("policy")` for
    /// per-policy traces).
    pub fn compute(a: &Trace, b: &Trace, strip_label: Option<&str>) -> TraceDiff {
        let mut event_classes: BTreeMap<(String, String, String), (u64, u64)> = BTreeMap::new();
        for (class, n) in rollup::event_class_counts(a) {
            event_classes.entry(class).or_insert((0, 0)).0 = n;
        }
        for (class, n) in rollup::event_class_counts(b) {
            event_classes.entry(class).or_insert((0, 0)).1 = n;
        }
        let mut metrics: BTreeMap<String, (Option<MetricValue>, Option<MetricValue>)> =
            BTreeMap::new();
        let norm = |key: &str| match strip_label {
            Some(label) => strip_key_label(key, label),
            None => key.to_string(),
        };
        for (key, value) in rollup::metrics(a) {
            metrics.entry(norm(&key)).or_insert((None, None)).0 = Some(value);
        }
        for (key, value) in rollup::metrics(b) {
            metrics.entry(norm(&key)).or_insert((None, None)).1 = Some(value);
        }
        TraceDiff {
            event_classes,
            metrics,
        }
    }

    /// Event classes present only in B (newly appearing).
    pub fn new_event_classes(&self) -> Vec<&(String, String, String)> {
        self.event_classes
            .iter()
            .filter(|(_, (a, b))| *a == 0 && *b > 0)
            .map(|(class, _)| class)
            .collect()
    }

    /// Event classes present only in A (disappeared in B).
    pub fn gone_event_classes(&self) -> Vec<&(String, String, String)> {
        self.event_classes
            .iter()
            .filter(|(_, (a, b))| *a > 0 && *b == 0)
            .map(|(class, _)| class)
            .collect()
    }

    /// Event-class counts side by side with the delta.
    pub fn event_class_table(&self) -> Table {
        let mut table = Table::new(&["component", "event", "severity", "a", "b", "delta"]);
        for ((component, name, severity), (a, b)) in &self.event_classes {
            table.row(&[
                component.clone(),
                name.clone(),
                severity.clone(),
                a.to_string(),
                b.to_string(),
                format!("{:+}", *b as i64 - *a as i64),
            ]);
        }
        table
    }

    /// Per-metric values side by side with the delta (`-` when a side lacks
    /// the metric; histograms compare their means).
    pub fn metric_table(&self) -> Table {
        let mut table = Table::new(&["metric", "kind", "a", "b", "delta"]);
        for (key, (a, b)) in &self.metrics {
            let k = a.as_ref().or(b.as_ref()).map_or("-", kind);
            let fmt_side = |side: &Option<MetricValue>| {
                side.as_ref()
                    .map_or("-".to_string(), |v| fmt_f64(scalar(v), 3))
            };
            let delta = match (a, b) {
                (Some(a), Some(b)) => fmt_f64(scalar(b) - scalar(a), 3),
                _ => "-".to_string(),
            };
            table.row(&[key.clone(), k.to_string(), fmt_side(a), fmt_side(b), delta]);
        }
        table
    }

    /// Full human-readable diff report.
    pub fn render(&self, a_name: &str, b_name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Trace diff: A = {a_name}, B = {b_name} ==\n");
        out.push_str("-- Event classes --\n");
        out.push_str(&self.event_class_table().render());
        let fresh = self.new_event_classes();
        if !fresh.is_empty() {
            out.push_str("\nNewly appearing in B:\n");
            for (component, name, severity) in fresh {
                let _ = writeln!(out, "  {component} {name} ({severity})");
            }
        }
        let gone = self.gone_event_classes();
        if !gone.is_empty() {
            out.push_str("\nDisappeared in B:\n");
            for (component, name, severity) in gone {
                let _ = writeln!(out, "  {component} {name} ({severity})");
            }
        }
        out.push_str("\n-- Metrics --\n");
        out.push_str(&self.metric_table().render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(policy: &str, grants: u64, extra_event: bool) -> Trace {
        let mut lines = Vec::new();
        for t in 0..grants {
            lines.push(format!(
                r#"{{"t_us":{t},"component":"soa","severity":"info","name":"oc_grant","fields":{{"policy":"{policy}"}}}}"#
            ));
        }
        if extra_event {
            lines.push(format!(
                r#"{{"t_us":50,"component":"harness","severity":"error","name":"revoke","fields":{{"policy":"{policy}"}}}}"#
            ));
        }
        lines.push(format!(
            r#"{{"t_us":99,"component":"metrics","severity":"debug","name":"metric","fields":{{"kind":"counter","key":"sim_grants{{policy={policy}}}","value":{grants}}}}}"#
        ));
        Trace::parse(&lines.join("\n")).unwrap()
    }

    #[test]
    fn event_class_deltas_and_new_classes() {
        let a = trace("SmartOClock", 3, false);
        let b = trace("NaiveOClock", 5, true);
        let diff = TraceDiff::compute(&a, &b, Some("policy"));
        let grants = (
            "soa".to_string(),
            "oc_grant".to_string(),
            "info".to_string(),
        );
        assert_eq!(diff.event_classes[&grants], (3, 5));
        assert_eq!(diff.new_event_classes().len(), 1);
        assert!(diff.gone_event_classes().is_empty());
        let text = diff.render("SmartOClock", "NaiveOClock");
        assert!(text.contains("+2"));
        assert!(text.contains("Newly appearing in B:"));
        assert!(text.contains("harness revoke (error)"));
    }

    #[test]
    fn metric_keys_align_after_label_strip() {
        let a = trace("SmartOClock", 3, false);
        let b = trace("NaiveOClock", 5, false);
        let diff = TraceDiff::compute(&a, &b, Some("policy"));
        let (ma, mb) = &diff.metrics["sim_grants"];
        assert_eq!(ma, &Some(MetricValue::Counter(3)));
        assert_eq!(mb, &Some(MetricValue::Counter(5)));
        // Without stripping, keys do not align.
        let raw = TraceDiff::compute(&a, &b, None);
        assert_eq!(raw.metrics["sim_grants{policy=SmartOClock}"].1, None);
    }

    #[test]
    fn strip_label_edge_cases() {
        assert_eq!(strip_key_label("plain", "policy"), "plain");
        assert_eq!(strip_key_label("m{policy=X}", "policy"), "m");
        assert_eq!(strip_key_label("m{policy=X,rack=1}", "policy"), "m{rack=1}");
        assert_eq!(strip_key_label("m{rack=1,policy=X}", "policy"), "m{rack=1}");
        assert_eq!(strip_key_label("m{rack=1}", "policy"), "m{rack=1}");
    }
}

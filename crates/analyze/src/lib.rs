//! `soc-analyze`: offline analysis of SmartOClock JSONL telemetry traces.
//!
//! The telemetry layer (`soc-telemetry`) emits JSONL traces whose
//! control-plane events carry causal correlation ids: a `decision_id` names
//! the decision an event records, a `cause_id` points at the parent decision
//! (`0` = no parent). This crate consumes those traces and answers the
//! questions the paper's evaluation revolves around:
//!
//! * **why** — [`chains`] reconstructs warning → cap → revoke → SLO-miss
//!   timelines by walking `cause_id` links;
//! * **who pays** — [`attribution`] splits SLO-missed windows into capping
//!   vs. admission-denial vs. queueing, per service tier;
//! * **how much** — [`rollup`] summarizes event classes and end-of-run
//!   counter/gauge/histogram dumps;
//! * **what changed** — [`diff`] compares two runs (e.g. `SmartOClock` vs
//!   `NaiveOClock`) with per-metric deltas and newly-appearing event classes.
//!
//! Like `soc-telemetry`, the crate has zero external dependencies: the JSON
//! subset involved is parsed by the hand-rolled [`json`] module. All outputs
//! are deterministic — analyzing the same set of trace lines yields
//! byte-identical reports regardless of line order ([`trace::Trace`] sorts
//! canonically on load).

#![forbid(unsafe_code)]

pub mod attribution;
pub mod chains;
pub mod diff;
pub mod json;
pub mod report;
pub mod rollup;
pub mod trace;

pub use attribution::AttributionCounts;
pub use diff::TraceDiff;
pub use report::full_report;
pub use trace::{Trace, TraceError, TraceEvent};

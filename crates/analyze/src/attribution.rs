//! SLO-violation attribution: which fraction of missed windows is explained
//! by power capping, admission denial, or plain queueing, per service tier.

use crate::trace::Trace;
use simcore::report::{fmt_pct, Table};
use std::collections::BTreeMap;

/// Known load tiers in presentation order; unknown tiers sort after these,
/// alphabetically.
const TIER_ORDER: [&str; 3] = ["Low", "Medium", "High"];

fn tier_rank(tier: &str) -> (usize, &str) {
    match TIER_ORDER.iter().position(|t| *t == tier) {
        Some(i) => (i, ""),
        None => (TIER_ORDER.len(), tier),
    }
}

/// Counts of SLO-missed windows, keyed by `(attribution, load tier)`.
///
/// Derived from `slo_miss` events; the harness emits one per instance per
/// observation window whose P99 violated the SLO, tagged with the attribution
/// its cap/denial bookkeeping supports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttributionCounts {
    counts: BTreeMap<(String, String), u64>,
}

impl AttributionCounts {
    /// Tally the `slo_miss` events of `trace`.
    pub fn from_trace(trace: &Trace) -> AttributionCounts {
        let mut counts = BTreeMap::new();
        for event in trace.control_events() {
            if event.name != "slo_miss" {
                continue;
            }
            let attribution = event
                .field_str("attribution")
                .unwrap_or("unattributed")
                .to_string();
            let tier = event.field_str("load").unwrap_or("unknown").to_string();
            *counts.entry((attribution, tier)).or_insert(0) += 1;
        }
        AttributionCounts { counts }
    }

    /// Total missed windows.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Missed windows for one attribution class across all tiers.
    pub fn by_attribution(&self, attribution: &str) -> u64 {
        self.counts
            .iter()
            .filter(|((a, _), _)| a == attribution)
            .map(|(_, n)| n)
            .sum()
    }

    /// The count for one `(attribution, tier)` cell.
    pub fn get(&self, attribution: &str, tier: &str) -> u64 {
        self.counts
            .get(&(attribution.to_string(), tier.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Distinct attribution classes, alphabetical.
    pub fn attributions(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.counts.keys().map(|(a, _)| a.as_str()).collect();
        out.dedup();
        out
    }

    /// Distinct load tiers, in presentation order (Low, Medium, High, then
    /// anything else alphabetically).
    pub fn tiers(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.counts.keys().map(|(_, t)| t.as_str()).collect();
        out.sort_by_key(|t| tier_rank(t));
        out.dedup();
        out
    }

    /// Render the attribution report: one row per attribution class with
    /// per-tier counts, the total, and the fraction of all misses.
    pub fn table(&self) -> Table {
        let tiers = self.tiers();
        let mut headers: Vec<&str> = vec!["attribution"];
        headers.extend(tiers.iter().copied());
        headers.extend(["total", "fraction"]);
        let mut table = Table::new(&headers);
        let total = self.total();
        for attribution in self.attributions() {
            let mut row: Vec<String> = vec![attribution.to_string()];
            for tier in &tiers {
                row.push(self.get(attribution, tier).to_string());
            }
            let n = self.by_attribution(attribution);
            row.push(n.to_string());
            row.push(if total == 0 {
                "-".to_string()
            } else {
                fmt_pct(n as f64 / total as f64)
            });
            table.row(&row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(t: u64, attribution: &str, load: &str) -> String {
        format!(
            r#"{{"t_us":{t},"component":"harness","severity":"warn","name":"slo_miss","fields":{{"service":0,"load":"{load}","attribution":"{attribution}","decision_id":{t},"cause_id":0}}}}"#
        )
    }

    fn fixture() -> Trace {
        let lines = [
            miss(1, "cap", "High"),
            miss(2, "cap", "High"),
            miss(3, "cap", "Medium"),
            miss(4, "queueing", "High"),
            miss(5, "admission_denied", "Low"),
        ]
        .join("\n");
        Trace::parse(&lines).unwrap()
    }

    #[test]
    fn counts_group_by_attribution_and_tier() {
        let counts = AttributionCounts::from_trace(&fixture());
        assert_eq!(counts.total(), 5);
        assert_eq!(counts.by_attribution("cap"), 3);
        assert_eq!(counts.get("cap", "High"), 2);
        assert_eq!(counts.get("cap", "Medium"), 1);
        assert_eq!(counts.get("queueing", "Low"), 0);
        assert_eq!(counts.tiers(), vec!["Low", "Medium", "High"]);
    }

    #[test]
    fn table_reports_fractions() {
        let table = AttributionCounts::from_trace(&fixture()).table();
        let text = table.render();
        assert!(text.contains("cap"));
        assert!(text.contains("60.0%"));
        assert!(text.contains("20.0%"));
    }

    #[test]
    fn empty_trace_renders_empty_table() {
        let counts = AttributionCounts::from_trace(&Trace::parse("").unwrap());
        assert_eq!(counts.total(), 0);
        assert!(counts.table().is_empty());
    }
}

//! Event-class and metric rollups.

use crate::trace::Trace;
use simcore::report::{fmt_f64, Table};
use std::collections::BTreeMap;

/// Count control-plane events by `(component, name, severity)`, sorted.
pub fn event_class_counts(trace: &Trace) -> BTreeMap<(String, String, String), u64> {
    let mut counts = BTreeMap::new();
    for event in trace.control_events() {
        *counts
            .entry((
                event.component.clone(),
                event.name.clone(),
                event.severity.clone(),
            ))
            .or_insert(0) += 1;
    }
    counts
}

/// Render [`event_class_counts`] as a table.
pub fn event_class_table(trace: &Trace) -> Table {
    let mut table = Table::new(&["component", "event", "severity", "count"]);
    for ((component, name, severity), count) in event_class_counts(trace) {
        table.row(&[component, name, severity, count.to_string()]);
    }
    table
}

/// One end-of-run metric extracted from the trace's `metric` records.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last observed gauge value.
    Gauge(f64),
    /// Histogram summary as exported by the registry dump.
    Histogram {
        count: u64,
        mean: f64,
        p50: f64,
        p99: f64,
    },
}

/// All metrics of a trace keyed by the rendered registry key
/// (`name{label=value,...}`), sorted.
pub fn metrics(trace: &Trace) -> BTreeMap<String, MetricValue> {
    let mut out = BTreeMap::new();
    for event in trace.metric_events() {
        let Some(key) = event.metric_key() else {
            continue;
        };
        let value = match event.metric_kind() {
            Some("counter") => MetricValue::Counter(event.field_u64("value").unwrap_or(0)),
            Some("gauge") => MetricValue::Gauge(event.field_f64("value").unwrap_or(f64::NAN)),
            Some("hist") => MetricValue::Histogram {
                count: event.field_u64("count").unwrap_or(0),
                mean: event.field_f64("mean").unwrap_or(f64::NAN),
                p50: event.field_f64("p50").unwrap_or(f64::NAN),
                p99: event.field_f64("p99").unwrap_or(f64::NAN),
            },
            _ => continue,
        };
        out.insert(key.to_string(), value);
    }
    out
}

/// Render counters and gauges as one `metric / value` table.
pub fn scalar_metric_table(trace: &Trace) -> Table {
    let mut table = Table::new(&["metric", "kind", "value"]);
    for (key, value) in metrics(trace) {
        match value {
            MetricValue::Counter(n) => {
                table.row(&[key, "counter".to_string(), n.to_string()]);
            }
            MetricValue::Gauge(x) => {
                table.row(&[key, "gauge".to_string(), fmt_f64(x, 3)]);
            }
            MetricValue::Histogram { .. } => {}
        }
    }
    table
}

/// Render histogram summaries with their percentile columns.
pub fn histogram_table(trace: &Trace) -> Table {
    let mut table = Table::new(&["histogram", "count", "mean", "p50", "p99"]);
    for (key, value) in metrics(trace) {
        if let MetricValue::Histogram {
            count,
            mean,
            p50,
            p99,
        } = value
        {
            table.row(&[
                key,
                count.to_string(),
                fmt_f64(mean, 3),
                fmt_f64(p50, 3),
                fmt_f64(p99, 3),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Trace {
        let text = concat!(
            r#"{"t_us":1,"component":"soa","severity":"info","name":"oc_grant","fields":{}}"#,
            "\n",
            r#"{"t_us":2,"component":"soa","severity":"info","name":"oc_grant","fields":{}}"#,
            "\n",
            r#"{"t_us":3,"component":"harness","severity":"error","name":"revoke","fields":{}}"#,
            "\n",
            r#"{"t_us":9,"component":"metrics","severity":"debug","name":"metric","fields":{"kind":"counter","key":"harness_revokes{reason=cap}","value":4}}"#,
            "\n",
            r#"{"t_us":9,"component":"metrics","severity":"debug","name":"metric","fields":{"kind":"gauge","key":"rack_power_w{rack=0}","value":512.25}}"#,
            "\n",
            r#"{"t_us":9,"component":"metrics","severity":"debug","name":"metric","fields":{"kind":"hist","key":"sim_rack_draw_w{rack=0}","count":10,"mean":100.5,"p50":99.0,"p99":140.0}}"#,
        );
        Trace::parse(text).unwrap()
    }

    #[test]
    fn event_classes_are_counted() {
        let counts = event_class_counts(&fixture());
        assert_eq!(counts[&("soa".into(), "oc_grant".into(), "info".into())], 2);
        assert_eq!(
            counts[&("harness".into(), "revoke".into(), "error".into())],
            1
        );
        // Metric records are excluded from event-class rollups.
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn metrics_parse_by_kind() {
        let m = metrics(&fixture());
        assert_eq!(m["harness_revokes{reason=cap}"], MetricValue::Counter(4));
        assert_eq!(m["rack_power_w{rack=0}"], MetricValue::Gauge(512.25));
        assert_eq!(
            m["sim_rack_draw_w{rack=0}"],
            MetricValue::Histogram {
                count: 10,
                mean: 100.5,
                p50: 99.0,
                p99: 140.0
            }
        );
    }

    #[test]
    fn tables_render_sorted_keys() {
        let trace = fixture();
        let scalars = scalar_metric_table(&trace).render();
        assert!(scalars.contains("harness_revokes{reason=cap}"));
        assert!(scalars.contains("512.250"));
        let hists = histogram_table(&trace).render();
        assert!(hists.contains("sim_rack_draw_w{rack=0}"));
        assert!(hists.contains("140.000"));
    }
}

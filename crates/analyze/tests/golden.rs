//! Golden-file and order-invariance tests for the analyzer.
//!
//! `fixtures/small_trace.jsonl` is a hand-written trace with one full causal
//! chain (warning -> capping -> cap_set -> revoke -> SLO miss), all three
//! SLO-miss attributions, a degraded window (`degraded_enter`/`degraded_exit`
//! caused by the budget split whose copy went stale), and every metric kind.
//! The committed report
//! `fixtures/small_trace.report.txt` pins the exact analyzer output; any
//! intentional format change must regenerate it
//! (`soc-analyze report fixtures/small_trace.jsonl` with the title
//! `small_trace`).

use proptest::prelude::*;
use soc_analyze::{full_report, AttributionCounts, Trace};

const FIXTURE: &str = include_str!("fixtures/small_trace.jsonl");
const GOLDEN: &str = include_str!("fixtures/small_trace.report.txt");

#[test]
fn full_report_matches_golden_file() {
    let trace = Trace::parse(FIXTURE).expect("fixture parses");
    let report = full_report(&trace, "small_trace");
    assert_eq!(
        report, GOLDEN,
        "report drifted from the golden fixture; if the change is \
         intentional, regenerate fixtures/small_trace.report.txt"
    );
}

#[test]
fn golden_fixture_has_a_full_causal_chain() {
    let trace = Trace::parse(FIXTURE).unwrap();
    let all = soc_analyze::chains::chains(&trace, &soc_analyze::chains::DEFAULT_TERMINALS);
    let deepest = all.iter().map(|c| c.depth()).max().unwrap();
    assert!(
        deepest >= 4,
        "expected a warning->capping->cap_set->terminal chain, got depth {deepest}"
    );
    let counts = AttributionCounts::from_trace(&trace);
    for attribution in ["cap", "queueing", "admission_denied"] {
        assert!(
            counts.by_attribution(attribution) > 0,
            "fixture lost the {attribution} slo_miss"
        );
    }
}

proptest! {
    /// Analyzing the lines in any order yields the same report as analyzing
    /// them sorted: the canonical ordering makes analysis a function of the
    /// line *set*.
    #[test]
    fn shuffled_line_order_analyzes_identically(seed in 0u64..u64::MAX) {
        let mut lines: Vec<&str> =
            FIXTURE.lines().filter(|l| !l.trim().is_empty()).collect();
        // Fisher-Yates with a tiny deterministic LCG keyed by the seed.
        let mut state = seed | 1;
        for i in (1..lines.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            lines.swap(i, j);
        }
        let shuffled = Trace::parse(&lines.join("\n")).unwrap();
        let sorted = Trace::parse(FIXTURE).unwrap();
        prop_assert_eq!(
            full_report(&shuffled, "small_trace"),
            full_report(&sorted, "small_trace")
        );
    }
}

//! Figure 4: WebConf VM-level vs deployment-level CPU utilization with and
//! without overclocking (§III-Q1).
//!
//! VM1 runs at 10 % load, VM2 at 80 %. The deployment goal is a mean
//! utilization below 50 %; the baseline already meets it, so overclocking
//! the hot VM — which a VM-local policy would do — is unnecessary.

use simcore::report::{fmt_f64, Table};
use soc_bench::Cli;
use soc_power::freq::FrequencyPlan;
use soc_workloads::webconf::WebConfDeployment;

fn main() {
    let cli = Cli::from_env();
    let plan = FrequencyPlan::amd_reference();

    let build = || {
        let mut dep = WebConfDeployment::new(plan.turbo(), 0.5);
        dep.add_vm(0.10);
        dep.add_vm(0.80);
        dep
    };

    let baseline = build();
    let mut overclocked = build();
    overclocked.set_frequency(1, plan.max_overclock());

    let mut t = Table::new(&["metric", "baseline", "overclocked"]);
    t.row(&[
        "VM1 utilization".into(),
        fmt_f64(baseline.vm_utilization(0), 3),
        fmt_f64(overclocked.vm_utilization(0), 3),
    ]);
    t.row(&[
        "VM2 utilization".into(),
        fmt_f64(baseline.vm_utilization(1), 3),
        fmt_f64(overclocked.vm_utilization(1), 3),
    ]);
    t.row(&[
        "deployment utilization".into(),
        fmt_f64(baseline.deployment_utilization(), 3),
        fmt_f64(overclocked.deployment_utilization(), 3),
    ]);
    t.row(&[
        "meets 50% goal".into(),
        baseline.meets_goal().to_string(),
        overclocked.meets_goal().to_string(),
    ]);
    t.row(&[
        "VM-local policy (util>70%) would overclock".into(),
        format!("{:?}", baseline.vms_above(0.7)),
        format!("{:?}", overclocked.vms_above(0.7)),
    ]);
    cli.emit("Fig. 4: WebConf VM vs deployment utilization", &t);
    println!(
        "Baseline already meets the deployment-level goal ({}); overclocking VM2 \
         is wasted lifetime (paper: \"Overclocking provides benefit, but is \
         unnecessary since the baseline already meets the application-level goal\").",
        fmt_f64(baseline.deployment_utilization(), 2)
    );
}

//! Figure 8: CDF of the RMSE of rack power predictions across racks in four
//! regions (§III-Q3).
//!
//! The paper: "in Region 3, 50% and 99% of the racks have an RMSE lower
//! than 1.95W and 5.11W". We build DailyMed templates on one week and score
//! them on the next, per rack, per region. Absolute watt values depend on
//! rack size and noise calibration; the paper's point — low RMSE even at
//! high percentiles, relative to hundreds-of-watt rack swings — is what the
//! relative column shows.

use simcore::report::{fmt_f64, fmt_pct, Table};
use simcore::stats::Ecdf;
use simcore::time::SimDuration;
use soc_bench::Cli;
use soc_predict::eval::walk_forward;
use soc_predict::template::TemplateKind;
use soc_traces::gen::{FleetConfig, TraceGenerator};

fn main() {
    let cli = Cli::from_env();
    let racks = if cli.fast { 20 } else { 120 };
    let regions = ["Region 1", "Region 2", "Region 3", "Region 4"];

    let mut t = Table::new(&[
        "region",
        "P50 RMSE (W)",
        "P90 RMSE (W)",
        "P99 RMSE (W)",
        "P50 RMSE/mean",
    ]);
    for (r, region) in regions.iter().enumerate() {
        let mut cfg = FleetConfig::paper_reference(racks);
        cfg.region = region.to_string();
        cfg.span = SimDuration::WEEK * 2;
        cfg.step = SimDuration::from_minutes(15);
        let fleet = TraceGenerator::new(cli.seed.wrapping_add(r as u64)).generate(&cfg);
        let mut rmses = Vec::with_capacity(fleet.racks.len());
        let mut rel = Vec::with_capacity(fleet.racks.len());
        for rack in &fleet.racks {
            let report = walk_forward(&rack.power, TemplateKind::DailyMed);
            rmses.push(report.rmse);
            rel.push(report.rmse / rack.power.mean());
        }
        let cdf = Ecdf::from_samples(&rmses);
        let rel_cdf = Ecdf::from_samples(&rel);
        t.row(&[
            region.to_string(),
            fmt_f64(cdf.quantile(0.50), 1),
            fmt_f64(cdf.quantile(0.90), 1),
            fmt_f64(cdf.quantile(0.99), 1),
            fmt_pct(rel_cdf.quantile(0.50)),
        ]);
    }
    cli.emit(
        &format!("Fig. 8: rack power prediction RMSE across {racks} racks x 4 regions (DailyMed)"),
        &t,
    );
    println!(
        "paper (Region 3): P50 = 1.95W, P99 = 5.11W on ~10kW racks — the shape to match \
         is a P50 relative error of a few percent and a thin tail."
    );
}

//! Frequency-binning experiment: per-part silicon heterogeneity under a
//! sweep of bin counts × admission risk budgets (the silicon lottery the
//! paper's §VI reliability discussion motivates).
//!
//! Each cell realizes the fleet's silicon from the shared binning seed,
//! runs the SmartOClock policy over the same pre-generated traces, and
//! reports:
//!
//! * **certified fraction** — the mean per-part overclock fraction the risk
//!   budget certifies (a pure function of the silicon draw; monotone
//!   non-increasing as the budget tightens).
//! * **oc uptime** — grants retained relative to the same bin count at the
//!   loosest budget (the simulated frontier).
//! * **bin denials / down-bins** — parts shut out of overclocking entirely
//!   vs parts granted a lower-than-requested level.
//! * **wear (days)** — fleet wear-budget consumption at the part-scaled
//!   ageing rates; marginal silicon ages faster for the same uptime.
//!
//! The headline: tightening the risk budget trades overclock uptime for
//! wear-budget headroom along a monotone frontier, while the single-bin
//! (uniform) configuration is byte-identical to a build without binning.

use simcore::faults::FaultPlan;
use simcore::report::{fmt_f64, Table};
use simcore::time::SimDuration;
use smartoclock::policy::PolicyKind;
use soc_bench::Cli;
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::largescale_metrics::PolicyMetrics;
use soc_cluster::shard::{generate_fleet, simulate_policy_on_traces_probed, FleetTraces};
use soc_cluster::NoopProbe;
use soc_reliability::binning::BinningConfig;
use std::path::PathBuf;

const BIN_COUNTS: [u32; 3] = [1, 4, 8];
const RISK_BUDGETS: [f64; 4] = [1.0, 0.5, 0.25, 0.1];

fn main() {
    let cli = Cli::from_env();
    let out = out_path();
    let racks = if cli.fast { 8 } else { 24 };
    let mut base = LargeScaleConfig::bench_reference(racks);
    base.seed = cli.seed;
    if cli.fast {
        base.weeks = 2;
        base.step = SimDuration::from_minutes(15);
    }
    let telemetry = cli.telemetry();
    let threads = cli.effective_threads();

    // Traces depend only on the fleet shape and seed — never on the silicon
    // draw — so generate them once and share them across every cell.
    eprintln!("generating {racks} rack traces once ({threads} threads)...");
    let fleet = generate_fleet(&base, threads);

    let mut t = Table::new(&[
        "bins",
        "risk budget",
        "certified",
        "granted",
        "oc uptime",
        "bin denied",
        "down-binned",
        "wear (days)",
        "violations",
    ]);
    let mut rows = String::new();
    for &bins in &BIN_COUNTS {
        // Grants at the loosest budget anchor this bin count's frontier.
        let mut granted_at_loosest = 0u64;
        for &risk_budget in &RISK_BUDGETS {
            let mut config = base.clone();
            config.binning = BinningConfig {
                bins,
                risk_budget,
                wear_spread: if bins > 1 { 0.3 } else { 0.0 },
                seed: cli.seed,
            };
            eprintln!(
                "simulating bins={bins} risk_budget={risk_budget} over {racks} racks \
                 ({threads} threads)..."
            );
            let outcomes = simulate_policy_on_traces_probed(
                &config,
                PolicyKind::SmartOClock,
                &fleet,
                &telemetry,
                threads,
                &NoopProbe,
            );
            let m = PolicyMetrics::aggregate(PolicyKind::SmartOClock, &outcomes);
            let certified = certified_fraction(&fleet, &config.binning);
            if (risk_budget - RISK_BUDGETS[0]).abs() < f64::EPSILON {
                granted_at_loosest = m.granted;
            }
            let uptime = m.granted as f64 / granted_at_loosest.max(1) as f64;
            t.row(&[
                bins.to_string(),
                fmt_f64(risk_budget, 2),
                fmt_f64(certified, 3),
                m.granted.to_string(),
                fmt_f64(uptime, 3),
                m.bin_denied.to_string(),
                m.down_binned.to_string(),
                fmt_f64(m.wear_days, 1),
                m.violation_steps.to_string(),
            ]);
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"bins\": {bins}, \"risk_budget\": {risk_budget:.2}, \
                 \"certified_oc_fraction\": {certified:.6}, \"granted\": {}, \
                 \"oc_uptime_retained\": {uptime:.6}, \"bin_denied\": {}, \
                 \"down_binned\": {}, \"wear_days\": {:.6}, \
                 \"violation_steps\": {}}}",
                m.granted, m.bin_denied, m.down_binned, m.wear_days, m.violation_steps,
            ));
        }
    }
    cli.emit(
        &format!("Frequency binning: bins x risk budget over {racks} racks"),
        &t,
    );
    println!(
        "headline: tightening the per-part risk budget trades overclock uptime \
         for wear-budget headroom along a monotone frontier; the single-bin \
         fleet is byte-identical to a build without binning."
    );

    let json = format!(
        "{{\n  \"experiment\": \"exp_binning\",\n  \"racks\": {racks},\n  \
         \"weeks\": {},\n  \"seed\": {},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        base.weeks, cli.seed,
    );
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", out.display()),
    }
    cli.finish("exp_binning", &telemetry);
}

/// Mean certified overclock fraction across every part in the fleet: the
/// admitted frequency's position in the turbo→max-overclock span (0 for a
/// bin-denied part). A pure function of the silicon draw, monotone
/// non-increasing as the risk budget tightens.
fn certified_fraction(fleet: &FleetTraces, binning: &BinningConfig) -> f64 {
    let mut certified = 0.0;
    let mut parts = 0u64;
    for (rack, model) in fleet.iter() {
        let plan = model.plan();
        let span = plan.max_overclock().saturating_sub(plan.turbo());
        if span.get() == 0 {
            continue;
        }
        for s in 0..rack.servers.len() {
            let part = binning.part(&plan, FaultPlan::entity_id(rack.index, s));
            certified += part
                .admit(&plan, binning.risk_budget, plan.max_overclock())
                .map_or(0.0, |f| f.saturating_sub(plan.turbo()).ratio(span));
            parts += 1;
        }
    }
    certified / parts.max(1) as f64
}

/// `--out <path>` is specific to this binary; parse it directly from the
/// raw args (the shared [`Cli`] ignores flags it does not know).
fn out_path() -> PathBuf {
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            if let Some(v) = iter.next() {
                return PathBuf::from(v);
            }
        }
    }
    PathBuf::from("exp_binning.json")
}

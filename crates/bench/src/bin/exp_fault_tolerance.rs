//! Fault-tolerance experiment: decentralized SmartOClock vs a centralized
//! controller under escalating gOA outages (§IV's decentralization
//! rationale, exercised with the deterministic fault layer).
//!
//! Each scenario injects two gOA outage windows of the given length into
//! the large-scale trace-driven simulation and compares three systems:
//!
//! * **SmartOClock** — sOAs keep enforcing their last-known budgets locally
//!   while the gOA is unreachable (stale budgets, full enforcement).
//! * **Central (fail-stop)** — the centralized controller denies every
//!   request it cannot arbitrate, forfeiting overclock uptime.
//! * **Central (fail-open)** — the centralized controller keeps prior
//!   grants running without enforcement, risking power-budget violations.
//!
//! Reported per scenario: power-budget violation steps, steps on stale
//! budgets, request success rate, and overclock uptime retained relative to
//! the same system's zero-outage run. The headline claim: SmartOClock
//! sustains overclocking through outages with **zero** violations, while
//! the centralized baseline either violates the budget (fail-open) or
//! forfeits materially more overclock uptime (fail-stop).

use simcore::report::{fmt_f64, fmt_pct, Table};
use simcore::time::SimDuration;
use smartoclock::policy::PolicyKind;
use soc_bench::probe::HealthProbe;
use soc_bench::Cli;
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::largescale_metrics::PolicyMetrics;
use soc_cluster::shard::{generate_fleet, simulate_policy_on_traces_probed};
use soc_cluster::NoopProbe;
use soc_telemetry::Telemetry;
use std::path::PathBuf;

struct Variant {
    name: &'static str,
    policy: PolicyKind,
    fail_open: bool,
}

const VARIANTS: [Variant; 3] = [
    Variant {
        name: "SmartOClock",
        policy: PolicyKind::SmartOClock,
        fail_open: false,
    },
    Variant {
        name: "Central (fail-stop)",
        policy: PolicyKind::Central,
        fail_open: false,
    },
    Variant {
        name: "Central (fail-open)",
        policy: PolicyKind::Central,
        fail_open: true,
    },
];

fn main() {
    let cli = Cli::from_env();
    let out = out_path();
    let racks = if cli.fast { 8 } else { 24 };
    let mut base = LargeScaleConfig::bench_reference(racks);
    base.seed = cli.seed;
    if cli.fast {
        base.weeks = 2;
        base.step = SimDuration::from_minutes(15);
    }
    let outages: [(&str, SimDuration); 4] = [
        ("none", SimDuration::ZERO),
        ("30m", SimDuration::from_minutes(30)),
        ("2h", SimDuration::from_hours(2)),
        ("8h", SimDuration::from_hours(8)),
    ];
    let telemetry = cli.telemetry();
    let threads = cli.effective_threads();
    // Health observability (`--health` / `--health-out`): record the
    // longest-outage SmartOClock cell, where the incident timeline shows
    // outage -> degraded-entry -> recovery end to end.
    let recorder = cli.recorder("exp_fault_tolerance");

    // Traces depend only on the fleet shape and seed — not on the fault
    // plan or fail-open mode — so generate them once and share them across
    // every scenario × variant cell. Templates are trained per run inside
    // `simulate_policy_on_traces_probed` because the fault layer can bias
    // predictions (not varied here, but per-run training keeps the cells
    // independent of each other by construction).
    eprintln!("generating {racks} rack traces once ({threads} threads)...");
    let fleet = generate_fleet(&base, threads);

    let mut t = Table::new(&[
        "outage",
        "system",
        "violations",
        "stale steps",
        "success",
        "granted",
        "oc uptime",
    ]);
    let mut rows = String::new();
    // Per-variant granted count at zero outage, anchoring uptime-retained.
    let mut granted_at_zero = [0u64; VARIANTS.len()];
    for (label, len) in &outages {
        for (v, variant) in VARIANTS.iter().enumerate() {
            let mut config = base.clone();
            config.central_fail_open = variant.fail_open;
            config.faults.seed = cli.seed;
            config.faults.goa_outages = if len.is_zero() { 0 } else { 2 };
            config.faults.goa_outage_len = *len;
            eprintln!(
                "simulating {} at outage={label} over {racks} racks ({threads} threads)...",
                variant.name
            );
            let health_cell = recorder.is_enabled()
                && variant.policy == PolicyKind::SmartOClock
                && *label == "8h";
            let outcomes = if health_cell {
                let probe = HealthProbe::new(recorder.clone());
                if telemetry.is_enabled() {
                    simulate_policy_on_traces_probed(
                        &config,
                        variant.policy,
                        &fleet,
                        &telemetry,
                        threads,
                        &probe,
                    )
                } else {
                    // The alert engine needs the event stream; without
                    // --trace-out, buffer events into a throwaway memory
                    // sink. Telemetry is pure observation, so outcomes and
                    // stdout are unchanged.
                    let (tm, _sink) = Telemetry::memory();
                    simulate_policy_on_traces_probed(
                        &config,
                        variant.policy,
                        &fleet,
                        &tm,
                        threads,
                        &probe,
                    )
                }
            } else {
                simulate_policy_on_traces_probed(
                    &config,
                    variant.policy,
                    &fleet,
                    &telemetry,
                    threads,
                    &NoopProbe,
                )
            };
            let m = PolicyMetrics::aggregate(variant.policy, &outcomes);
            if len.is_zero() {
                granted_at_zero[v] = m.granted;
            }
            let uptime = m.granted as f64 / granted_at_zero[v].max(1) as f64;
            t.row(&[
                label.to_string(),
                variant.name.to_string(),
                m.violation_steps.to_string(),
                m.stale_budget_steps.to_string(),
                fmt_pct(m.success_rate),
                m.granted.to_string(),
                fmt_f64(uptime, 3),
            ]);
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"outage\": \"{label}\", \"system\": \"{}\", \
                 \"violation_steps\": {}, \"stale_budget_steps\": {}, \
                 \"success_rate\": {:.6}, \"granted\": {}, \
                 \"oc_uptime_retained\": {uptime:.6}}}",
                variant.name, m.violation_steps, m.stale_budget_steps, m.success_rate, m.granted,
            ));
        }
    }
    cli.emit(
        &format!("Fault tolerance: gOA outages over {racks} racks"),
        &t,
    );
    println!(
        "headline: SmartOClock holds zero budget violations through every outage; \
         the centralized baseline either violates the budget (fail-open) or \
         forfeits overclock uptime (fail-stop)."
    );

    let json = format!(
        "{{\n  \"experiment\": \"exp_fault_tolerance\",\n  \"racks\": {racks},\n  \
         \"weeks\": {},\n  \"seed\": {},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        base.weeks, cli.seed,
    );
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", out.display()),
    }
    cli.finish_health(&recorder, &soc_health::default_rules(base.step.as_micros()));
    cli.finish("exp_fault_tolerance", &telemetry);
}

/// `--out <path>` is specific to this binary; parse it directly from the
/// raw args (the shared [`Cli`] ignores flags it does not know).
fn out_path() -> PathBuf {
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            if let Some(v) = iter.next() {
                return PathBuf::from(v);
            }
        }
    }
    PathBuf::from("exp_fault_tolerance.json")
}

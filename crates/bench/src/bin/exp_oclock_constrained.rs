//! §V-A "Overclocking-constrained environments": restrict the overclocking
//! lifetime budget to 75 %, 50 %, and 25 % of its initial value, and compare
//! reactive scale-out against SmartOClock's proactive scale-out.
//!
//! Paper: reactive scale-out misses SLOs for 5.0 %, 6.1 %, and 7.2 % of the
//! time; SmartOClock's proactive approach (scaling out before the predicted
//! exhaustion, §IV-D) eliminates the violations.

use simcore::report::{fmt_pct, Table};
use simcore::time::SimDuration;
use soc_bench::Cli;
use soc_cluster::harness::{ClusterConfig, ClusterSim, SystemKind};

fn main() {
    let cli = Cli::from_env();
    let telemetry = cli.telemetry();
    let run = |budget_scale: f64, proactive: bool| {
        let mut cfg = ClusterConfig::paper_reference(SystemKind::SmartOClock);
        cfg.seed = cli.seed;
        cfg.oc_budget_scale = budget_scale * 0.02; // shrink so the budget
                                                   // actually binds within the experiment duration (the paper's weekly
                                                   // budget is restricted the same relative way).
        cfg.proactive_scaleout = proactive;
        if cli.fast {
            cfg.duration = SimDuration::from_minutes(6);
            cfg.socialnet_servers = 6;
            cfg.mltrain_servers = 6;
            cfg.spare_servers = 3;
        } else {
            cfg.duration = SimDuration::from_minutes(40);
        }
        eprintln!("running budget={budget_scale} proactive={proactive}...",);
        ClusterSim::with_telemetry(cfg, telemetry.clone())
            .run()
            .violation_window_frac()
    };

    // Baseline: unconstrained budget with proactive scaling. The metric is
    // the *excess* missed-SLO time caused by budget exhaustion (some
    // services, like UrlShort, miss their SLO regardless of overclocking;
    // the paper's cluster has no such service, so it reports absolute
    // numbers).
    let baseline = run(50.0, true); // 50 x 0.02 = the unscaled reference
    let mut t = Table::new(&[
        "OC budget",
        "reactive excess missed-SLO time",
        "proactive excess missed-SLO time",
    ]);
    for scale in [0.75, 0.50, 0.25] {
        let reactive = (run(scale, false) - baseline).max(0.0);
        let proactive = (run(scale, true) - baseline).max(0.0);
        t.row(&[fmt_pct(scale), fmt_pct(reactive), fmt_pct(proactive)]);
    }
    telemetry.flush();
    cli.emit(
        "Overclocking-constrained environments (excess vs unconstrained)",
        &t,
    );
    println!(
        "paper: reactive misses SLOs 5.0%/6.1%/7.2% of the time at 75%/50%/25% budget; \
         proactive scale-out eliminates the violations"
    );
}

//! Figure 6: one rack's power over five weekdays, with and without naive
//! overclocking, against the rack limit (§III-Q2).
//!
//! The paper's observations: the baseline stays below the limit; naively
//! overclocking the selected workloads exceeds it during peaks, causing
//! capping ~15 % of the time, while for ~85 % of the time the headroom
//! suffices.

use simcore::report::{fmt_f64, fmt_pct, Table};
use simcore::series::TimeSeries;
use simcore::time::{SimDuration, SimTime};
use soc_bench::Cli;
use soc_telemetry::{tm_event, Component, Severity, Telemetry};
use soc_traces::gen::{FleetConfig, TraceGenerator};

/// Replay the naive-overclock week against the rack limit, emitting the
/// causally-linked event chain a rack runtime would produce: approaching the
/// limit raises `rack_warning`; crossing it raises `rack_capping` (caused by
/// the warning), caps the highest-drawing servers (`cap_set`, caused by the
/// capping decision) and revokes their overclock (`revoke`, caused by the
/// cap); receding power clears the caps (`caps_cleared`).
fn trace_capping_week(
    telemetry: &Telemetry,
    overclocked: &TimeSeries,
    per_server_extra: &[TimeSeries],
    limit: f64,
) {
    let warn_level = 0.95 * limit;
    let mut warning_decision = 0u64;
    let mut cap_decisions: Vec<(usize, u64)> = Vec::new();
    let mut capping_decision = 0u64;
    for (i, &oc) in overclocked.values().iter().enumerate() {
        let now = overclocked.time_at_index(i);
        if oc >= limit {
            if cap_decisions.is_empty() {
                capping_decision = telemetry.next_id();
                tm_event!(telemetry, now, Component::Rack, Severity::Warn, "rack_capping",
                    "power_w" => oc, "limit_w" => limit,
                    "decision_id" => capping_decision, "cause_id" => warning_decision);
                // Cap the two servers drawing the most overclock power.
                let mut by_extra: Vec<(usize, f64)> = per_server_extra
                    .iter()
                    .enumerate()
                    .map(|(s, series)| (s, series.values()[i]))
                    .collect();
                by_extra.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                for &(server, extra_w) in by_extra.iter().take(2) {
                    let cap_decision = telemetry.next_id();
                    tm_event!(telemetry, now, Component::Rack, Severity::Error, "cap_set",
                        "server" => server, "shed_w" => extra_w,
                        "decision_id" => cap_decision, "cause_id" => capping_decision);
                    tm_event!(telemetry, now, Component::Rack, Severity::Error, "revoke",
                        "server" => server,
                        "decision_id" => telemetry.next_id(), "cause_id" => cap_decision);
                    telemetry.metrics(|m| {
                        m.inc_counter("fig06_revokes", &[("reason", "cap".into())]);
                    });
                    cap_decisions.push((server, cap_decision));
                }
                telemetry.metrics(|m| {
                    m.inc_counter("fig06_capping_episodes", &[]);
                });
            }
        } else {
            if !cap_decisions.is_empty() {
                tm_event!(telemetry, now, Component::Rack, Severity::Info, "caps_cleared",
                    "servers" => cap_decisions.len() as u64,
                    "decision_id" => telemetry.next_id(), "cause_id" => capping_decision);
                cap_decisions.clear();
            }
            if oc >= warn_level {
                if warning_decision == 0 {
                    warning_decision = telemetry.next_id();
                    tm_event!(telemetry, now, Component::Rack, Severity::Warn, "rack_warning",
                        "power_w" => oc, "limit_w" => limit,
                        "decision_id" => warning_decision);
                    telemetry.metrics(|m| {
                        m.inc_counter("fig06_warnings", &[]);
                    });
                }
            } else {
                warning_decision = 0;
            }
        }
    }
}

fn main() {
    let cli = Cli::from_env();
    let mut cfg = FleetConfig::paper_reference(1);
    cfg.span = SimDuration::WEEK;
    cfg.step = SimDuration::from_minutes(5);
    cfg.keep_server_series = true;
    // Push this showcase rack toward the constrained end of the fleet.
    cfg.oversubscription = (2.00, 2.05);
    let generator = TraceGenerator::new(cli.seed);
    let rack = generator.generate_rack(&cfg, 0);
    let model = &generator.model_for(rack.generation);
    let oc_freq = model.plan().max_overclock();

    // Naive overclocking: every demanded core gets the max frequency.
    let per_server_extra: Vec<TimeSeries> = rack
        .servers
        .iter()
        .map(|s| {
            let mut extra = TimeSeries::new(s.power.start(), s.power.step());
            for i in 0..s.power.len() {
                let cores = s.oc_demand_cores.values()[i] as usize;
                let util = s.utilization.values()[i];
                extra.push(
                    model
                        .overclock_delta(util.clamp(0.0, 1.0), cores.min(model.cores()), oc_freq)
                        .get(),
                );
            }
            extra
        })
        .collect();
    let extra_refs: Vec<&TimeSeries> = per_server_extra.iter().collect();
    let total_extra = TimeSeries::sum_of(&extra_refs);
    let overclocked = TimeSeries::sum_of(&[&rack.power, &total_extra]);

    // Weekday-hourly summary table (Mon-Fri).
    let mut t = Table::new(&[
        "day",
        "hour",
        "baseline (W)",
        "overclocked (W)",
        "limit (W)",
        "over?",
    ]);
    let week_start = SimTime::ZERO;
    for day in 0..5u64 {
        for hour in (0..24u64).step_by(3) {
            let at = week_start + SimDuration::from_days(day) + SimDuration::from_hours(hour);
            let base = rack.power.value_at(at).unwrap_or(f64::NAN);
            let oc = overclocked.value_at(at).unwrap_or(f64::NAN);
            t.row(&[
                format!("{}", at.weekday()),
                format!("{hour:02}h"),
                fmt_f64(base, 0),
                fmt_f64(oc, 0),
                fmt_f64(rack.limit.get(), 0),
                if oc >= rack.limit.get() {
                    "CAP".into()
                } else {
                    "".into()
                },
            ]);
        }
    }
    cli.emit(
        "Fig. 6: rack power over 5 weekdays (baseline vs naive overclock)",
        &t,
    );

    let limit = rack.limit.get();
    let base_over = rack.power.values().iter().filter(|&&p| p >= limit).count() as f64
        / rack.power.len() as f64;
    let oc_over = overclocked.values().iter().filter(|&&p| p >= limit).count() as f64
        / overclocked.len() as f64;
    println!(
        "baseline over limit: {}; naive overclock over limit: {} \
         (paper: baseline never caps; naive overclocking caps ~15% of the time)",
        fmt_pct(base_over),
        fmt_pct(oc_over)
    );
    println!(
        "baseline peak {:.0}W, overclocked peak {:.0}W, limit {:.0}W",
        rack.power.max(),
        overclocked.max(),
        limit
    );

    let telemetry = cli.telemetry();
    if telemetry.is_enabled() {
        trace_capping_week(&telemetry, &overclocked, &per_server_extra, limit);
    }
    cli.finish("fig06_rack_week", &telemetry);
}

//! §V-A "Power-constrained environments": reduce the rack limit and compare
//! NaiveOClock against SmartOClock.
//!
//! Paper: SmartOClock reduces SocialNet tail latency by 6.7 % (medium load)
//! and 8.4 % (high load) over NaiveOClock, and improves MLTrain throughput
//! by 10.4 % (heterogeneous budgets + admission control mean fewer capping
//! events hitting the training servers).

use simcore::report::{fmt_f64, Table};
use simcore::time::SimDuration;
use soc_bench::{pct_change, Cli};
use soc_cluster::harness::{ClusterConfig, SystemKind};
use soc_cluster::shard::run_cluster_sims;
use soc_workloads::socialnet::LoadLevel;

fn main() {
    let cli = Cli::from_env();
    let telemetry = cli.telemetry();
    let config_for = |system: SystemKind| {
        let mut cfg = ClusterConfig::paper_reference(system);
        cfg.seed = cli.seed;
        cfg.rack_limit_scale = 0.82; // constrained rack: ~2.5% headroom over steady draw
        if cli.fast {
            cfg.duration = SimDuration::from_minutes(6);
            cfg.socialnet_servers = 6;
            cfg.mltrain_servers = 6;
            cfg.spare_servers = 3;
        }
        cfg
    };
    // The two systems are independent simulations: shard them across
    // workers; results come back in config order regardless of --threads.
    let threads = cli.effective_threads();
    eprintln!(
        "running NaiveOClock and SmartOClock under a constrained rack limit ({threads} threads)..."
    );
    let mut results = run_cluster_sims(
        vec![
            config_for(SystemKind::NaiveOClock),
            config_for(SystemKind::SmartOClock),
        ],
        &telemetry,
        threads,
    )
    .into_iter();
    let (Some(naive), Some(smart)) = (results.next(), results.next()) else {
        eprintln!("error: cluster simulations returned fewer results than configs");
        std::process::exit(1);
    };

    let mut t = Table::new(&["metric", "NaiveOClock", "SmartOClock", "delta"]);
    for load in [LoadLevel::Medium, LoadLevel::High] {
        let n = naive.p99_by_load(load);
        let s = smart.p99_by_load(load);
        t.row(&[
            format!("P99 {load} load (ms)"),
            fmt_f64(n, 1),
            fmt_f64(s, 1),
            pct_change(n, s),
        ]);
    }
    t.row(&[
        "MLTrain relative throughput".into(),
        fmt_f64(naive.mltrain_relative_throughput, 3),
        fmt_f64(smart.mltrain_relative_throughput, 3),
        pct_change(
            naive.mltrain_relative_throughput,
            smart.mltrain_relative_throughput,
        ),
    ]);
    t.row(&[
        "rack capping events".into(),
        naive.capping_events.to_string(),
        smart.capping_events.to_string(),
        "-".into(),
    ]);
    t.row(&[
        "OC requests granted/total".into(),
        format!("{}/{}", naive.oc_requests.0, naive.oc_requests.1),
        format!("{}/{}", smart.oc_requests.0, smart.oc_requests.1),
        "-".into(),
    ]);
    cli.emit(
        "Power-constrained environments (rack limit at 82% of normal)",
        &t,
    );
    println!(
        "paper: SmartOClock cuts tail latency 6.7%/8.4% (med/high) vs NaiveOClock \
         and lifts MLTrain throughput 10.4%"
    );
    cli.finish("exp_power_constrained", &telemetry);
}

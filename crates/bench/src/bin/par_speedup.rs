//! Sharded-execution speedup benchmark.
//!
//! Times the large-scale policy simulation at `--threads 1` and at the
//! requested (default: auto) thread count, checks the outcomes are
//! identical, and writes a small JSON summary for CI artifact upload.
//!
//! The speedup figure is only meaningful on multi-core hardware; the JSON
//! records `cores` so consumers can judge the number in context.

use simcore::par;
use smartoclock::policy::PolicyKind;
use soc_bench::Cli;
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::shard::simulate_policy_sharded;
use soc_telemetry::Telemetry;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let cli = Cli::from_env();
    let out = out_path();
    let racks = if cli.fast { 8 } else { 32 };
    let mut config = LargeScaleConfig::bench_reference(racks);
    config.seed = cli.seed;
    if cli.fast {
        config.weeks = 2;
        config.step = simcore::time::SimDuration::from_minutes(15);
    }
    let threads = cli.effective_threads().max(2);
    let telemetry = Telemetry::disabled();

    eprintln!("timing {racks} racks serial (1 thread)...");
    let t0 = Instant::now();
    let serial = simulate_policy_sharded(&config, PolicyKind::SmartOClock, &telemetry, 1);
    let serial_secs = t0.elapsed().as_secs_f64();

    eprintln!("timing {racks} racks sharded ({threads} threads)...");
    let t1 = Instant::now();
    let sharded = simulate_policy_sharded(&config, PolicyKind::SmartOClock, &telemetry, threads);
    let sharded_secs = t1.elapsed().as_secs_f64();

    let identical = serial == sharded;
    let speedup = serial_secs / sharded_secs.max(1e-9);
    let json = format!(
        "{{\n  \"experiment\": \"par_speedup\",\n  \"racks\": {racks},\n  \
         \"weeks\": {},\n  \"cores\": {},\n  \"threads\": {threads},\n  \
         \"serial_secs\": {serial_secs:.3},\n  \"sharded_secs\": {sharded_secs:.3},\n  \
         \"speedup\": {speedup:.3},\n  \"outcomes_identical\": {identical}\n}}\n",
        config.weeks,
        par::available_parallelism(),
    );
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", out.display()),
    }
    print!("{json}");
    println!(
        "speedup at {threads} threads on {} core(s): {speedup:.2}x (outcomes identical: {identical})",
        par::available_parallelism()
    );
    if !identical {
        eprintln!("error: sharded outcomes diverged from serial");
        std::process::exit(1);
    }
}

/// `--out <path>` is specific to this binary; parse it directly from the
/// raw args (the shared [`Cli`] ignores flags it does not know).
fn out_path() -> PathBuf {
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            if let Some(v) = iter.next() {
                return PathBuf::from(v);
            }
        }
    }
    PathBuf::from("par_speedup.json")
}

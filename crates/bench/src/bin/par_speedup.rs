//! Engine-speedup benchmark and the CI perf baseline.
//!
//! Measures the large-scale policy simulation hot path with the trace
//! generation and template training **amortized out of the timed legs**:
//!
//! 1. generate every rack's trace exactly once (`generate_fleet_probed`),
//! 2. train every rack's templates exactly once (`train_fleet_probed`),
//! 3. time the retained row-oriented *reference* engine, serial
//!    (`simulate_policy_prepared_reference`), min over `--reps` runs,
//! 4. time the columnar *production* engine at `--threads N`
//!    (`simulate_policy_prepared_probed`), min over `--reps` runs,
//! 5. run `--reps` probed passes for per-phase attribution
//!    (`rack/admission`, `rack/aggregation`, `shard/sim`, counters), each
//!    against a fresh scratch profiler, and keep the per-phase **minimum**
//!    — the same best-of-reps standard as the headline legs, so phase
//!    numbers don't carry one-sample noise the legs amortized away,
//! 6. assert every leg produced byte-identical outcomes (exit 1 if not).
//!
//! `speedup` is therefore the *engine* improvement ratio — reference row
//! engine vs columnar engine — over identical pre-generated traces and
//! pre-trained templates. On multi-core machines thread-level parallelism
//! compounds it; on a 1-core machine (CI) it still measures the columnar
//! rewrite honestly instead of drowning it in trace-generation time, which
//! is what the previous protocol did (both legs regenerated traces and
//! retrained templates, so the "speedup" mostly compared two identical
//! setup passes and could never move).
//!
//! Flags beyond the shared set: `--reps <n>` (timed-leg repetitions,
//! min-taken, default 3), `--min-speedup <x>` (exit 1 below this ratio;
//! the CI gate passes one), `--out <path>` (snapshot destination).
//!
//! The committed baseline `BENCH_largescale.json` at the workspace root is
//! this snapshot for the pinned configuration `--fast --threads 2` (6
//! racks, 3 weeks, 15-minute steps, seed 42). Regenerate it with
//!
//! ```text
//! SOC_UPDATE_BASELINE=1 cargo run --release --bin par_speedup -- --fast --threads 2
//! ```
//!
//! and CI gates on `soc-prof diff BENCH_largescale.json <fresh run>`.

use simcore::par;
use smartoclock::policy::PolicyKind;
use soc_bench::probe::ProfProbe;
use soc_bench::Cli;
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::shard::{
    generate_fleet_probed, simulate_policy_prepared_probed, simulate_policy_prepared_reference,
    train_fleet_probed,
};
use soc_cluster::NoopProbe;
use soc_prof::Profiler;
use soc_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

// Count allocations into the snapshot's `alloc_count` / `alloc_bytes`.
#[global_allocator]
static ALLOC: soc_prof::CountingAlloc = soc_prof::CountingAlloc;

fn main() {
    let cli = Cli::from_env();
    let out = out_path(&cli);
    let reps: usize = cli
        .extra_flag("--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let min_speedup: Option<f64> = cli.extra_flag("--min-speedup").and_then(|v| v.parse().ok());
    let racks = if cli.fast { 6 } else { 32 };
    let mut config = LargeScaleConfig::bench_reference(racks);
    config.seed = cli.seed;
    if cli.fast {
        // 3 weeks = 1 training week + 2 evaluated weeks: enough timed steps
        // for a stable engine ratio while staying a smoke-sized run.
        config.weeks = 3;
        config.step = simcore::time::SimDuration::from_minutes(15);
    }
    let threads = cli.effective_threads().max(2);
    let telemetry = Telemetry::disabled();
    let policy = PolicyKind::SmartOClock;

    // This binary's whole job is measurement, so the profiler is always on
    // (no --prof needed). The snapshot name is the baseline's identity.
    let prof = Profiler::new("largescale");
    prof.set_meta("experiment", "par_speedup");
    prof.set_meta("racks", racks);
    prof.set_meta("weeks", config.weeks);
    prof.set_meta("step_minutes", config.step.as_hours_f64() * 60.0);
    prof.set_meta("seed", cli.seed);
    prof.set_meta("threads", threads);
    prof.set_meta("reps", reps);
    prof.set_meta("cores", par::available_parallelism());
    let probe = ProfProbe::new(prof.clone());

    eprintln!("generating {racks} rack traces once ({threads} threads)...");
    let t = Instant::now();
    let fleet = generate_fleet_probed(&config, threads, &probe);
    prof.record("run/trace_gen", t.elapsed());

    eprintln!("training templates once ({threads} threads)...");
    let t = Instant::now();
    let trained = train_fleet_probed(&config, &fleet, threads, &probe);
    prof.record("run/train", t.elapsed());

    // Interleave the two timed legs rep by rep (instead of all-serial then
    // all-sharded) so slow drift — frequency scaling, a noisy neighbor —
    // hits both engines alike and cancels out of the min-over-reps ratio.
    eprintln!(
        "timing reference engine (serial) vs columnar engine ({threads} threads), \
         best of {reps} interleaved reps..."
    );
    let mut serial_best = Duration::MAX;
    let mut sharded_best = Duration::MAX;
    let mut serial = None;
    let mut sharded = None;
    for _ in 0..reps {
        let t = Instant::now();
        let outcome =
            simulate_policy_prepared_reference(&config, policy, &fleet, &trained, &telemetry);
        serial_best = serial_best.min(t.elapsed());
        if let Some(prev) = &serial {
            assert_eq!(prev, &outcome, "reference engine is not deterministic");
        }
        serial = Some(outcome);

        let t = Instant::now();
        let outcome = simulate_policy_prepared_probed(
            &config, policy, &fleet, &trained, &telemetry, threads, &NoopProbe,
        );
        sharded_best = sharded_best.min(t.elapsed());
        if let Some(prev) = &sharded {
            assert_eq!(prev, &outcome, "columnar engine is not deterministic");
        }
        sharded = Some(outcome);
    }
    let serial = serial.expect("reps >= 1");
    let sharded = sharded.expect("reps >= 1");
    prof.record("run/serial", serial_best);
    prof.record("run/sharded", sharded_best);

    // Per-phase attribution (rack/admission, rack/aggregation, shard/sim)
    // and throughput counters, at the same min-of-reps standard as the
    // headline legs: each pass records into a fresh scratch profiler and
    // the per-phase minimum across passes lands in the snapshot. (A single
    // attributed pass used to ride in here, so phase numbers carried
    // one-sample noise the timed legs had already amortized away.)
    eprintln!("attributing phases, best of {reps} probed reps...");
    let mut phase_min: BTreeMap<String, f64> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut attributed = None;
    for _ in 0..reps {
        let scratch = Profiler::new("attribution");
        let scratch_probe = ProfProbe::new(scratch.clone());
        let outcome = simulate_policy_prepared_probed(
            &config,
            policy,
            &fleet,
            &trained,
            &telemetry,
            threads,
            &scratch_probe,
        );
        if let Some(prev) = &attributed {
            assert_eq!(prev, &outcome, "probed engine is not deterministic");
        }
        attributed = Some(outcome);
        let snap = scratch.snapshot();
        for (path, p) in &snap.phases {
            phase_min
                .entry(path.clone())
                .and_modify(|best| *best = best.min(p.total_ms))
                .or_insert(p.total_ms);
        }
        // Counters are deterministic work measures (sim_steps, racks), so
        // every rep reports the same values; keep one copy.
        counters = snap.counters;
    }
    let attributed = attributed.expect("reps >= 1");
    for (path, ms) in &phase_min {
        prof.record(path, Duration::from_secs_f64(ms / 1e3));
    }
    for (name, n) in &counters {
        prof.add(name, *n);
    }

    let identical = serial == sharded && sharded == attributed;
    let serial_secs = serial_best.as_secs_f64();
    let sharded_secs = sharded_best.as_secs_f64().max(1e-9);
    let speedup = serial_secs / sharded_secs;
    let steps: u64 = sharded.iter().map(|o| o.steps).sum();
    prof.set_rate("speedup", speedup);
    prof.set_rate("racks_per_sec", racks as f64 / sharded_secs);
    prof.set_rate("sim_steps_per_sec", steps as f64 / sharded_secs);

    let snap = prof.snapshot();
    match std::fs::write(&out, snap.to_json()) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", out.display()),
    }
    print!("{}", snap.render());
    println!(
        "engine speedup (reference serial vs columnar at {threads} threads, {} core(s)): \
         {speedup:.2}x (outcomes identical: {identical})",
        par::available_parallelism()
    );
    if !identical {
        eprintln!("error: engine outcomes diverged (reference vs columnar vs probed)");
        std::process::exit(1);
    }
    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!("error: speedup {speedup:.2}x below required minimum {min:.2}x");
            std::process::exit(1);
        }
    }
}

/// Output path precedence: `--out <path>`, else `SOC_UPDATE_BASELINE=1`
/// selects the committed baseline at the workspace root, else
/// `par_speedup.json` in the current directory.
fn out_path(cli: &Cli) -> PathBuf {
    if let Some(path) = cli.extra_flag("--out") {
        return PathBuf::from(path);
    }
    if std::env::var_os("SOC_UPDATE_BASELINE").is_some_and(|v| v == "1") {
        return PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_largescale.json");
    }
    PathBuf::from("par_speedup.json")
}

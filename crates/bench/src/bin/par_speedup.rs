//! Sharded-execution speedup benchmark and the CI perf baseline.
//!
//! Times the large-scale policy simulation at `--threads 1` and at the
//! requested (default: auto) thread count, checks the outcomes are
//! identical, and emits the measurement as a canonical `soc-prof` snapshot
//! (`soc_prof::Snapshot`) — per-phase wall-clock from the sharded engine's
//! probes (`shard/sim`, `shard/trace_gen`, `merge`, per-step `rack/*`),
//! throughput counters (`racks`, `sim_steps`, `merged_events`), speedup,
//! peak RSS, and allocation counts.
//!
//! The committed baseline `BENCH_largescale.json` at the workspace root is
//! this snapshot for the pinned configuration `--fast --threads 2` (8
//! racks, 2 weeks, 15-minute steps, seed 42). Regenerate it with
//!
//! ```text
//! SOC_UPDATE_BASELINE=1 cargo run --release --bin par_speedup -- --fast --threads 2
//! ```
//!
//! and CI gates on `soc-prof diff BENCH_largescale.json <fresh run>`.
//!
//! The speedup figure is only meaningful on multi-core hardware; the
//! snapshot records `cores` in its metadata so consumers can judge the
//! number in context.

use simcore::par;
use smartoclock::policy::PolicyKind;
use soc_bench::probe::ProfProbe;
use soc_bench::Cli;
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::shard::{simulate_policy_sharded, simulate_policy_sharded_probed};
use soc_prof::Profiler;
use soc_telemetry::Telemetry;
use std::path::PathBuf;
use std::time::Instant;

// Count allocations into the snapshot's `alloc_count` / `alloc_bytes`.
#[global_allocator]
static ALLOC: soc_prof::CountingAlloc = soc_prof::CountingAlloc;

fn main() {
    let cli = Cli::from_env();
    let out = out_path();
    let racks = if cli.fast { 8 } else { 32 };
    let mut config = LargeScaleConfig::bench_reference(racks);
    config.seed = cli.seed;
    if cli.fast {
        config.weeks = 2;
        config.step = simcore::time::SimDuration::from_minutes(15);
    }
    let threads = cli.effective_threads().max(2);
    let telemetry = Telemetry::disabled();

    // This binary's whole job is measurement, so the profiler is always on
    // (no --prof needed). The snapshot name is the baseline's identity.
    let prof = Profiler::new("largescale");
    prof.set_meta("experiment", "par_speedup");
    prof.set_meta("racks", racks);
    prof.set_meta("weeks", config.weeks);
    prof.set_meta("step_minutes", config.step.as_hours_f64() * 60.0);
    prof.set_meta("seed", cli.seed);
    prof.set_meta("threads", threads);
    prof.set_meta("cores", par::available_parallelism());

    eprintln!("timing {racks} racks serial (1 thread)...");
    let t0 = Instant::now();
    let serial = simulate_policy_sharded(&config, PolicyKind::SmartOClock, &telemetry, 1);
    let serial_elapsed = t0.elapsed();
    prof.record("run/serial", serial_elapsed);

    eprintln!("timing {racks} racks sharded ({threads} threads)...");
    let probe = ProfProbe::new(prof.clone());
    let t1 = Instant::now();
    let sharded = simulate_policy_sharded_probed(
        &config,
        PolicyKind::SmartOClock,
        &telemetry,
        threads,
        &probe,
    );
    let sharded_elapsed = t1.elapsed();
    prof.record("run/sharded", sharded_elapsed);

    let identical = serial == sharded;
    let serial_secs = serial_elapsed.as_secs_f64();
    let sharded_secs = sharded_elapsed.as_secs_f64().max(1e-9);
    let speedup = serial_secs / sharded_secs;
    let steps: u64 = sharded.iter().map(|o| o.steps).sum();
    prof.set_rate("speedup", speedup);
    prof.set_rate("racks_per_sec", racks as f64 / sharded_secs);
    prof.set_rate("sim_steps_per_sec", steps as f64 / sharded_secs);

    let snap = prof.snapshot();
    match std::fs::write(&out, snap.to_json()) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", out.display()),
    }
    print!("{}", snap.render());
    println!(
        "speedup at {threads} threads on {} core(s): {speedup:.2}x (outcomes identical: {identical})",
        par::available_parallelism()
    );
    if !identical {
        eprintln!("error: sharded outcomes diverged from serial");
        std::process::exit(1);
    }
}

/// Output path precedence: `--out <path>`, else `SOC_UPDATE_BASELINE=1`
/// selects the committed baseline at the workspace root, else
/// `par_speedup.json` in the current directory. `--out` is specific to this
/// binary; parse it directly from the raw args (the shared [`Cli`] ignores
/// flags it does not know).
fn out_path() -> PathBuf {
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            if let Some(v) = iter.next() {
                return PathBuf::from(v);
            }
        }
    }
    if std::env::var_os("SOC_UPDATE_BASELINE").is_some_and(|v| v == "1") {
        return PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_largescale.json");
    }
    PathBuf::from("par_speedup.json")
}

//! Figure 9: normalized power of six servers within one rack over a week
//! (§III-Q4).
//!
//! The paper's observations: servers differ by up to ~30 % in power, and
//! the power-dominant server changes over time — the case for heterogeneous
//! budgets.

use simcore::report::{fmt_f64, Table};
use simcore::stats::normalize_to_peak;
use simcore::time::{SimDuration, SimTime};
use soc_bench::Cli;
use soc_traces::gen::{FleetConfig, TraceGenerator};

fn main() {
    let cli = Cli::from_env();
    let mut cfg = FleetConfig::paper_reference(1);
    cfg.span = SimDuration::WEEK;
    cfg.step = SimDuration::from_minutes(15);
    cfg.keep_server_series = true;
    let rack = TraceGenerator::new(cli.seed).generate_rack(&cfg, 0);
    // "Six randomly chosen servers": pick the six whose mean power is
    // closest to the rack median, so no single outlier-hot tenant mix
    // dominates the whole week (the paper's sample shows churn in which
    // server draws the most).
    let median = {
        let mut means: Vec<f64> = rack.servers.iter().map(|s| s.power.mean()).collect();
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite power"));
        means[means.len() / 2]
    };
    let mut by_distance: Vec<_> = rack.servers.iter().collect();
    by_distance.sort_by(|a, b| {
        let da = (a.power.mean() - median).abs();
        let db = (b.power.mean() - median).abs();
        da.partial_cmp(&db).expect("finite power")
    });
    let mut six: Vec<_> = by_distance.into_iter().take(6).collect();
    six.sort_by_key(|s| s.index);
    assert!(six.len() == 6, "rack should have at least six servers");

    // Normalize all six against the global peak across them (the figure's
    // y-axis is shared).
    let global_peak = six
        .iter()
        .map(|s| s.power.max())
        .fold(f64::NEG_INFINITY, f64::max);
    let mut t = Table::new(&[
        "time", "SrvA", "SrvB", "SrvC", "SrvD", "SrvE", "SrvF", "dominant",
    ]);
    for hour in (0..7 * 24).step_by(6) {
        let at = SimTime::ZERO + SimDuration::from_hours(hour);
        let vals: Vec<f64> = six
            .iter()
            .map(|s| s.power.value_at(at).unwrap_or(f64::NAN) / global_peak)
            .collect();
        let dominant = vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| char::from(b'A' + i as u8))
            .expect("six servers");
        let mut row: Vec<String> = vec![format!("{} {:02}h", at.weekday(), hour % 24)];
        row.extend(vals.iter().map(|v| fmt_f64(*v, 3)));
        row.push(format!("Srv{dominant}"));
        t.row(&row);
    }
    cli.emit("Fig. 9: normalized power of six servers in one rack", &t);

    // Quantify the spread (rack-wide, as in §III-Q4's "servers may use even
    // 30% less power than others") and dominance churn among the six.
    let means: Vec<f64> = rack.servers.iter().map(|s| s.power.mean()).collect();
    let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut dominant_changes = 0;
    let mut last_dom = usize::MAX;
    for i in 0..six[0].power.len() {
        let dom = (0..6)
            .max_by(|&a, &b| {
                six[a].power.values()[i]
                    .partial_cmp(&six[b].power.values()[i])
                    .expect("finite")
            })
            .expect("six servers");
        if dom != last_dom {
            dominant_changes += 1;
            last_dom = dom;
        }
    }
    println!(
        "mean-power spread across the six servers: {:.0}W..{:.0}W ({}% below the hottest); \
         the dominant server changed {} times over the week \
         (paper: ~30% spread, dominance churns)",
        min,
        max,
        fmt_f64((1.0 - min / max) * 100.0, 0),
        dominant_changes
    );
    let _ = normalize_to_peak(&means); // exercised above via global peak
}

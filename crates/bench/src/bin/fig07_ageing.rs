//! Figure 7: cumulative CPU ageing of a diurnal workload over 5 days under
//! the four policies (§III-Q2): expected, non-overclocked, always-overclock,
//! and overclock-aware.

use simcore::report::{fmt_f64, fmt_pct, Table};
use soc_bench::Cli;
use soc_cluster::ageing::{
    cumulative_ageing, fig7_utilization, overclock_aware_duty_cycle, AgeingPolicy,
};
use soc_reliability::wear::WearModel;

fn main() {
    let cli = Cli::from_env();
    let model = WearModel::default();
    let util = fig7_utilization(5);
    let threshold = 0.5;

    let policies = [
        AgeingPolicy::Expected,
        AgeingPolicy::NonOverclocked,
        AgeingPolicy::AlwaysOverclock,
        AgeingPolicy::OverclockAware { threshold },
    ];
    let curves: Vec<Vec<f64>> = policies
        .iter()
        .map(|&p| cumulative_ageing(&model, &util, p))
        .collect();

    let samples_per_day = 288;
    let mut t = Table::new(&[
        "day",
        "Expected",
        "Non-overclocked",
        "Always overclock",
        "Overclock-aware",
    ]);
    for day in 1..=5usize {
        let idx = day * samples_per_day - 1;
        t.row(&[
            day.to_string(),
            fmt_f64(curves[0][idx], 2),
            fmt_f64(curves[1][idx], 2),
            fmt_f64(curves[2][idx], 2),
            fmt_f64(curves[3][idx], 2),
        ]);
    }
    cli.emit(
        "Fig. 7: cumulative CPU ageing (days) under overclocking policies",
        &t,
    );

    let duty = overclock_aware_duty_cycle(&model, &util, threshold);
    let finals: Vec<f64> = curves
        .iter()
        .map(|c| *c.last().expect("non-empty"))
        .collect();
    println!(
        "final ageing after 5 days — expected {:.1}, non-OC {:.1}, always-OC {:.1}, OC-aware {:.1}",
        finals[0], finals[1], finals[2], finals[3]
    );
    println!(
        "overclock-aware duty cycle: {} of the time (paper: ~25%); \
         it stays at or below expected ageing while always-overclock exceeds it \
         (paper: non-OC <2 days, always-OC >10 days, OC-aware ≤ expected)",
        fmt_pct(duty)
    );
}

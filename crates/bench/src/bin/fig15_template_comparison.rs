//! Figure 15: CDF of the mean power-prediction error per template technique
//! (§V-B).
//!
//! Paper shape: FlatMed underpredicts (negative bias, bad high percentiles),
//! FlatMax overpredicts (large positive bias), Weekly is hurt by outlier
//! days, DailyMed (SmartOClock's choice) is the most accurate, with DailyMax
//! a conservative variant.

use simcore::par;
use simcore::report::{fmt_f64, Table};
use simcore::stats::Ecdf;
use simcore::time::SimDuration;
use soc_bench::Cli;
use soc_predict::eval::walk_forward;
use soc_predict::template::TemplateKind;
use soc_traces::gen::{FleetConfig, TraceGenerator};

fn main() {
    let cli = Cli::from_env();
    let racks = if cli.fast { 20 } else { 100 };
    let mut cfg = FleetConfig::paper_reference(racks);
    cfg.span = SimDuration::WEEK * 3;
    cfg.step = SimDuration::from_minutes(15);
    cfg.outlier_day_prob = 0.06; // holidays stress the Weekly template
    let fleet = TraceGenerator::new(cli.seed).generate(&cfg);

    // Per technique: per-rack mean error and RMSE distributions. Racks are
    // independent, so the walk-forward evaluations shard across workers;
    // par_map returns them in rack order, keeping output byte-identical for
    // any --threads value.
    let per_rack: Vec<Vec<(f64, f64)>> = par::par_map(
        cli.effective_threads(),
        fleet.racks.iter().collect(),
        |_, rack| {
            TemplateKind::ALL
                .iter()
                .map(|&kind| {
                    let report = walk_forward(&rack.power, kind);
                    (report.mean_error, report.rmse)
                })
                .collect()
        },
    );
    let mut mean_err: Vec<Vec<f64>> = vec![Vec::new(); TemplateKind::ALL.len()];
    let mut rmse: Vec<Vec<f64>> = vec![Vec::new(); TemplateKind::ALL.len()];
    for rack_reports in &per_rack {
        for (k, &(me, rm)) in rack_reports.iter().enumerate() {
            mean_err[k].push(me);
            rmse[k].push(rm);
        }
    }

    let mut t = Table::new(&[
        "technique",
        "mean-err P10 (W)",
        "mean-err P50 (W)",
        "mean-err P99 (W)",
        "RMSE P50 (W)",
        "RMSE P99 (W)",
    ]);
    for (k, &kind) in TemplateKind::ALL.iter().enumerate() {
        let me = Ecdf::from_samples(&mean_err[k]);
        let rm = Ecdf::from_samples(&rmse[k]);
        t.row(&[
            kind.to_string(),
            fmt_f64(me.quantile(0.10), 1),
            fmt_f64(me.quantile(0.50), 1),
            fmt_f64(me.quantile(0.99), 1),
            fmt_f64(rm.quantile(0.50), 1),
            fmt_f64(rm.quantile(0.99), 1),
        ]);
    }
    cli.emit(
        &format!("Fig. 15: prediction accuracy per technique across {racks} racks"),
        &t,
    );

    // Shape checks against the paper's narrative.
    let med_of = |k: usize| {
        let mut v = rmse[k].clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    let daily_med = med_of(3);
    println!(
        "median RMSE — FlatMed {:.1}W, FlatMax {:.1}W, Weekly {:.1}W, DailyMed {:.1}W, DailyMax {:.1}W",
        med_of(0),
        med_of(1),
        med_of(2),
        daily_med,
        med_of(4)
    );
    println!(
        "DailyMed is the most accurate technique: {} \
         (paper: \"DailyMed, used in SmartOClock, has the highest accuracy\")",
        (0..5).all(|k| k == 3 || med_of(k) >= daily_med)
    );
}

//! Figure 5: CDF of average, median (P50), and peak (P99) rack power
//! utilization across the fleet (§III-Q2).
//!
//! The paper observes, over 7.1k production racks: "Half the racks have an
//! average utilization lower than 66%. Importantly, 50% and 90% of the
//! racks have P99 lower than 73% and 89%." We generate a synthetic fleet
//! (scaled down; `--fast` shrinks it further) and report the same CDF
//! quantiles.

use simcore::report::{fmt_f64, fmt_pct, Table};
use simcore::time::SimDuration;
use soc_bench::Cli;
use soc_traces::gen::{FleetConfig, TraceGenerator};

fn main() {
    let cli = Cli::from_env();
    let racks = if cli.fast { 40 } else { 300 };
    let mut cfg = FleetConfig::paper_reference(racks);
    cfg.span = SimDuration::WEEK * 2; // two weeks capture the weekly cycle
    cfg.step = SimDuration::from_minutes(15);
    let fleet = TraceGenerator::new(cli.seed).generate(&cfg);

    let avg = fleet.mean_utilization_cdf();
    let p50 = fleet.utilization_percentile_cdf(50.0);
    let p99 = fleet.utilization_percentile_cdf(99.0);

    let mut t = Table::new(&["CDF quantile", "Average", "P50", "P99"]);
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99] {
        t.row(&[
            fmt_pct(q),
            fmt_f64(avg.quantile(q), 3),
            fmt_f64(p50.quantile(q), 3),
            fmt_f64(p99.quantile(q), 3),
        ]);
    }
    cli.emit(
        &format!("Fig. 5: rack power utilization CDFs across {racks} racks"),
        &t,
    );
    println!(
        "median rack: average utilization {} (paper ~0.66); \
         50%/90% of racks have P99 below {}/{} (paper: 0.73/0.89)",
        fmt_f64(avg.quantile(0.5), 2),
        fmt_f64(p99.quantile(0.5), 2),
        fmt_f64(p99.quantile(0.9), 2),
    );
}

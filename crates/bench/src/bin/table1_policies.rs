//! Table I: comparison of SmartOClock to the baseline policies over the
//! trace-driven large-scale simulation (§V-B).
//!
//! Columns, per High/Medium/Low-power cluster group: number of power-capping
//! events normalized to Central, overclocking-request success rate, capping
//! penalty on non-overclocked VMs, and normalized performance over the
//! non-overclocked baseline.
//!
//! Paper headlines: NaiveOClock caps 118.6×/36.6×/14.0× more than Central;
//! SmartOClock is within 4 %/3 %/1 % of Central's success rate and reduces
//! events by ~19× vs NaiveOClock in high-power clusters.

use simcore::report::{fmt_f64, fmt_pct, Table};
use smartoclock::policy::PolicyKind;
use soc_bench::probe::ProfProbe;
use soc_bench::Cli;
use soc_cluster::largescale::LargeScaleConfig;
use soc_cluster::largescale_metrics::{power_groups, PolicyMetrics, RackOutcome};
use soc_cluster::shard::{
    generate_fleet_probed, simulate_policy_prepared_probed, train_fleet_probed,
};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let cli = Cli::from_env();
    let prof = cli.profiler("table1_policies");
    let racks = if cli.fast { 12 } else { 60 };
    let mut config = LargeScaleConfig::bench_reference(racks);
    config.seed = cli.seed;
    if cli.fast {
        config.weeks = 2;
        config.step = simcore::time::SimDuration::from_minutes(15);
    }

    // Run every policy over the same fleet, racks sharded across workers.
    // Traces are generated and templates trained exactly once, then shared
    // by all five policy runs — the per-policy loop times simulation only.
    let telemetry = cli.telemetry();
    let threads = cli.effective_threads();
    let probe = ProfProbe::new(prof.clone());
    prof.set_meta("racks", racks);
    eprintln!("generating {racks} rack traces once ({threads} threads)...");
    let fleet = generate_fleet_probed(&config, threads, &probe);
    let trained = train_fleet_probed(&config, &fleet, threads, &probe);
    let mut outcomes: HashMap<PolicyKind, Vec<RackOutcome>> = HashMap::new();
    for policy in PolicyKind::ALL {
        eprintln!("simulating {policy} over {racks} racks ({threads} threads)...");
        let policy_start = Instant::now();
        outcomes.insert(
            policy,
            simulate_policy_prepared_probed(
                &config, policy, &fleet, &trained, &telemetry, threads, &probe,
            ),
        );
        prof.record(&format!("policy/{}", policy.name()), policy_start.elapsed());
    }

    // Group racks by power (terciles of mean utilization), using the
    // baseline outcome set for grouping (identical across policies).
    let reference = &outcomes[&PolicyKind::Central];
    let (high, medium, low) = power_groups(reference);
    let groups = [
        ("High-Power Clusters", high),
        ("Medium-Power Clusters", medium),
        ("Low-Power Clusters", low),
    ];

    let mut t = Table::new(&[
        "group",
        "system",
        "norm. #caps",
        "success",
        "cap penalty",
        "norm. perf",
    ]);
    for (label, rack_ids) in &groups {
        // Central's event count anchors the normalization (≥1 to avoid /0,
        // as the paper normalizes to Central = 1.0).
        let select = |policy: PolicyKind| -> Vec<RackOutcome> {
            outcomes[&policy]
                .iter()
                .filter(|o| rack_ids.contains(&o.rack))
                .cloned()
                .collect()
        };
        let central_caps =
            PolicyMetrics::aggregate(PolicyKind::Central, &select(PolicyKind::Central))
                .capping_steps
                .max(1);
        for policy in PolicyKind::ALL {
            let m = PolicyMetrics::aggregate(policy, &select(policy));
            t.row(&[
                label.to_string(),
                policy.to_string(),
                fmt_f64(m.capping_steps as f64 / central_caps as f64, 1),
                fmt_pct(m.success_rate),
                fmt_pct(m.capping_penalty),
                fmt_f64(m.normalized_performance, 3),
            ]);
        }
    }
    cli.emit(
        &format!("Table I: policy comparison over {racks} racks"),
        &t,
    );

    // Headline deltas.
    let agg = |p: PolicyKind| PolicyMetrics::aggregate(p, &outcomes[&p]);
    let naive = agg(PolicyKind::NaiveOClock);
    let smart = agg(PolicyKind::SmartOClock);
    let central = agg(PolicyKind::Central);
    let nofb = agg(PolicyKind::NoFeedback);
    println!(
        "overall: SmartOClock reduces capping by {:.1}x vs NaiveOClock \
         (paper: up to 18.9x in high-power clusters)",
        naive.capping_steps.max(1) as f64 / smart.capping_steps.max(1) as f64
    );
    println!(
        "success rates: Central {} / SmartOClock {} / NoFeedback {} / NaiveOClock {} \
         (paper: SmartOClock within 1-4% of Central; up to 1.24x over NoFeedback)",
        fmt_pct(central.success_rate),
        fmt_pct(smart.success_rate),
        fmt_pct(nofb.success_rate),
        fmt_pct(naive.success_rate),
    );
    cli.finish("table1_policies", &telemetry);
    cli.finish_prof(&prof);
}

//! Extension experiment: datacenter-level (multi-rack) budget coordination.
//!
//! The paper evaluates SmartOClock at rack scope; §II notes the power
//! hierarchy continues upward and §IV's architecture is explicitly
//! hierarchical. This experiment oversubscribes a shared datacenter feed
//! and compares *flat* admission (each rack enforces only its own limit)
//! against *nested* admission (the §IV-C split applied at the feed first):
//! flat racks can each look healthy while their sum overloads the feed.

use simcore::par;
use simcore::report::{fmt_pct, Table};
use simcore::time::SimDuration;
use soc_bench::Cli;
use soc_cluster::datacenter::{simulate_datacenter, DatacenterConfig};
use std::time::Instant;

fn main() {
    let cli = Cli::from_env();
    let prof = cli.profiler("exp_datacenter");
    // Health series (`--health`): this sweep runs outside the sharded rack
    // engine, so the recorder is fed from the collected results in sweep
    // order, keyed by feed fraction in basis points.
    let recorder = cli.recorder("exp_datacenter");
    let mut t = Table::new(&[
        "feed / rack-limit sum",
        "feed overloads (flat)",
        "feed overloads (nested)",
        "grants (flat)",
        "grants (nested)",
    ]);
    // The feed fractions are independent simulations: shard across workers
    // and collect in sweep order so rows land byte-identically.
    let fractions = vec![0.72, 0.66, 0.60];
    eprintln!(
        "simulating feeds at {fractions:?} ({} threads)...",
        cli.effective_threads()
    );
    let sweep_start = Instant::now();
    let outcomes = par::par_map(cli.effective_threads(), fractions, |_, feed_fraction| {
        let cfg = DatacenterConfig {
            racks: if cli.fast { 4 } else { 12 },
            feed_fraction,
            weeks: if cli.fast { 2 } else { 3 },
            step: SimDuration::from_minutes(15),
            seed: cli.seed,
        };
        (feed_fraction, simulate_datacenter(&cfg))
    });
    prof.record("feed_sweep", sweep_start.elapsed());
    prof.add("feeds", outcomes.len() as u64);
    for (feed_fraction, o) in outcomes {
        let bps = (feed_fraction * 10_000.0) as u64;
        recorder.sample(bps, "feed_overloads_flat", 0, o.feed_overloads_flat as f64);
        recorder.sample(
            bps,
            "feed_overloads_nested",
            0,
            o.feed_overloads_nested as f64,
        );
        t.row(&[
            fmt_pct(feed_fraction),
            format!("{}/{}", o.feed_overloads_flat, o.steps),
            format!("{}/{}", o.feed_overloads_nested, o.steps),
            o.grants_flat.to_string(),
            o.grants_nested.to_string(),
        ]);
    }
    cli.emit(
        "Extension: flat vs nested budget enforcement on a shared feed",
        &t,
    );
    println!(
        "Nested (hierarchical) budgets keep the oversubscribed feed safe at the \
         cost of some grants; flat rack-local enforcement overloads it whenever \
         rack peaks coincide."
    );
    cli.finish_health(
        &recorder,
        &soc_health::default_rules(SimDuration::from_minutes(15).as_micros()),
    );
    cli.finish_prof(&prof);
}

//! Figures 12, 13, 14: the cluster experiments (§V-A).
//!
//! * Fig. 12 — P99 and average latency of SocialNet by load class under
//!   Baseline / ScaleOut / ScaleUp / SmartOClock, plus missed-SLO ratios.
//! * Fig. 13 — average number of concurrently active VM instances (cost).
//! * Fig. 14 — normalized per-server energy by load and total energy.
//!
//! Paper headlines at high load: SmartOClock cuts P99 by 19.0 % vs Baseline,
//! 10.5 % vs ScaleOut, 8.9 % vs ScaleUp; 30.4 % fewer instances than
//! ScaleOut; 10 % lower total energy than ScaleOut (23 % on SocialNet
//! servers alone).

use simcore::report::{fmt_f64, Table};
use simcore::time::SimDuration;
use soc_bench::{pct_change, Cli};
use soc_cluster::harness::{ClusterConfig, ClusterResult, ClusterSim, SystemKind};
use soc_workloads::socialnet::LoadLevel;

fn main() {
    let cli = Cli::from_env();
    let telemetry = cli.telemetry();
    let systems = [
        SystemKind::Baseline,
        SystemKind::ScaleOut,
        SystemKind::ScaleUp,
        SystemKind::SmartOClock,
    ];
    let results: Vec<ClusterResult> = systems
        .iter()
        .map(|&system| {
            let mut cfg = ClusterConfig::paper_reference(system);
            cfg.seed = cli.seed;
            if cli.fast {
                cfg.duration = SimDuration::from_minutes(6);
                cfg.socialnet_servers = 6;
                cfg.mltrain_servers = 6;
                cfg.spare_servers = 3;
            }
            eprintln!("running {system}...");
            ClusterSim::with_telemetry(cfg, telemetry.clone()).run()
        })
        .collect();

    // Fig. 12: latency by load class.
    let mut fig12 = Table::new(&[
        "load",
        "metric",
        "Baseline",
        "ScaleOut",
        "ScaleUp",
        "SmartOClock",
    ]);
    for load in LoadLevel::ALL {
        fig12.row(&[
            load.to_string(),
            "P99 (ms)".into(),
            fmt_f64(results[0].p99_by_load(load), 1),
            fmt_f64(results[1].p99_by_load(load), 1),
            fmt_f64(results[2].p99_by_load(load), 1),
            fmt_f64(results[3].p99_by_load(load), 1),
        ]);
        fig12.row(&[
            load.to_string(),
            "mean (ms)".into(),
            fmt_f64(results[0].mean_by_load(load), 1),
            fmt_f64(results[1].mean_by_load(load), 1),
            fmt_f64(results[2].mean_by_load(load), 1),
            fmt_f64(results[3].mean_by_load(load), 1),
        ]);
        fig12.row(&[
            load.to_string(),
            "missed SLOs".into(),
            results[0].missed_by_load(load).to_string(),
            results[1].missed_by_load(load).to_string(),
            results[2].missed_by_load(load).to_string(),
            results[3].missed_by_load(load).to_string(),
        ]);
    }
    cli.emit("Fig. 12: SocialNet latency by system", &fig12);
    let smart_p99 = results[3].p99_by_load(LoadLevel::High);
    println!(
        "high-load P99 change of SmartOClock vs Baseline {}, vs ScaleOut {}, vs ScaleUp {} \
         (paper: -19.0%, -10.5%, -8.9%)",
        pct_change(results[0].p99_by_load(LoadLevel::High), smart_p99),
        pct_change(results[1].p99_by_load(LoadLevel::High), smart_p99),
        pct_change(results[2].p99_by_load(LoadLevel::High), smart_p99),
    );
    println!();

    // Fig. 13: cost (average concurrent instances).
    let mut fig13 = Table::new(&["system", "avg active VMs"]);
    for r in &results {
        fig13.row(&[r.system.to_string(), fmt_f64(r.avg_active_vms, 2)]);
    }
    println!("== Fig. 13: average concurrently active VM instances ==");
    println!("{}", fig13.render());
    println!(
        "SmartOClock vs ScaleOut instances: {} (paper: -30.4% at high load)",
        pct_change(results[1].avg_active_vms, results[3].avg_active_vms)
    );
    println!();

    // Fig. 14: energy.
    let mut fig14 = Table::new(&[
        "system",
        "E/server low (kJ)",
        "E/server med (kJ)",
        "E/server high (kJ)",
        "total (kJ)",
        "SocialNet only (kJ)",
    ]);
    for r in &results {
        fig14.row(&[
            r.system.to_string(),
            fmt_f64(r.per_server_energy_by_load[0] / 1e3, 1),
            fmt_f64(r.per_server_energy_by_load[1] / 1e3, 1),
            fmt_f64(r.per_server_energy_by_load[2] / 1e3, 1),
            fmt_f64(r.total_energy_j / 1e3, 1),
            fmt_f64(r.socialnet_energy_j / 1e3, 1),
        ]);
    }
    println!("== Fig. 14: energy ==");
    println!("{}", fig14.render());
    println!(
        "SmartOClock vs ScaleOut: total energy {}, SocialNet-server energy {} \
         (paper: -10% total, -23% on latency-critical servers)",
        pct_change(results[1].total_energy_j, results[3].total_energy_j),
        pct_change(results[1].socialnet_energy_j, results[3].socialnet_energy_j),
    );
    cli.finish("fig12_14_cluster", &telemetry);
}

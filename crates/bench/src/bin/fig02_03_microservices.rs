//! Figures 2 and 3: P99 tail latency (vs. SLO) and CPU utilization of the
//! eight SocialNet microservices under low/medium/high load in the
//! *Baseline*, *Overclock*, and *ScaleOut* environments (§III-Q1).

use simcore::report::{fmt_f64, Table};
use simcore::time::SimDuration;
use soc_bench::Cli;
use soc_cluster::envs::{run_environment, Environment};
use soc_power::freq::FrequencyPlan;
use soc_workloads::socialnet::{socialnet_services, LoadLevel};

fn main() {
    let cli = Cli::from_env();
    let plan = FrequencyPlan::amd_reference();
    let measure = if cli.fast {
        SimDuration::from_secs(60)
    } else {
        SimDuration::from_secs(600)
    };

    let mut fig2 = Table::new(&[
        "service", "load", "env", "P99 (ms)", "SLO (ms)", "P99/SLO", "meets",
    ]);
    let mut fig3 = Table::new(&["service", "load", "env", "CPU util"]);
    let mut summary_violations = 0usize;
    let mut summary_runs = 0usize;

    for spec in socialnet_services() {
        for load in LoadLevel::ALL {
            for env in Environment::ALL {
                let r = run_environment(&spec, load, env, plan, measure, cli.seed);
                fig2.row(&[
                    spec.name.clone(),
                    load.to_string(),
                    env.to_string(),
                    fmt_f64(r.p99_ms, 1),
                    fmt_f64(r.slo_ms, 1),
                    fmt_f64(r.p99_ms / r.slo_ms, 2),
                    if r.meets_slo() {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ]);
                fig3.row(&[
                    spec.name.clone(),
                    load.to_string(),
                    env.to_string(),
                    fmt_f64(r.cpu_utilization, 3),
                ]);
                summary_runs += 1;
                if !r.meets_slo() {
                    summary_violations += 1;
                }
            }
        }
    }

    cli.emit(
        "Fig. 2: SocialNet P99 latency by load and environment",
        &fig2,
    );
    println!();
    println!("== Fig. 3: SocialNet CPU utilization ==");
    println!("{}", fig3.render());
    println!(
        "{summary_violations}/{summary_runs} runs violate their SLO \
         (paper: violations concentrate in Baseline at high load; \
         UrlShort violates even at low utilization, Usr tolerates high utilization)"
    );
}

//! Figure 1: load pattern of three services on a typical weekday in one
//! region, utilization normalized to each service's peak.
//!
//! The paper's Service A peaks between 10 am and noon; Services B and C
//! spike for ~5 minutes at the top and bottom of each hour. This binary
//! samples the synthetic service profiles over one weekday and prints the
//! normalized series (hourly rows for readability; `--csv` emits the full
//! 5-minute resolution).

use simcore::report::{fmt_f64, Table};
use simcore::series::TimeSeries;
use simcore::stats::normalize_to_peak;
use simcore::time::{SimDuration, SimTime};
use soc_bench::Cli;
use soc_traces::services::{service_a, service_b, service_c};

fn main() {
    let cli = Cli::from_env();
    // Tuesday of week 1: a typical weekday.
    let day_start = SimTime::ZERO + SimDuration::from_days(1);
    let day_end = day_start + SimDuration::from_days(1);
    let step = SimDuration::from_minutes(5);

    let services = [service_a(), service_b(), service_c()];
    let series: Vec<TimeSeries> = services
        .iter()
        .map(|s| TimeSeries::generate(day_start, day_end, step, |t| s.shape.utilization(t)))
        .collect();
    let normalized: Vec<Vec<f64>> = series
        .iter()
        .map(|s| normalize_to_peak(s.values()))
        .collect();

    let mut full = Table::new(&["time", "ServiceA", "ServiceB", "ServiceC"]);
    for (i, &a) in normalized[0].iter().enumerate() {
        let t = series[0].time_at_index(i);
        full.row(&[
            format!("{:05.2}h", t.time_of_day().as_hours_f64()),
            fmt_f64(a, 3),
            fmt_f64(normalized[1][i], 3),
            fmt_f64(normalized[2][i], 3),
        ]);
    }
    // Console: hourly samples taken at :15 (between the top/bottom-of-hour
    // spikes, so the off-peak level is visible); CSV keeps full resolution.
    let mut hourly = Table::new(&["time", "ServiceA", "ServiceB", "ServiceC"]);
    for i in (3..series[0].len()).step_by(12) {
        let t = series[0].time_at_index(i);
        hourly.row(&[
            format!("{:05.2}h", t.time_of_day().as_hours_f64()),
            fmt_f64(normalized[0][i], 3),
            fmt_f64(normalized[1][i], 3),
            fmt_f64(normalized[2][i], 3),
        ]);
    }
    println!("== Fig. 1: weekday load, normalized to each service's peak ==");
    println!("{}", hourly.render());
    if let Some(path) = &cli.csv {
        std::fs::write(path, full.to_csv()).expect("write csv");
        eprintln!("wrote {}", path.display());
    }

    // Headline check: Service A's peak window is 10-12h.
    let peak_idx = normalized[0]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    let peak_hour = series[0]
        .time_at_index(peak_idx)
        .time_of_day()
        .as_hours_f64();
    println!("ServiceA peak at {peak_hour:.1}h (paper: 10-12h window)");
}

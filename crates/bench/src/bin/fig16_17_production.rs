//! Figures 16 and 17: the production-service experiments (§V-C).
//!
//! * Fig. 16 — Service B's CPU utilization vs request rate with and without
//!   overclocking. Paper: −23 % utilization at the 1.8k RPS peak; at equal
//!   utilization the overclocked deployment serves 1.8k vs 1.4k RPS (+28 %).
//! * Fig. 17 — Service C's 5-minute peak utilization over a weekday, with
//!   overclocking reducing peaks by ~16 %.

use simcore::par;
use simcore::report::{fmt_f64, fmt_pct, Table};
use simcore::time::{SimDuration, SimTime};
use soc_bench::{pct_change, Cli};
use soc_cluster::envs::{run_at_rate, Environment};
use soc_power::freq::FrequencyPlan;
use soc_traces::services::service_c;
use soc_workloads::microservice::ServiceSpec;
use std::time::Instant;

fn main() {
    let cli = Cli::from_env();
    let prof = cli.profiler("fig16_17_production");
    // Health series (`--health`): these sweeps run outside the sharded rack
    // engine, so the recorder is fed from the collected results in sweep
    // order — fig. 16 keyed by deployment RPS, fig. 17 by time of day.
    let recorder = cli.recorder("fig16_17_production");
    let plan = FrequencyPlan::amd_reference();
    let measure = if cli.fast {
        SimDuration::from_secs(60)
    } else {
        SimDuration::from_secs(300)
    };

    // --- Fig. 16: Service B deployment: tens of VMs, hundreds of vcores.
    // Model one representative VM slice: capacity scaled so the deployment
    // peak lands at 1.8k RPS across 10 VMs (180 RPS per VM).
    let spec = ServiceSpec::new("ServiceB", 22.0, 1.1, 4);
    let vms = 10.0;
    let mut fig16 = Table::new(&[
        "RPS (deployment)",
        "util @turbo",
        "util @overclock",
        "delta",
    ]);
    let mut peak_base = 0.0;
    let mut peak_oc = 0.0;
    // Rate points are independent runs; shard them across workers and
    // collect in sweep order (byte-identical output for any --threads).
    let threads = cli.effective_threads();
    let sweep_start = Instant::now();
    let sweep = par::par_map(
        threads,
        vec![0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8],
        |_, rps_k| {
            let per_vm = rps_k * 1000.0 / vms;
            let base = run_at_rate(
                &spec,
                per_vm,
                Environment::Baseline,
                plan,
                measure,
                cli.seed,
            );
            let oc = run_at_rate(
                &spec,
                per_vm,
                Environment::Overclock,
                plan,
                measure,
                cli.seed,
            );
            (rps_k, base, oc)
        },
    );
    prof.record("fig16/rps_sweep", sweep_start.elapsed());
    prof.add("service_runs", sweep.len() as u64 * 2);
    for (rps_k, base, oc) in sweep {
        let rps = (rps_k * 1000.0) as u64;
        recorder.sample(rps, "service_b_util_turbo", 0, base.cpu_utilization);
        recorder.sample(rps, "service_b_util_oc", 0, oc.cpu_utilization);
        if rps_k == 1.8 {
            peak_base = base.cpu_utilization;
            peak_oc = oc.cpu_utilization;
        }
        fig16.row(&[
            format!("{:.1}k", rps_k),
            fmt_f64(base.cpu_utilization, 3),
            fmt_f64(oc.cpu_utilization, 3),
            pct_change(base.cpu_utilization, oc.cpu_utilization),
        ]);
    }
    cli.emit("Fig. 16: Service B CPU utilization vs RPS", &fig16);
    println!(
        "utilization at the 1.8k RPS peak: {} (paper: -23%)",
        pct_change(peak_base, peak_oc)
    );
    // Iso-utilization throughput: what RPS does the baseline need to match
    // the overclocked deployment's utilization at 1.8k?
    let mut iso_rps = 0.0;
    let iso_start = Instant::now();
    let iso_sweep = par::par_map(
        threads,
        (600..=1800).step_by(50).collect(),
        |_, rps: i32| {
            let per_vm = f64::from(rps) / vms;
            let r = run_at_rate(
                &spec,
                per_vm,
                Environment::Baseline,
                plan,
                measure,
                cli.seed,
            );
            (f64::from(rps), r.cpu_utilization)
        },
    );
    prof.record("fig16/iso_sweep", iso_start.elapsed());
    prof.add("service_runs", iso_sweep.len() as u64);
    for (rps, util) in iso_sweep {
        if util <= peak_oc {
            iso_rps = rps;
        }
    }
    println!(
        "at equal utilization, baseline serves ~{:.1}k RPS vs 1.8k overclocked ({}) \
         (paper: 1.4k vs 1.8k, +28%)",
        iso_rps / 1000.0,
        pct_change(iso_rps, 1800.0)
    );
    println!();

    // --- Fig. 17: Service C 5-minute peaks over a weekday.
    let profile = service_c();
    let day = SimTime::ZERO + SimDuration::from_days(1);
    let ratio = plan.turbo().ratio(plan.max_overclock());
    let fig17_start = Instant::now();
    let mut fig17 = Table::new(&["hour", "peak util (baseline)", "peak util (overclocked)"]);
    let mut base_peaks = Vec::new();
    let mut oc_peaks = Vec::new();
    for hour in 0..24u64 {
        let mut base_peak: f64 = 0.0;
        for m in 0..12u64 {
            let t = day + SimDuration::from_hours(hour) + SimDuration::from_minutes(5 * m);
            base_peak = base_peak.max(profile.shape.utilization(t));
        }
        // The same offered work at the overclocked frequency occupies
        // proportionally fewer cycles.
        let oc_peak = (base_peak * ratio).min(1.0);
        let t_us = SimDuration::from_hours(hour).as_micros();
        recorder.sample(t_us, "service_c_peak_util", 0, base_peak);
        recorder.sample(t_us, "service_c_peak_util_oc", 0, oc_peak);
        base_peaks.push(base_peak);
        oc_peaks.push(oc_peak);
        fig17.row(&[
            format!("{hour:02}h"),
            fmt_f64(base_peak, 3),
            fmt_f64(oc_peak, 3),
        ]);
    }
    println!("== Fig. 17: Service C 5-minute peak utilization over a weekday ==");
    println!("{}", fig17.render());
    let mean_reduction = 1.0 - oc_peaks.iter().sum::<f64>() / base_peaks.iter().sum::<f64>();
    prof.record("fig17/peaks", fig17_start.elapsed());
    println!(
        "mean 5-minute-peak reduction with overclocking: {} (paper: 16%)",
        fmt_pct(mean_reduction)
    );
    cli.finish_health(
        &recorder,
        &soc_health::default_rules(SimDuration::from_minutes(5).as_micros()),
    );
    cli.finish_prof(&prof);
}

//! The wall-clock side of `soc_cluster::probe::ShardProbe`.
//!
//! The sharded simulation engine announces phases through pure hooks (it is
//! a sim-state crate and may not read clocks, soc-lint D002); this adapter
//! lives in the bench crate — where wall-clock is allowed — and times those
//! hooks into a [`Profiler`].
//!
//! Span names are recorded with [`Profiler::record`] (literal paths, no
//! thread-local nesting): workers run inline at `--threads 1` and on pool
//! threads otherwise, and literal paths keep the snapshot keys identical
//! across every thread count.

use soc_cluster::probe::{ShardProbe, SpanToken};
use soc_health::Recorder;
use soc_prof::Profiler;
use soc_telemetry::Event;
use std::time::Instant;

/// A [`ShardProbe`] recording into a [`Profiler`].
///
/// With a disabled profiler every hook is a no-op that allocates nothing,
/// so binaries can pass the probe unconditionally.
pub struct ProfProbe {
    profiler: Profiler,
}

impl ProfProbe {
    pub fn new(profiler: Profiler) -> ProfProbe {
        ProfProbe { profiler }
    }
}

struct RecordOnDrop {
    profiler: Profiler,
    name: &'static str,
    start: Instant,
}

impl SpanToken for RecordOnDrop {}

impl Drop for RecordOnDrop {
    fn drop(&mut self) {
        self.profiler.record(self.name, self.start.elapsed());
    }
}

impl ShardProbe for ProfProbe {
    fn span(&self, name: &'static str) -> Option<Box<dyn SpanToken>> {
        if !self.profiler.is_enabled() {
            return None;
        }
        Some(Box::new(RecordOnDrop {
            profiler: self.profiler.clone(),
            name,
            start: Instant::now(),
        }))
    }

    fn add(&self, counter: &'static str, n: u64) {
        self.profiler.add(counter, n);
    }
}

/// A [`ShardProbe`] feeding a `soc-health` [`Recorder`]: gauges become
/// series samples, merged events feed the alert engine. Spans and counters
/// are ignored — wall-clock belongs to [`ProfProbe`].
///
/// With a disabled recorder every hook is a single-branch no-op, so
/// binaries can pass the probe unconditionally.
pub struct HealthProbe {
    recorder: Recorder,
}

impl HealthProbe {
    pub fn new(recorder: Recorder) -> HealthProbe {
        HealthProbe { recorder }
    }
}

impl ShardProbe for HealthProbe {
    fn span(&self, _name: &'static str) -> Option<Box<dyn SpanToken>> {
        None
    }

    fn add(&self, _counter: &'static str, _n: u64) {}

    fn gauge(&self, t_us: u64, metric: &'static str, entity: u64, value: f64) {
        self.recorder.sample(t_us, metric, entity, value);
    }

    fn event(&self, event: &Event) {
        self.recorder.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_yields_no_tokens() {
        let probe = ProfProbe::new(Profiler::disabled());
        assert!(probe.span("shard/sim").is_none());
        probe.add("racks", 3); // must not panic
    }

    #[test]
    fn spans_and_counters_land_in_the_snapshot() {
        let prof = Profiler::new("probe-test");
        let probe = ProfProbe::new(prof.clone());
        {
            let _span = probe.span("shard/sim");
        }
        probe.add("racks", 4);
        let snap = prof.snapshot();
        assert_eq!(snap.phases["shard/sim"].count, 1);
        assert_eq!(snap.counters["racks"], 4);
    }

    #[test]
    fn health_probe_feeds_the_recorder() {
        let recorder = Recorder::new("probe-test");
        let probe = HealthProbe::new(recorder.clone());
        assert!(probe.span("shard/sim").is_none());
        probe.add("racks", 4); // ignored
        probe.gauge(1_000_000, "rack_draw_w", 2, 37.5);
        assert_eq!(recorder.samples(), 1);
    }

    #[test]
    fn disabled_recorder_probe_is_inert() {
        let probe = HealthProbe::new(Recorder::disabled());
        probe.gauge(1, "rack_draw_w", 0, 1.0);
    }
}

//! # soc-bench — experiment regenerators
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus Criterion
//! micro-benchmarks (`benches/`). Every binary accepts:
//!
//! * `--seed <u64>` — RNG seed (default 42; results in EXPERIMENTS.md use
//!   the default).
//! * `--fast` — reduced scale for smoke runs.
//! * `--csv <path>` — additionally write the table as CSV.
//! * `--trace-out <path>` — write a JSONL telemetry trace of the run. The
//!   `SOC_TRACE` environment variable is the fallback; when both are set the
//!   CLI flag wins and a single warning line notes the override.
//! * `--analyze` — after the run, analyze the trace with `soc-analyze` and
//!   print the full report to stdout.
//! * `--report-out <path>` — write that report to a file instead.
//! * `--threads <n>` — worker threads for the sharded simulation paths
//!   (`simcore::par`). Defaults to the machine's available parallelism;
//!   results are byte-identical for every value (`1` forces serial).
//! * `--prof` — collect a `soc-prof` performance profile (phase wall-clock,
//!   throughput counters, peak RSS) and print the summary to stderr.
//! * `--prof-out <path>` — additionally write the profile snapshot as
//!   canonical JSON (implies `--prof`).
//! * `--health` — collect a `soc-health` fleet health report (sim-time
//!   series, deterministic alerts, incident timeline) and print it to
//!   stderr.
//! * `--health-out <path>` — additionally write the health report as
//!   canonical JSON (implies `--health`); read it back with `soc-health`.
//!
//! `--analyze` / `--report-out` without a trace path trace to a temporary
//! file so the analysis still has input.
//!
//! Profiling and health recording are observation-only by design:
//! simulation output — stdout tables, traces, metrics — is byte-identical
//! with and without `--prof` / `--health` (their output goes to stderr and
//! the `--prof-out` / `--health-out` files only; pinned by `tests/prof.rs`
//! and `tests/health.rs`).
//!
//! This tiny library holds the shared CLI plumbing so the binaries stay
//! focused on the experiment itself.

#![forbid(unsafe_code)]

pub mod probe;

use simcore::report::Table;
use simcore::time::SimTime;
use soc_health::Recorder;
use soc_prof::Profiler;
use soc_telemetry::Telemetry;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// RNG seed.
    pub seed: u64,
    /// Reduced-scale smoke run.
    pub fast: bool,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
    /// Optional JSONL telemetry trace path (`--trace-out` / `SOC_TRACE`).
    pub trace_out: Option<PathBuf>,
    /// Print a `soc-analyze` report after the run (`--analyze`).
    pub analyze: bool,
    /// Write the `soc-analyze` report to this path (`--report-out`).
    pub report_out: Option<PathBuf>,
    /// Worker threads for sharded simulation paths (`--threads`); `0` means
    /// "use the machine's available parallelism". Use
    /// [`Cli::effective_threads`] to resolve. Thread count never changes
    /// results — only wall-clock time.
    pub threads: usize,
    /// Collect a `soc-prof` performance profile (`--prof`).
    pub prof: bool,
    /// Write the profile snapshot as canonical JSON (`--prof-out`; implies
    /// `--prof`).
    pub prof_out: Option<PathBuf>,
    /// Collect a `soc-health` fleet health report (`--health`).
    pub health: bool,
    /// Write the health report as canonical JSON (`--health-out`; implies
    /// `--health`).
    pub health_out: Option<PathBuf>,
    /// Raw argument list as parsed, for binary-specific flags (see
    /// [`Cli::extra_flag`]). Unknown flags are deliberately ignored by the
    /// shared parser so each binary can layer its own on top.
    pub raw: Vec<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            seed: 42,
            fast: false,
            csv: None,
            trace_out: None,
            analyze: false,
            report_out: None,
            threads: 0,
            prof: false,
            prof_out: None,
            health: false,
            health_out: None,
            raw: Vec::new(),
        }
    }
}

/// Apply the trace-path precedence rule: the `--trace-out` CLI flag wins
/// over the `SOC_TRACE` environment variable. Returns the chosen path and
/// whether the env var was overridden (callers print one warning line).
pub fn resolve_trace_out(flag: Option<PathBuf>, env: Option<PathBuf>) -> (Option<PathBuf>, bool) {
    match (flag, env) {
        (Some(flag), Some(env)) => {
            let overridden = env != flag;
            (Some(flag), overridden)
        }
        (Some(flag), None) => (Some(flag), false),
        (None, env) => (env, false),
    }
}

impl Cli {
    /// Parse from `std::env::args`. The `SOC_TRACE` environment variable
    /// supplies `trace_out` when the flag is absent; when both are present
    /// the flag wins and one warning line is printed. When analysis is
    /// requested without any trace path, the trace goes to a temporary file.
    pub fn from_env() -> Cli {
        let mut cli = Cli::parse(std::env::args().skip(1));
        let env = std::env::var_os("SOC_TRACE").map(PathBuf::from);
        let (trace_out, overridden) = resolve_trace_out(cli.trace_out.take(), env);
        if overridden {
            eprintln!("warning: --trace-out overrides SOC_TRACE");
        }
        cli.trace_out = trace_out;
        if cli.trace_out.is_none() && (cli.analyze || cli.report_out.is_some()) {
            cli.trace_out =
                Some(std::env::temp_dir().join(format!("soc-trace-{}.jsonl", std::process::id())));
        }
        cli
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let raw: Vec<String> = args.into_iter().collect();
        let mut cli = Cli {
            raw: raw.clone(),
            ..Cli::default()
        };
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--seed" => {
                    if let Some(v) = iter.next() {
                        if let Ok(seed) = v.parse() {
                            cli.seed = seed;
                        }
                    }
                }
                "--fast" => cli.fast = true,
                "--csv" => cli.csv = iter.next().map(PathBuf::from),
                "--trace-out" => cli.trace_out = iter.next().map(PathBuf::from),
                "--analyze" => cli.analyze = true,
                "--report-out" => cli.report_out = iter.next().map(PathBuf::from),
                "--threads" => {
                    if let Some(v) = iter.next() {
                        if let Ok(threads) = v.parse() {
                            cli.threads = threads;
                        }
                    }
                }
                "--prof" => cli.prof = true,
                "--prof-out" => {
                    cli.prof = true;
                    cli.prof_out = iter.next().map(PathBuf::from);
                }
                "--health" => cli.health = true,
                "--health-out" => {
                    cli.health = true;
                    cli.health_out = iter.next().map(PathBuf::from);
                }
                _ => {}
            }
        }
        cli
    }

    /// Resolved worker-thread count: the `--threads` value, or the
    /// machine's available parallelism when the flag was absent (`0`).
    pub fn effective_threads(&self) -> usize {
        simcore::par::resolve_threads(self.threads)
    }

    /// Value of a binary-specific `--flag value` pair from the raw argument
    /// list, or `None` when the flag is absent (or has no value). The shared
    /// parser ignores flags it does not know, so binaries use this to layer
    /// their own options (e.g. `par_speedup`'s `--reps` / `--min-speedup`)
    /// without re-parsing `std::env::args` themselves.
    pub fn extra_flag(&self, name: &str) -> Option<&str> {
        let mut iter = self.raw.iter();
        while let Some(arg) = iter.next() {
            if arg == name {
                return iter.next().map(String::as_str);
            }
        }
        None
    }

    /// The telemetry handle implied by `--trace-out` / `SOC_TRACE`: a JSONL
    /// file sink when a path was given, the zero-overhead disabled handle
    /// otherwise. Call [`Telemetry::flush`] (or drop every clone) before the
    /// process exits so the file buffer is written out.
    pub fn telemetry(&self) -> Telemetry {
        match &self.trace_out {
            Some(path) => match Telemetry::jsonl(path) {
                Ok(tm) => {
                    eprintln!("tracing to {}", path.display());
                    tm
                }
                Err(e) => {
                    eprintln!("warning: cannot open trace file {}: {e}", path.display());
                    Telemetry::disabled()
                }
            },
            None => Telemetry::disabled(),
        }
    }

    /// The profiler implied by `--prof` / `--prof-out`: an enabled handle
    /// named `name` with the common run parameters attached as metadata, or
    /// the zero-overhead disabled handle. Call [`Cli::finish_prof`] at the
    /// end of the run to emit the snapshot.
    pub fn profiler(&self, name: &str) -> Profiler {
        if !self.prof {
            return Profiler::disabled();
        }
        let prof = Profiler::new(name);
        prof.set_meta("seed", self.seed);
        prof.set_meta("threads", self.effective_threads());
        prof.set_meta("fast", self.fast);
        prof
    }

    /// Snapshot the profile, print the human summary to stderr, and honor
    /// `--prof-out`. No-op for a disabled profiler. Stderr (not stdout) so
    /// profiled runs keep byte-identical experiment output.
    pub fn finish_prof(&self, profiler: &Profiler) {
        if !profiler.is_enabled() {
            return;
        }
        let snap = profiler.snapshot();
        eprint!("{}", snap.render());
        if let Some(path) = &self.prof_out {
            if let Err(e) = std::fs::write(path, snap.to_json()) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            } else {
                eprintln!("profile written to {}", path.display());
            }
        }
    }

    /// The health recorder implied by `--health` / `--health-out`: an
    /// enabled recorder named `name`, or the zero-overhead disabled handle.
    /// Call [`Cli::finish_health`] at the end of the run to evaluate rules
    /// and emit the report.
    pub fn recorder(&self, name: &str) -> Recorder {
        if self.health {
            Recorder::new(name)
        } else {
            Recorder::disabled()
        }
    }

    /// Evaluate `rules` over the recorded run, print the rendered health
    /// report to stderr, and honor `--health-out`. No-op for a disabled
    /// recorder. Stderr (not stdout) so health-recorded runs keep
    /// byte-identical experiment output.
    pub fn finish_health(&self, recorder: &Recorder, rules: &[soc_health::Rule]) {
        let Some(report) = recorder.finalize(rules) else {
            return;
        };
        eprint!("{}", soc_health::render::render_report(&report));
        if let Some(path) = &self.health_out {
            if let Err(e) = std::fs::write(path, soc_health::json::to_json(&report)) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            } else {
                eprintln!("health report written to {}", path.display());
            }
        }
    }

    /// Print the table with a heading and honor `--csv`.
    pub fn emit(&self, heading: &str, table: &Table) {
        println!("== {heading} ==");
        println!("{}", table.render());
        if let Some(path) = &self.csv {
            if let Err(e) = std::fs::write(path, table.to_csv()) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
    }

    /// Finalize the trace and honor `--analyze` / `--report-out`: dump the
    /// end-of-run metric snapshot, flush the trace file, then run the
    /// `soc-analyze` full report on it. The report is titled with the
    /// experiment `name` (not the path) so equal-seed runs stay
    /// byte-identical. No-op when neither analysis flag is set.
    pub fn finish(&self, name: &str, telemetry: &Telemetry) {
        if telemetry.is_enabled() {
            telemetry.emit_metrics_snapshot(SimTime::ZERO);
            telemetry.flush();
        }
        if !self.analyze && self.report_out.is_none() {
            return;
        }
        let Some(path) = &self.trace_out else {
            eprintln!("warning: --analyze/--report-out need a trace; none was written");
            return;
        };
        let trace = match soc_analyze::Trace::load(path) {
            Ok(trace) => trace,
            Err(e) => {
                eprintln!("warning: cannot analyze {}: {e}", path.display());
                return;
            }
        };
        let report = soc_analyze::full_report(&trace, name);
        if self.analyze {
            print!("{report}");
        }
        if let Some(out) = &self.report_out {
            if let Err(e) = std::fs::write(out, &report) {
                eprintln!("warning: failed to write {}: {e}", out.display());
            } else {
                eprintln!("report written to {}", out.display());
            }
        }
    }
}

/// Format a percentage delta `new` vs `old` (negative = reduction).
pub fn pct_change(old: f64, new: f64) -> String {
    if old == 0.0 {
        return "-".to_string();
    }
    format!("{:+.1}%", (new - old) / old * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]);
        assert_eq!(cli.seed, 42);
        assert!(!cli.fast);
        assert!(cli.csv.is_none());
        assert!(!cli.analyze);
        assert!(cli.report_out.is_none());
    }

    #[test]
    fn parses_flags() {
        let cli = parse(&["--seed", "7", "--fast", "--csv", "/tmp/out.csv"]);
        assert_eq!(cli.seed, 7);
        assert!(cli.fast);
        assert_eq!(cli.csv.unwrap().to_str().unwrap(), "/tmp/out.csv");
    }

    #[test]
    fn parses_threads_and_resolves_auto() {
        let cli = parse(&["--threads", "4"]);
        assert_eq!(cli.threads, 4);
        assert_eq!(cli.effective_threads(), 4);
        let auto = parse(&[]);
        assert_eq!(auto.threads, 0);
        assert_eq!(
            auto.effective_threads(),
            simcore::par::available_parallelism()
        );
    }

    #[test]
    fn parses_trace_out() {
        let cli = parse(&["--trace-out", "/tmp/trace.jsonl"]);
        assert_eq!(cli.trace_out.unwrap().to_str().unwrap(), "/tmp/trace.jsonl");
        assert!(parse(&[]).trace_out.is_none());
    }

    #[test]
    fn parses_analyze_flags() {
        let cli = parse(&["--analyze", "--report-out", "/tmp/report.txt"]);
        assert!(cli.analyze);
        assert_eq!(cli.report_out.unwrap().to_str().unwrap(), "/tmp/report.txt");
    }

    #[test]
    fn trace_out_flag_beats_env() {
        let flag = Some(PathBuf::from("/tmp/flag.jsonl"));
        let env = Some(PathBuf::from("/tmp/env.jsonl"));
        let (chosen, warned) = resolve_trace_out(flag.clone(), env.clone());
        assert_eq!(chosen, flag);
        assert!(warned, "overriding the env var should warn");
        // Same path on both sides: no warning.
        let (chosen, warned) = resolve_trace_out(flag.clone(), flag.clone());
        assert_eq!(chosen, flag);
        assert!(!warned);
        // Env alone is honored silently.
        let (chosen, warned) = resolve_trace_out(None, env.clone());
        assert_eq!(chosen, env);
        assert!(!warned);
        assert_eq!(resolve_trace_out(None, None), (None, false));
    }

    #[test]
    fn telemetry_disabled_without_trace_out() {
        assert!(!parse(&[]).telemetry().is_enabled());
    }

    #[test]
    fn finish_without_analysis_is_quiet_noop() {
        // Must not panic or print a report when neither flag is set.
        parse(&[]).finish("noop", &Telemetry::disabled());
    }

    #[test]
    fn parses_health_flags() {
        let cli = parse(&["--health"]);
        assert!(cli.health);
        assert!(cli.health_out.is_none());
        let cli = parse(&["--health-out", "/tmp/run.health.json"]);
        assert!(cli.health, "--health-out must imply --health");
        assert_eq!(
            cli.health_out.unwrap().to_str().unwrap(),
            "/tmp/run.health.json"
        );
        assert!(!parse(&[]).health);
    }

    #[test]
    fn recorder_disabled_without_health_flag() {
        assert!(!parse(&[]).recorder("x").is_enabled());
        assert!(parse(&["--health"]).recorder("x").is_enabled());
        // finish_health on a disabled recorder is a quiet no-op.
        parse(&[]).finish_health(&Recorder::disabled(), &soc_health::default_rules(1));
    }

    #[test]
    fn ignores_unknown_and_bad_values() {
        let cli = parse(&["--wat", "--seed", "notanumber"]);
        assert_eq!(cli.seed, 42);
    }

    #[test]
    fn extra_flag_reads_binary_specific_options() {
        let cli = parse(&["--fast", "--reps", "5", "--min-speedup", "1.2"]);
        assert_eq!(cli.extra_flag("--reps"), Some("5"));
        assert_eq!(cli.extra_flag("--min-speedup"), Some("1.2"));
        assert_eq!(cli.extra_flag("--absent"), None);
        // A trailing flag with no value yields None, not a panic.
        assert_eq!(parse(&["--reps"]).extra_flag("--reps"), None);
    }

    #[test]
    fn pct_change_formats() {
        assert_eq!(pct_change(100.0, 70.0), "-30.0%");
        assert_eq!(pct_change(0.0, 1.0), "-");
    }
}

//! # soc-bench — experiment regenerators
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus Criterion
//! micro-benchmarks (`benches/`). Every binary accepts:
//!
//! * `--seed <u64>` — RNG seed (default 42; results in EXPERIMENTS.md use
//!   the default).
//! * `--fast` — reduced scale for smoke runs.
//! * `--csv <path>` — additionally write the table as CSV.
//! * `--trace-out <path>` — write a JSONL telemetry trace of the run (the
//!   `SOC_TRACE` environment variable is the equivalent fallback).
//!
//! This tiny library holds the shared CLI plumbing so the binaries stay
//! focused on the experiment itself.

use simcore::report::Table;
use soc_telemetry::Telemetry;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// RNG seed.
    pub seed: u64,
    /// Reduced-scale smoke run.
    pub fast: bool,
    /// Optional CSV output path.
    pub csv: Option<PathBuf>,
    /// Optional JSONL telemetry trace path (`--trace-out` / `SOC_TRACE`).
    pub trace_out: Option<PathBuf>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            seed: 42,
            fast: false,
            csv: None,
            trace_out: None,
        }
    }
}

impl Cli {
    /// Parse from `std::env::args`, ignoring unknown flags. The `SOC_TRACE`
    /// environment variable supplies `trace_out` when the flag is absent.
    pub fn from_env() -> Cli {
        let mut cli = Cli::parse(std::env::args().skip(1));
        if cli.trace_out.is_none() {
            cli.trace_out = std::env::var_os("SOC_TRACE").map(PathBuf::from);
        }
        cli
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut cli = Cli::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--seed" => {
                    if let Some(v) = iter.next() {
                        if let Ok(seed) = v.parse() {
                            cli.seed = seed;
                        }
                    }
                }
                "--fast" => cli.fast = true,
                "--csv" => cli.csv = iter.next().map(PathBuf::from),
                "--trace-out" => cli.trace_out = iter.next().map(PathBuf::from),
                _ => {}
            }
        }
        cli
    }

    /// The telemetry handle implied by `--trace-out` / `SOC_TRACE`: a JSONL
    /// file sink when a path was given, the zero-overhead disabled handle
    /// otherwise. Call [`Telemetry::flush`] (or drop every clone) before the
    /// process exits so the file buffer is written out.
    pub fn telemetry(&self) -> Telemetry {
        match &self.trace_out {
            Some(path) => match Telemetry::jsonl(path) {
                Ok(tm) => {
                    eprintln!("tracing to {}", path.display());
                    tm
                }
                Err(e) => {
                    eprintln!("warning: cannot open trace file {}: {e}", path.display());
                    Telemetry::disabled()
                }
            },
            None => Telemetry::disabled(),
        }
    }

    /// Print the table with a heading and honor `--csv`.
    pub fn emit(&self, heading: &str, table: &Table) {
        println!("== {heading} ==");
        println!("{}", table.render());
        if let Some(path) = &self.csv {
            if let Err(e) = std::fs::write(path, table.to_csv()) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
    }
}

/// Format a percentage delta `new` vs `old` (negative = reduction).
pub fn pct_change(old: f64, new: f64) -> String {
    if old == 0.0 {
        return "-".to_string();
    }
    format!("{:+.1}%", (new - old) / old * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]);
        assert_eq!(cli.seed, 42);
        assert!(!cli.fast);
        assert!(cli.csv.is_none());
    }

    #[test]
    fn parses_flags() {
        let cli = parse(&["--seed", "7", "--fast", "--csv", "/tmp/out.csv"]);
        assert_eq!(cli.seed, 7);
        assert!(cli.fast);
        assert_eq!(cli.csv.unwrap().to_str().unwrap(), "/tmp/out.csv");
    }

    #[test]
    fn parses_trace_out() {
        let cli = parse(&["--trace-out", "/tmp/trace.jsonl"]);
        assert_eq!(cli.trace_out.unwrap().to_str().unwrap(), "/tmp/trace.jsonl");
        assert!(parse(&[]).trace_out.is_none());
    }

    #[test]
    fn telemetry_disabled_without_trace_out() {
        assert!(!parse(&[]).telemetry().is_enabled());
    }

    #[test]
    fn ignores_unknown_and_bad_values() {
        let cli = parse(&["--wat", "--seed", "notanumber"]);
        assert_eq!(cli.seed, 42);
    }

    #[test]
    fn pct_change_formats() {
        assert_eq!(pct_change(100.0, 70.0), "-30.0%");
        assert_eq!(pct_change(0.0, 1.0), "-");
    }
}

//! Ablation bench for DESIGN.md decision #5: the weekly epoch budget with
//! carry-over. Measures the cost of the budget bookkeeping (consume/reserve
//! on the admission hot path) and prints an ablation of epoch length:
//! weekly epochs let weekend surplus fund weekday peaks, daily epochs do not
//! (paper §IV-B: "Using a longer epoch, such as a week, enables assigning
//! unused budgets from the weekend to the weekdays").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simcore::time::{SimDuration, SimTime};
use soc_reliability::budget::OverclockBudget;
use std::hint::black_box;

/// Simulate a fortnight of demand: 3 h of wanted overclocking per weekday,
/// none on weekends. Returns the fraction of demanded hours actually
/// granted under the given epoch length.
fn grant_fraction(epoch: SimDuration) -> f64 {
    let mut budget = OverclockBudget::new(0.10, epoch);
    let mut wanted = 0.0;
    let mut granted = 0.0;
    for day in 0..14u64 {
        let t = SimTime::ZERO + SimDuration::from_days(day);
        if t.weekday().is_weekend() {
            continue;
        }
        for hour in 0..3u64 {
            let at = t + SimDuration::from_hours(9 + hour);
            wanted += 1.0;
            if budget.consume(at, SimDuration::from_hours(1)).is_ok() {
                granted += 1.0;
            }
        }
    }
    granted / wanted
}

fn bench_budget(c: &mut Criterion) {
    c.bench_function("budget_consume_hot_path", |b| {
        b.iter_batched(
            || OverclockBudget::new(0.10, SimDuration::WEEK),
            |mut budget| {
                for m in 0..200u64 {
                    let _ = black_box(budget.consume(
                        SimTime::ZERO + SimDuration::from_minutes(m),
                        SimDuration::from_minutes(1),
                    ));
                }
            },
            BatchSize::SmallInput,
        )
    });

    let weekly = grant_fraction(SimDuration::WEEK);
    let daily = grant_fraction(SimDuration::DAY);
    println!(
        "\n[ablation] weekday-peak demand granted: weekly epoch {:.1}% vs daily epoch {:.1}%",
        weekly * 100.0,
        daily * 100.0
    );
    assert!(
        weekly >= daily,
        "weekly epochs must serve at least as much weekday demand as daily epochs"
    );
}

criterion_group!(benches, bench_budget);
criterion_main!(benches);

//! Ablation bench for DESIGN.md decision #2: heterogeneous vs even budget
//! splitting — both the computational cost of the gOA's split and the
//! *quality* difference (how much requested overclock demand each split
//! satisfies), reported via a Criterion throughput measurement plus a
//! printed quality summary.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::rng::Pcg32;
use soc_power::hierarchy::{heterogeneous_split, DemandProfile};
use soc_power::units::Watts;
use std::hint::black_box;

fn demands(n: usize, seed: u64) -> (Watts, Vec<DemandProfile>) {
    let mut rng = Pcg32::seed_from_u64(seed);
    let profiles: Vec<DemandProfile> = (0..n)
        .map(|_| DemandProfile {
            regular: Watts::new(rng.gen_range_f64(150.0, 400.0)),
            overclock_demand: Watts::new(if rng.gen_bool(0.5) {
                rng.gen_range_f64(0.0, 80.0)
            } else {
                0.0
            }),
        })
        .collect();
    let regular_total: f64 = profiles.iter().map(|p| p.regular.get()).sum();
    // Limit leaves headroom for roughly half of the demand.
    let demand_total: f64 = profiles.iter().map(|p| p.overclock_demand.get()).sum();
    (Watts::new(regular_total + 0.5 * demand_total), profiles)
}

/// Quality of a budget assignment: fraction of overclock demand satisfiable,
/// and the number of servers whose budget does not even cover their regular
/// draw (those servers would be *throttled*, the §IV-C failure mode of even
/// splits).
fn quality(budgets: &[Watts], profiles: &[DemandProfile]) -> (f64, usize) {
    let mut got = 0.0;
    let mut want = 0.0;
    let mut starved = 0;
    for (b, p) in budgets.iter().zip(profiles) {
        if *b < p.regular {
            starved += 1;
        }
        let headroom = (*b - p.regular).clamp_non_negative().get();
        want += p.overclock_demand.get();
        got += headroom.min(p.overclock_demand.get());
    }
    let frac = if want == 0.0 { 1.0 } else { got / want };
    (frac, starved)
}

fn bench_split(c: &mut Criterion) {
    let (limit, profiles) = demands(32, 7);
    c.bench_function("heterogeneous_split_32_servers", |b| {
        b.iter(|| black_box(heterogeneous_split(black_box(limit), black_box(&profiles))))
    });

    // Quality ablation: print once, outside the timed loop.
    let hetero = heterogeneous_split(limit, &profiles);
    let even = vec![limit / profiles.len() as f64; profiles.len()];
    let (h_frac, h_starved) = quality(&hetero, &profiles);
    let (e_frac, e_starved) = quality(&even, &profiles);
    println!(
        "\n[ablation] heterogeneous split: {:.1}% of overclock demand satisfied, {} servers \
         starved below their regular draw; even split: {:.1}% satisfied but {} servers starved \
         (paper §IV-C: even shares disproportionately hurt power-hungry servers)",
        h_frac * 100.0,
        h_starved,
        e_frac * 100.0,
        e_starved
    );
    assert_eq!(
        h_starved, 0,
        "heterogeneous budgets never starve a server's regular draw"
    );
    assert!(
        e_starved > 0,
        "this workload should show the even split starving power-hungry servers"
    );
}

criterion_group!(benches, bench_split);
criterion_main!(benches);

//! Telemetry overhead micro-benchmark.
//!
//! The telemetry layer sits on the sOA's admission path and inside every
//! control tick, so its disabled cost must be near zero: a disabled handle
//! is a single `Option` check and the `tm_event!` macro never evaluates its
//! fields. This bench pins that down by driving the same emission sites
//! with a disabled handle, an in-memory sink, and the bare metrics
//! registry, plus an instrumented sOA request/release cycle both ways.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::time::SimTime;
use smartoclock::config::SoaConfig;
use smartoclock::messages::OverclockRequest;
use smartoclock::policy::PolicyKind;
use smartoclock::soa::ServerOverclockAgent;
use soc_power::model::PowerModel;
use soc_telemetry::{tm_event, Component, Severity, Telemetry};
use std::hint::black_box;

fn emit_one(tm: &Telemetry, i: u64) {
    tm_event!(tm, SimTime::ZERO, Component::Soa, Severity::Info, "bench_event",
        "server" => i,
        "value" => 42.5f64,
        "state" => "granted");
}

fn bench_emission(c: &mut Criterion) {
    let disabled = Telemetry::disabled();
    let (memory, sink) = Telemetry::memory();

    c.bench_function("telemetry_event_disabled", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            emit_one(black_box(&disabled), black_box(i));
        })
    });

    c.bench_function("telemetry_event_memory_sink", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            emit_one(black_box(&memory), black_box(i));
            // Bound sink memory without paying a clear on every event.
            if i.is_multiple_of(65536) {
                sink.clear();
            }
        });
        sink.clear();
    });

    c.bench_function("telemetry_counter_memory_sink", |b| {
        b.iter(|| {
            memory.metrics(|m| m.inc_counter("bench_counter", &[("server", 3usize.into())]));
        })
    });

    c.bench_function("telemetry_histogram_memory_sink", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 0.1;
            memory.metrics(|m| m.observe("bench_hist", &[], x % 500.0));
        })
    });
}

/// The end-to-end cost the harness actually pays: a full sOA
/// request/release cycle with telemetry disabled vs. captured in memory.
fn bench_soa_path(c: &mut Criterion) {
    let model = PowerModel::reference_server();
    let target = model.plan().max_overclock();
    let request = |i: u64| OverclockRequest {
        vm: format!("vm{}", i % 4),
        cores: 4,
        target,
        expected_utilization: 0.7,
        duration: None,
        priority: 1,
        cause: 0,
    };

    let mut run_cycle = |label: &str, telemetry: Telemetry, drain: Option<&dyn Fn()>| {
        let mut soa =
            ServerOverclockAgent::new(model, SoaConfig::reference(), PolicyKind::SmartOClock);
        soa.set_telemetry(telemetry, 0);
        c.bench_function(label, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                if let Ok(id) = soa.request_overclock(SimTime::ZERO, black_box(request(i))) {
                    soa.end_overclock(SimTime::ZERO, id);
                }
                if i.is_multiple_of(16384) {
                    if let Some(drain) = drain {
                        drain();
                    }
                }
            })
        });
    };

    run_cycle("soa_request_cycle_disabled", Telemetry::disabled(), None);
    let (tm, sink) = Telemetry::memory();
    let clear = || sink.clear();
    run_cycle("soa_request_cycle_memory_sink", tm, Some(&clear));
}

criterion_group!(benches, bench_emission, bench_soa_path);
criterion_main!(benches);

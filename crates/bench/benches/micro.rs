//! Micro-benchmarks of the hot paths: the event queue, the power model, the
//! template build/predict pipeline, and one sOA control tick.
//!
//! These are the operations the per-server agent performs continuously in
//! production; the paper stresses that an sOA "can start/stop overclocking
//! in order of a few milliseconds" (§IV-D) — the control tick below is
//! orders of magnitude under that bound.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simcore::event::EventQueue;
use simcore::series::TimeSeries;
use simcore::time::{SimDuration, SimTime};
use smartoclock::config::SoaConfig;
use smartoclock::messages::OverclockRequest;
use smartoclock::policy::PolicyKind;
use smartoclock::soa::ServerOverclockAgent;
use soc_power::model::PowerModel;
use soc_power::units::{MegaHertz, Watts};
use soc_predict::template::{PowerTemplate, TemplateKind};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                for i in 0..10_000u64 {
                    q.push(SimTime::from_micros((i * 2_654_435_761) % 1_000_000), i);
                }
                q
            },
            |mut q| {
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_power_model(c: &mut Criterion) {
    let model = PowerModel::reference_server();
    let oc = model.plan().max_overclock();
    c.bench_function("power_model_server_power_mixed", |b| {
        b.iter(|| black_box(model.server_power_mixed(black_box(0.7), black_box(12), oc)))
    });
    c.bench_function("power_model_split_regular_overclock", |b| {
        let observed = model.server_power_mixed(0.7, 12, oc);
        b.iter(|| black_box(model.split_regular_overclock(observed, 12, oc)))
    });
}

fn week_history() -> TimeSeries {
    TimeSeries::generate(
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::WEEK,
        SimDuration::from_minutes(5),
        |t| 200.0 + 50.0 * (t.time_of_day().as_hours_f64() / 24.0 * std::f64::consts::TAU).sin(),
    )
}

fn bench_templates(c: &mut Criterion) {
    let history = week_history();
    c.bench_function("template_build_dailymed_1week_5min", |b| {
        b.iter(|| black_box(PowerTemplate::build(&history, TemplateKind::DailyMed)))
    });
    let template = PowerTemplate::build(&history, TemplateKind::DailyMed);
    c.bench_function("template_predict", |b| {
        let t = SimTime::ZERO + SimDuration::from_days(9);
        b.iter(|| black_box(template.predict(black_box(t))))
    });
}

fn bench_soa_tick(c: &mut Criterion) {
    let model = PowerModel::reference_server();
    c.bench_function("soa_control_tick", |b| {
        b.iter_batched(
            || {
                let mut soa = ServerOverclockAgent::new(
                    model,
                    SoaConfig::reference(),
                    PolicyKind::SmartOClock,
                );
                soa.set_power_budget(Watts::new(450.0));
                soa.set_power_template(PowerTemplate::build(
                    &week_history(),
                    TemplateKind::DailyMed,
                ));
                let _ = soa
                    .request_overclock(
                        SimTime::ZERO,
                        OverclockRequest::metrics_based("vm", 8, MegaHertz::new(4000)),
                    )
                    .expect("grantable");
                soa
            },
            |mut soa| {
                for s in 1..20u64 {
                    black_box(soa.control_tick(SimTime::from_secs(s), Watts::new(300.0), None));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_power_model,
    bench_templates,
    bench_soa_tick
);
criterion_main!(benches);

//! Micro-benchmarks of the columnar rack hot path against its row-oriented
//! equivalents: batched power aggregation over `ServerSeriesView` columns
//! vs per-server `TimeSeries::value_at`, batched template lookup
//! (`TemplateSlot` + `predict_at`) vs per-server `predict`, and one full
//! rack simulation through the columnar engine vs the retained reference
//! engine (the admission scan dominates both).
//!
//! These are the kernels behind the committed `BENCH_largescale.json`
//! baseline; `tests/equivalence.rs` proves the fast variants byte-identical
//! to the naive ones, so the deltas measured here are pure speed.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::series::TimeSeries;
use simcore::time::{SimDuration, SimTime};
use smartoclock::policy::PolicyKind;
use soc_cluster::columns::fill_base_power;
use soc_cluster::largescale::{
    simulate_rack_reference, simulate_rack_trained_probed, train_rack, LargeScaleConfig,
};
use soc_cluster::shard::generate_fleet;
use soc_cluster::NoopProbe;
use soc_predict::template::{PowerTemplate, TemplateKind, TemplateSlot};
use soc_telemetry::Telemetry;
use soc_traces::fleet::ServerSeriesView;
use std::hint::black_box;

const SERVERS: usize = 16;
const STEP: SimDuration = SimDuration::from_minutes(15);

fn server_series(seed: usize) -> TimeSeries {
    TimeSeries::generate(
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::WEEK,
        STEP,
        |t| {
            250.0
                + 40.0 * (t.time_of_day().as_hours_f64() / 24.0 * std::f64::consts::TAU).sin()
                + seed as f64
        },
    )
}

fn bench_power_aggregation(c: &mut Criterion) {
    // One rack's worth of per-server power columns, plus the same data as
    // row-oriented TimeSeries for the naive variant.
    let series: Vec<TimeSeries> = (0..SERVERS).map(server_series).collect();
    let columns: Vec<Vec<f64>> = series
        .iter()
        .map(|s| s.iter().map(|(_, v)| v).collect())
        .collect();
    let views: Vec<ServerSeriesView<'_>> = columns
        .iter()
        .map(|p| ServerSeriesView {
            utilization: p,
            power: p,
            oc_demand_cores: p,
        })
        .collect();
    let t = SimTime::ZERO + SimDuration::from_days(3);
    let idx = series[0].index_at(t).expect("in range");

    c.bench_function("power_aggregation_columnar_16", |b| {
        let mut out = Vec::with_capacity(SERVERS);
        b.iter(|| black_box(fill_base_power(black_box(&views), black_box(idx), &mut out)))
    });
    c.bench_function("power_aggregation_naive_16", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for s in &series {
                total += s.value_at(black_box(t)).unwrap_or(0.0);
            }
            black_box(total)
        })
    });
}

fn bench_template_lookup(c: &mut Criterion) {
    let templates: Vec<PowerTemplate> = (0..SERVERS)
        .map(|i| PowerTemplate::build(&server_series(i), TemplateKind::DailyMed))
        .collect();
    let t = SimTime::ZERO + SimDuration::from_days(9) + SimDuration::from_minutes(45);

    c.bench_function("template_lookup_batched_16", |b| {
        b.iter(|| {
            // The columnar engine computes the slot once per step and
            // reuses it across every server in the rack.
            let slot = TemplateSlot::at(black_box(t), STEP);
            let mut sum = 0.0;
            for tpl in &templates {
                sum += tpl.predict_at(slot);
            }
            black_box(sum)
        })
    });
    c.bench_function("template_lookup_naive_16", |b| {
        b.iter(|| {
            // The reference engine re-derives day/week slots per server.
            let mut sum = 0.0;
            for tpl in &templates {
                sum += tpl.predict(black_box(t));
            }
            black_box(sum)
        })
    });
}

fn bench_rack_simulation(c: &mut Criterion) {
    // One small rack end to end: the admission scan + aggregation dominate,
    // so this is the engine-level number behind the baseline's `speedup`.
    let mut cfg = LargeScaleConfig::small_test();
    cfg.racks = 1;
    let fleet = generate_fleet(&cfg, 1);
    let (rack, model) = fleet.iter().next().expect("one rack");
    let trained = train_rack(&cfg, rack, model);
    let telemetry = Telemetry::disabled();

    c.bench_function("rack_sim_columnar", |b| {
        b.iter(|| {
            black_box(simulate_rack_trained_probed(
                &cfg,
                PolicyKind::SmartOClock,
                rack,
                model,
                &trained,
                &telemetry,
                &NoopProbe,
            ))
        })
    });
    c.bench_function("rack_sim_reference", |b| {
        b.iter(|| {
            black_box(simulate_rack_reference(
                &cfg,
                PolicyKind::SmartOClock,
                rack,
                model,
                &trained,
                &telemetry,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_power_aggregation,
    bench_template_lookup,
    bench_rack_simulation
);
criterion_main!(benches);

//! Ablation bench for §VI's wear-out counters: offline time-budget
//! certification vs. online per-part wear accounting.
//!
//! Measures the cost of the online admission check (it sits on the sOA's
//! request path) and prints how much overclocking each scheme grants on a
//! diurnal utilization profile — the paper's argument for engaging vendors
//! on wear-out counters.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::time::SimDuration;
use soc_reliability::counters::{offline_vs_online_grant, WearoutCounter};
use soc_reliability::wear::WearModel;
use std::hint::black_box;

fn diurnal_profile(days: usize) -> Vec<f64> {
    (0..days * 288)
        .map(|i| {
            let h = (i % 288) as f64 / 12.0;
            0.15 + 0.45 * (-((h - 13.0) / 4.0).powi(2)).exp()
        })
        .collect()
}

fn bench_wear_accounting(c: &mut Criterion) {
    let model = WearModel::default();
    let plan = model.curve().plan();

    c.bench_function("wearout_counter_admission_check", |b| {
        let mut counter = WearoutCounter::new(model.clone());
        counter.record(0.2, plan.turbo(), 55.0, SimDuration::from_days(3));
        b.iter(|| {
            black_box(counter.can_overclock(
                black_box(0.7),
                plan.max_overclock(),
                65.0,
                SimDuration::from_minutes(5),
            ))
        })
    });

    c.bench_function("wearout_counter_record", |b| {
        let mut counter = WearoutCounter::new(model.clone());
        b.iter(|| {
            counter.record(
                black_box(0.5),
                plan.turbo(),
                60.0,
                SimDuration::from_minutes(5),
            );
        })
    });

    // Ablation: overclocking hours granted over one diurnal week.
    let profile = diurnal_profile(7);
    let (offline, online) =
        offline_vs_online_grant(&model, &profile, SimDuration::from_minutes(5), 0.10, 60.0);
    println!(
        "\n[ablation] overclocking granted over a diurnal week: offline 10% budget {:.1}h, \
         online wear counter {:.1}h ({:.1}x) — §VI: offline certification \
         \"does not leverage the impact of utilization variability\"",
        offline,
        online,
        online / offline.max(1e-9)
    );
    assert!(
        online > offline,
        "online accounting must grant at least the offline budget"
    );
}

criterion_group!(benches, bench_wear_accounting);
criterion_main!(benches);

//! Ablation bench for the cooling-technology discussion of §III-Q2:
//! "advanced cooling can be used to enhance the capability (e.g., duration)
//! as lower operating temperatures reduce ageing".
//!
//! Measures the wear-model evaluation cost on the sOA hot path and prints
//! the sustainable overclocking duty cycle under air, liquid, and immersion
//! cooling.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::time::SimDuration;
use soc_power::units::Watts;
use soc_reliability::thermal::{sustainable_duty_cycle, Cooling, ThermalModel};
use soc_reliability::wear::WearModel;
use std::hint::black_box;

fn bench_cooling(c: &mut Criterion) {
    let wear = WearModel::default();
    let plan = wear.curve().plan();

    c.bench_function("wear_ageing_rate", |b| {
        b.iter(|| {
            black_box(wear.ageing_rate(black_box(0.7), plan.max_overclock(), black_box(72.0)))
        })
    });

    c.bench_function("thermal_step", |b| {
        let mut t = ThermalModel::new(Cooling::Air, SimDuration::from_secs(60));
        b.iter(|| {
            t.step(black_box(Watts::new(350.0)), SimDuration::from_secs(5));
            black_box(t.junction_c())
        })
    });

    // Ablation (printed once): the overclocking duty cycle each cooling
    // technology sustains without exceeding reference ageing.
    let duty = |cooling| {
        sustainable_duty_cycle(
            &wear,
            cooling,
            0.55,
            plan.max_overclock(),
            Watts::new(250.0),
            Watts::new(330.0),
        )
    };
    let (air, liquid, immersion) = (
        duty(Cooling::Air),
        duty(Cooling::Liquid),
        duty(Cooling::Immersion),
    );
    println!(
        "\n[ablation] sustainable overclock duty cycle: air {:.1}%, liquid {:.1}%, immersion {:.1}% \
         (paper §III-Q2: advanced cooling extends overclocking duration)",
        air * 100.0,
        liquid * 100.0,
        immersion * 100.0
    );
    assert!(
        air < liquid && liquid < immersion,
        "cooling ordering must hold"
    );
}

criterion_group!(benches, bench_cooling);
criterion_main!(benches);

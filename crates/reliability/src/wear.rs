//! The CPU ageing model and the lifetime-credit ledger.
//!
//! ## Model
//!
//! The paper uses a proprietary TSMC 7 nm composite model relating voltage
//! scaling, CPU utilization, and gate-oxide wear (§III-Q2). We substitute the
//! standard exponential acceleration form from the reliability literature the
//! paper cites (exponential relationship between temperature, voltage, and
//! lifetime):
//!
//! ```text
//! rate(u, V, T) = α + β · u² · exp(k_v (V − V_turbo)) · exp(k_t (T − T_ref))
//! ```
//!
//! `rate` is dimensionless ageing speed: 1.0 means the part ages one day per
//! wall-clock day (the vendor reference). The quadratic utilization term
//! reflects that voltage-accelerated wear concentrates in actively switching
//! transistors — and it is the exponent that lets one parameterization hit
//! all three of the paper's anchors simultaneously (see crate docs and the
//! `calibration_*` tests below).
//!
//! ## Calibration anchors (paper §III-Q2, Fig. 7)
//!
//! 1. Conservative fleet usage (≈45 % utilization at turbo) ⇒ rate 0.5
//!    ("a CPU ages by 2.5 years over a 5-year period").
//! 2. Worst-case overclocking (100 % utilization at max OC voltage) for half
//!    the time ⇒ ≥ 5 years of ageing in about a year.
//! 3. A diurnal workload (Fig. 7) shows: non-overclocked rate well below 1,
//!    always-overclock rate well above 1, and an overclock-aware policy that
//!    spends only accumulated credits stays at or below expected ageing.

use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;
use soc_power::freq::VoltageCurve;
use soc_power::units::MegaHertz;

/// Voltage- and temperature-accelerated ageing-rate model.
///
/// ```
/// use soc_reliability::wear::WearModel;
/// use soc_power::freq::VoltageCurve;
///
/// let model = WearModel::reference(VoltageCurve::default());
/// let plan = model.curve().plan();
/// let base = model.ageing_rate(0.5, plan.turbo(), model.reference_temp_c());
/// let oc = model.ageing_rate(0.5, plan.max_overclock(), model.reference_temp_c());
/// assert!(oc > base); // overclocking accelerates wear
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WearModel {
    /// Idle (static) ageing rate.
    alpha: f64,
    /// Activity-dependent ageing coefficient.
    beta: f64,
    /// Voltage acceleration exponent (per volt above turbo voltage).
    k_voltage: f64,
    /// Temperature acceleration exponent (per °C above reference).
    k_temp: f64,
    /// Reference junction temperature in °C.
    t_ref_c: f64,
    curve: VoltageCurve,
}

impl WearModel {
    /// Build a model with explicit coefficients.
    ///
    /// # Panics
    /// Panics if any coefficient is negative or non-finite.
    pub fn new(
        alpha: f64,
        beta: f64,
        k_voltage: f64,
        k_temp: f64,
        t_ref_c: f64,
        curve: VoltageCurve,
    ) -> WearModel {
        for (name, v) in [
            ("alpha", alpha),
            ("beta", beta),
            ("k_voltage", k_voltage),
            ("k_temp", k_temp),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and non-negative"
            );
        }
        assert!(t_ref_c.is_finite(), "reference temperature must be finite");
        WearModel {
            alpha,
            beta,
            k_voltage,
            k_temp,
            t_ref_c,
            curve,
        }
    }

    /// The reference calibration satisfying the paper's anchors:
    /// `α = 0.05`, `β = 2.22`, voltage acceleration ≈ 4.5× at the maximum
    /// overclock voltage, wear doubling every ~17 °C.
    pub fn reference(curve: VoltageCurve) -> WearModel {
        let plan = curve.plan();
        let v_turbo = curve.voltage(plan.turbo()).get();
        let v_oc = curve.voltage(plan.max_overclock()).get();
        // Solve exp(k (v_oc - v_turbo)) = 4.5.
        let k_voltage = (4.5f64).ln() / (v_oc - v_turbo).max(1e-9);
        WearModel::new(0.05, 2.22, k_voltage, 0.04, 65.0, curve)
    }

    /// The voltage curve used to turn frequencies into voltages.
    pub fn curve(&self) -> &VoltageCurve {
        &self.curve
    }

    /// Reference junction temperature (°C) at which the temperature factor
    /// is 1.
    pub fn reference_temp_c(&self) -> f64 {
        self.t_ref_c
    }

    /// Idle (static) ageing rate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Activity-dependent ageing coefficient.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Voltage acceleration exponent (per volt above turbo voltage).
    pub fn k_voltage(&self) -> f64 {
        self.k_voltage
    }

    /// Temperature acceleration exponent (per °C above reference).
    pub fn k_temp(&self) -> f64 {
        self.k_temp
    }

    /// Instantaneous ageing rate at a core state (dimensionless; 1.0 = ages
    /// at the vendor-reference speed).
    ///
    /// # Panics
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn ageing_rate(&self, utilization: f64, frequency: MegaHertz, temp_c: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1], got {utilization}"
        );
        let v = self.curve.voltage(frequency).get();
        let v_turbo = self.curve.voltage(self.curve.plan().turbo()).get();
        let av = (self.k_voltage * (v - v_turbo).max(0.0)).exp();
        let at = (self.k_temp * (temp_c - self.t_ref_c)).exp();
        self.alpha + self.beta * utilization * utilization * av * at
    }

    /// Ageing accumulated over `dt` at a fixed state, in days of lifetime.
    pub fn ageing_over(
        &self,
        utilization: f64,
        frequency: MegaHertz,
        temp_c: f64,
        dt: SimDuration,
    ) -> f64 {
        self.ageing_rate(utilization, frequency, temp_c) * dt.as_days_f64()
    }

    /// Voltage-acceleration factor at `frequency` relative to turbo.
    pub fn voltage_acceleration(&self, frequency: MegaHertz) -> f64 {
        let v = self.curve.voltage(frequency).get();
        let v_turbo = self.curve.voltage(self.curve.plan().turbo()).get();
        (self.k_voltage * (v - v_turbo).max(0.0)).exp()
    }

    /// Largest overclocking time fraction a workload can sustain without
    /// exceeding reference ageing, given its utilization while overclocked
    /// and its baseline ageing rate. Returns a value in `[0, 1]`.
    ///
    /// This is the planning rule the "Overclock-aware" policy of Fig. 7 uses:
    /// spend exactly the credits the baseline accrues.
    pub fn affordable_overclock_fraction(
        &self,
        baseline_rate: f64,
        utilization_while_oc: f64,
        frequency: MegaHertz,
        temp_c: f64,
    ) -> f64 {
        let oc_rate = self.ageing_rate(utilization_while_oc, frequency, temp_c);
        let turbo_rate = self.ageing_rate(utilization_while_oc, self.curve.plan().turbo(), temp_c);
        let extra = oc_rate - turbo_rate;
        if extra <= 0.0 {
            return 1.0;
        }
        let credit_rate = 1.0 - baseline_rate;
        (credit_rate / extra).clamp(0.0, 1.0)
    }
}

impl Default for WearModel {
    fn default() -> Self {
        WearModel::reference(VoltageCurve::default())
    }
}

/// Tracks a component's actual vs. expected ageing over time.
///
/// "Under-utilization accumulates lifetime credits that can be consumed via
/// overclocking" (§III-Q2). The ledger's [`credit_days`](Self::credit_days)
/// is exactly that accumulated headroom.
///
/// ```
/// use soc_reliability::wear::AgeingLedger;
/// use simcore::time::SimDuration;
///
/// let mut ledger = AgeingLedger::new();
/// // A day at ageing rate 0.4 accrues 0.6 days of credit.
/// ledger.record(0.4, SimDuration::from_days(1));
/// assert!((ledger.credit_days() - 0.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AgeingLedger {
    actual_days: f64,
    elapsed_days: f64,
}

impl AgeingLedger {
    /// A fresh component: no ageing, no elapsed time.
    pub fn new() -> AgeingLedger {
        AgeingLedger::default()
    }

    /// Record `dt` spent at the given ageing `rate`.
    ///
    /// # Panics
    /// Panics if `rate` is negative or non-finite.
    pub fn record(&mut self, rate: f64, dt: SimDuration) {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "ageing rate must be finite and non-negative"
        );
        self.actual_days += rate * dt.as_days_f64();
        self.elapsed_days += dt.as_days_f64();
    }

    /// Actual accumulated ageing in days.
    pub fn actual_days(&self) -> f64 {
        self.actual_days
    }

    /// Expected (vendor-reference) ageing: one day per elapsed day.
    pub fn expected_days(&self) -> f64 {
        self.elapsed_days
    }

    /// Wall-clock days elapsed.
    pub fn elapsed_days(&self) -> f64 {
        self.elapsed_days
    }

    /// Accumulated credit: expected minus actual ageing (negative when the
    /// part has aged faster than reference).
    pub fn credit_days(&self) -> f64 {
        self.expected_days() - self.actual_days
    }

    /// Whether the component is within its lifetime goal.
    pub fn within_budget(&self) -> bool {
        self.credit_days() >= 0.0
    }

    /// Merge another ledger (e.g. per-core ledgers into a socket view).
    pub fn merge(&mut self, other: &AgeingLedger) {
        self.actual_days += other.actual_days;
        self.elapsed_days += other.elapsed_days;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use soc_power::freq::FrequencyPlan;

    fn model() -> WearModel {
        WearModel::default()
    }

    fn plan() -> FrequencyPlan {
        FrequencyPlan::default()
    }

    #[test]
    fn calibration_conservative_fleet_ages_half_speed() {
        // Anchor 1: ~45% utilization at turbo → rate ≈ 0.5
        // ("2.5 years over a 5-year period").
        let m = model();
        let rate = m.ageing_rate(0.45, plan().turbo(), m.reference_temp_c());
        assert!((rate - 0.5).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn calibration_naive_half_time_overclock_burns_lifetime() {
        // Anchor 2: overclocking half the time at worst-case utilization must
        // consume ≥5 years of lifetime in ≈1 year.
        let m = model();
        let oc_rate = m.ageing_rate(1.0, plan().max_overclock(), m.reference_temp_c());
        let fleet_rate = m.ageing_rate(0.45, plan().turbo(), m.reference_temp_c());
        let blended = 0.5 * oc_rate + 0.5 * fleet_rate;
        assert!(blended >= 4.5, "blended rate = {blended}");
    }

    #[test]
    fn calibration_overclock_aware_stays_within_expected() {
        // Anchor 3 (Fig. 7): with a diurnal workload (peaks ~0.65, valleys
        // ~0.2), spending only accrued credits keeps total ageing at or below
        // expected.
        let m = model();
        let t = m.reference_temp_c();
        // Baseline day: 8h at 0.65 util, 16h at 0.2, all turbo.
        let baseline_rate = (8.0 * m.ageing_rate(0.65, plan().turbo(), t)
            + 16.0 * m.ageing_rate(0.2, plan().turbo(), t))
            / 24.0;
        assert!(
            baseline_rate < 1.0,
            "baseline must accrue credit, rate = {baseline_rate}"
        );
        let frac = m.affordable_overclock_fraction(baseline_rate, 0.65, plan().max_overclock(), t);
        assert!(frac > 0.0 && frac < 1.0, "fraction = {frac}");
        // Overclocking for that fraction of the time must not exceed 1.0.
        let oc_extra =
            m.ageing_rate(0.65, plan().max_overclock(), t) - m.ageing_rate(0.65, plan().turbo(), t);
        let total = baseline_rate + frac * oc_extra;
        assert!(total <= 1.0 + 1e-9, "total = {total}");
    }

    #[test]
    fn always_overclock_exceeds_expected_ageing() {
        // Fig. 7: "Always overclock" ages the CPU faster than the reference.
        let m = model();
        let t = m.reference_temp_c();
        let rate = (8.0 * m.ageing_rate(0.65, plan().max_overclock(), t)
            + 16.0 * m.ageing_rate(0.2, plan().max_overclock(), t))
            / 24.0;
        assert!(rate > 1.0, "always-overclock rate = {rate}");
    }

    #[test]
    fn temperature_accelerates_wear() {
        let m = model();
        let cool = m.ageing_rate(0.5, plan().turbo(), 50.0);
        let hot = m.ageing_rate(0.5, plan().turbo(), 85.0);
        assert!(hot > cool);
        // Doubling period ≈ 17 °C ⇒ 35 °C ≈ 4x.
        assert!((hot / cool - 4.0).abs() < 0.5, "ratio = {}", hot / cool);
    }

    #[test]
    fn voltage_acceleration_at_max_oc_matches_reference() {
        let m = model();
        let a = m.voltage_acceleration(plan().max_overclock());
        assert!((a - 4.5).abs() < 0.05, "a = {a}");
        assert_eq!(m.voltage_acceleration(plan().turbo()), 1.0);
        assert_eq!(m.voltage_acceleration(plan().base()), 1.0); // no sub-turbo bonus
    }

    #[test]
    fn ledger_accrues_and_spends_credit() {
        let mut l = AgeingLedger::new();
        l.record(0.4, SimDuration::from_days(5));
        assert!((l.actual_days() - 2.0).abs() < 1e-9);
        assert!((l.credit_days() - 3.0).abs() < 1e-9);
        assert!(l.within_budget());
        l.record(4.0, SimDuration::from_days(1));
        assert!((l.actual_days() - 6.0).abs() < 1e-9);
        assert!(l.within_budget()); // 6 actual vs 6 expected
        l.record(2.0, SimDuration::from_days(1));
        assert!(!l.within_budget());
    }

    #[test]
    fn ledger_merge_sums() {
        let mut a = AgeingLedger::new();
        a.record(1.0, SimDuration::from_days(2));
        let mut b = AgeingLedger::new();
        b.record(0.5, SimDuration::from_days(4));
        a.merge(&b);
        assert!((a.actual_days() - 4.0).abs() < 1e-9);
        assert!((a.elapsed_days() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn affordable_fraction_zero_when_no_credit() {
        let m = model();
        let f =
            m.affordable_overclock_fraction(1.2, 0.8, plan().max_overclock(), m.reference_temp_c());
        assert_eq!(f, 0.0);
    }

    #[test]
    fn affordable_fraction_one_when_not_overclocking() {
        let m = model();
        let f = m.affordable_overclock_fraction(0.3, 0.8, plan().turbo(), m.reference_temp_c());
        assert_eq!(f, 1.0);
    }

    #[test]
    #[should_panic(expected = "utilization must be in")]
    fn rate_rejects_bad_utilization() {
        let m = model();
        let _ = m.ageing_rate(1.5, plan().turbo(), 65.0);
    }

    proptest! {
        #[test]
        fn rate_monotone_in_utilization(u1 in 0.0..1.0f64, u2 in 0.0..1.0f64) {
            let m = model();
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            prop_assert!(
                m.ageing_rate(lo, plan().turbo(), 65.0)
                    <= m.ageing_rate(hi, plan().turbo(), 65.0) + 1e-12
            );
        }

        #[test]
        fn rate_monotone_in_frequency(f in 2450u32..3950) {
            let m = model();
            let lo = m.ageing_rate(0.7, MegaHertz::new(f), 65.0);
            let hi = m.ageing_rate(0.7, MegaHertz::new(f + 50), 65.0);
            prop_assert!(lo <= hi + 1e-12);
        }

        #[test]
        fn ledger_credit_identity(
            segments in prop::collection::vec((0.0..5.0f64, 1u64..100), 1..20)
        ) {
            let mut l = AgeingLedger::new();
            for &(rate, hours) in &segments {
                l.record(rate, SimDuration::from_hours(hours));
            }
            prop_assert!((l.credit_days() - (l.expected_days() - l.actual_days())).abs() < 1e-9);
            prop_assert!(l.elapsed_days() > 0.0);
        }
    }
}

//! Epoch-based overclocking time budgets.
//!
//! "A max time to overclock a component is obtained through an offline
//! analysis with the vendors (e.g., 10% over a 5-year period). ... To get
//! uniform overclocking over a component's expected lifetime, SmartOClock
//! divides the overall budget into epochs. ... SmartOClock defines an epoch
//! to be a week and calculates per-weekday max overclocking time. ... For a
//! predictable overclocking experience, an sOA reserves overclocking budgets
//! for scheduled requests. Unused budgets can be used by unscheduled
//! (metrics-based) overclocking and also carried over to the next epoch."
//! (paper §IV-B)

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use std::fmt;

/// Errors from budget operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetError {
    /// The remaining unreserved budget in this epoch is insufficient.
    InsufficientBudget {
        /// What was asked for (microseconds).
        requested_us: u64,
        /// What remains (microseconds).
        available_us: u64,
    },
    /// Attempted to release more reservation than is held.
    ReleaseExceedsReservation,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::InsufficientBudget {
                requested_us,
                available_us,
            } => write!(
                f,
                "insufficient overclocking budget: requested {}us, available {}us",
                requested_us, available_us
            ),
            BudgetError::ReleaseExceedsReservation => {
                write!(f, "release exceeds held reservation")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// A weekly overclocking time budget with reservation and carry-over.
///
/// The budget is expressed as a *fraction of wall-clock time* (e.g. 10 %)
/// applied to a weekly epoch. Consumption, reservation, and carry-over all
/// happen at epoch granularity; [`advance_to`](Self::advance_to) rolls the
/// epoch forward as simulated time passes.
///
/// ```
/// use soc_reliability::budget::OverclockBudget;
/// use simcore::time::{SimDuration, SimTime};
///
/// // 10% of a week ≈ 16.8 hours of overclocking per epoch.
/// let mut b = OverclockBudget::new(0.10, SimDuration::WEEK);
/// assert_eq!(b.remaining(), SimDuration::WEEK.mul_f64(0.10));
/// b.consume(SimTime::ZERO, SimDuration::from_hours(2)).unwrap();
/// assert_eq!(b.remaining(), SimDuration::from_hours(14) + SimDuration::from_minutes(48));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverclockBudget {
    /// Fraction of wall-clock time that may be overclocked.
    fraction: f64,
    /// Epoch length (a week in the paper).
    epoch: SimDuration,
    /// Index of the current epoch.
    current_epoch: u64,
    /// Time consumed in the current epoch.
    consumed: SimDuration,
    /// Time reserved (but not yet consumed) for scheduled requests.
    reserved: SimDuration,
    /// Unused budget carried over from prior epochs.
    carry_over: SimDuration,
    /// Cap on carry-over, as a multiple of the per-epoch allowance
    /// (prevents unbounded hoarding).
    carry_over_cap_epochs: f64,
    /// Lifetime total consumed (for reporting).
    total_consumed: SimDuration,
}

impl OverclockBudget {
    /// Create a budget.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]` or `epoch` is zero.
    pub fn new(fraction: f64, epoch: SimDuration) -> OverclockBudget {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        assert!(!epoch.is_zero(), "epoch must be non-zero");
        OverclockBudget {
            fraction,
            epoch,
            current_epoch: 0,
            consumed: SimDuration::ZERO,
            reserved: SimDuration::ZERO,
            carry_over: SimDuration::ZERO,
            carry_over_cap_epochs: 1.0,
            total_consumed: SimDuration::ZERO,
        }
    }

    /// The paper's reference configuration: 10 % of time, weekly epochs.
    pub fn reference() -> OverclockBudget {
        OverclockBudget::new(0.10, SimDuration::WEEK)
    }

    /// Budgeted fraction of time.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Epoch length.
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// Scale the budget fraction (used by the overclocking-constrained
    /// experiments that restrict the budget to 75/50/25 %, §V-A).
    ///
    /// # Panics
    /// Panics if `scale` is negative or the result exceeds 1.
    pub fn scale_fraction(&mut self, scale: f64) {
        assert!(scale >= 0.0, "scale must be non-negative");
        let f = self.fraction * scale;
        assert!(f <= 1.0, "scaled fraction exceeds 1");
        self.fraction = f;
    }

    /// Per-epoch allowance (excluding carry-over).
    pub fn epoch_allowance(&self) -> SimDuration {
        self.epoch.mul_f64(self.fraction)
    }

    /// Budget still consumable in the current epoch (allowance + carry-over −
    /// consumed − reserved).
    pub fn remaining(&self) -> SimDuration {
        (self.epoch_allowance() + self.carry_over)
            .saturating_sub(self.consumed)
            .saturating_sub(self.reserved)
    }

    /// Budget remaining including held reservations (what a scheduled
    /// workload holding the reservation can still use).
    pub fn remaining_with_reservations(&self) -> SimDuration {
        (self.epoch_allowance() + self.carry_over).saturating_sub(self.consumed)
    }

    /// Currently reserved time.
    pub fn reserved(&self) -> SimDuration {
        self.reserved
    }

    /// Time consumed in the current epoch.
    pub fn consumed_this_epoch(&self) -> SimDuration {
        self.consumed
    }

    /// Lifetime total consumed.
    pub fn total_consumed(&self) -> SimDuration {
        self.total_consumed
    }

    /// Roll the epoch forward to the one containing `now`, applying
    /// carry-over of unused budget (capped). Reservations do not survive
    /// epoch boundaries.
    pub fn advance_to(&mut self, now: SimTime) {
        let epoch_idx = now.as_micros() / self.epoch.as_micros();
        while self.current_epoch < epoch_idx {
            let unused = (self.epoch_allowance() + self.carry_over).saturating_sub(self.consumed);
            let cap = self.epoch_allowance().mul_f64(self.carry_over_cap_epochs);
            self.carry_over = unused.min(cap);
            self.consumed = SimDuration::ZERO;
            self.reserved = SimDuration::ZERO;
            self.current_epoch += 1;
        }
    }

    /// Consume overclocking time at `now`.
    ///
    /// # Errors
    /// Returns [`BudgetError::InsufficientBudget`] when the unreserved
    /// remainder cannot cover `dt`.
    pub fn consume(&mut self, now: SimTime, dt: SimDuration) -> Result<(), BudgetError> {
        self.advance_to(now);
        if dt > self.remaining() {
            return Err(BudgetError::InsufficientBudget {
                requested_us: dt.as_micros(),
                available_us: self.remaining().as_micros(),
            });
        }
        self.consumed += dt;
        self.total_consumed += dt;
        Ok(())
    }

    /// Consume from a held reservation (scheduled overclocking).
    ///
    /// # Errors
    /// Returns [`BudgetError::ReleaseExceedsReservation`] if `dt` exceeds the
    /// held reservation.
    pub fn consume_reserved(&mut self, now: SimTime, dt: SimDuration) -> Result<(), BudgetError> {
        self.advance_to(now);
        if dt > self.reserved {
            return Err(BudgetError::ReleaseExceedsReservation);
        }
        self.reserved -= dt;
        self.consumed += dt;
        self.total_consumed += dt;
        Ok(())
    }

    /// Reserve budget for a scheduled request (admission control, §IV-B).
    ///
    /// # Errors
    /// Returns [`BudgetError::InsufficientBudget`] when the unreserved
    /// remainder cannot cover `dt`.
    pub fn reserve(&mut self, now: SimTime, dt: SimDuration) -> Result<(), BudgetError> {
        self.advance_to(now);
        if dt > self.remaining() {
            return Err(BudgetError::InsufficientBudget {
                requested_us: dt.as_micros(),
                available_us: self.remaining().as_micros(),
            });
        }
        self.reserved += dt;
        Ok(())
    }

    /// Release (part of) a reservation without consuming it.
    ///
    /// # Errors
    /// Returns [`BudgetError::ReleaseExceedsReservation`] if `dt` exceeds the
    /// held reservation.
    pub fn release(&mut self, dt: SimDuration) -> Result<(), BudgetError> {
        if dt > self.reserved {
            return Err(BudgetError::ReleaseExceedsReservation);
        }
        self.reserved -= dt;
        Ok(())
    }

    /// Predicted time until the remaining budget is exhausted if overclocking
    /// runs continuously from `now`. Returns `None` when nothing remains.
    pub fn time_to_exhaustion(&self, now: SimTime) -> Option<SimDuration> {
        let mut probe = self.clone();
        probe.advance_to(now);
        let rem = probe.remaining();
        if rem.is_zero() {
            None
        } else {
            Some(rem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn week_budget() -> OverclockBudget {
        OverclockBudget::new(0.10, SimDuration::WEEK)
    }

    #[test]
    fn allowance_is_fraction_of_epoch() {
        let b = week_budget();
        assert_eq!(b.epoch_allowance(), SimDuration::WEEK.mul_f64(0.10));
        // 10% of a week = 16.8 hours.
        assert!((b.epoch_allowance().as_hours_f64() - 16.8).abs() < 1e-9);
    }

    #[test]
    fn consume_reduces_remaining() {
        let mut b = week_budget();
        b.consume(SimTime::ZERO, SimDuration::from_hours(10))
            .unwrap();
        assert!((b.remaining().as_hours_f64() - 6.8).abs() < 1e-9);
        assert_eq!(b.total_consumed(), SimDuration::from_hours(10));
    }

    #[test]
    fn overconsumption_rejected() {
        let mut b = week_budget();
        let err = b
            .consume(SimTime::ZERO, SimDuration::from_hours(20))
            .unwrap_err();
        assert!(matches!(err, BudgetError::InsufficientBudget { .. }));
        assert_eq!(b.total_consumed(), SimDuration::ZERO);
    }

    #[test]
    fn carry_over_moves_unused_budget() {
        let mut b = week_budget();
        b.consume(SimTime::ZERO, SimDuration::from_hours(10))
            .unwrap();
        // Next week: 16.8 allowance + 6.8 carried = 23.6 h.
        b.advance_to(SimTime::ZERO + SimDuration::WEEK);
        assert!((b.remaining().as_hours_f64() - 23.6).abs() < 1e-9);
    }

    #[test]
    fn carry_over_is_capped() {
        let mut b = week_budget();
        // Consume nothing for three weeks; carry-over caps at one allowance.
        b.advance_to(SimTime::ZERO + SimDuration::WEEK * 3);
        assert!((b.remaining().as_hours_f64() - 2.0 * 16.8).abs() < 1e-9);
    }

    #[test]
    fn reservations_block_unscheduled_consumption() {
        let mut b = week_budget();
        b.reserve(SimTime::ZERO, SimDuration::from_hours(10))
            .unwrap();
        assert!((b.remaining().as_hours_f64() - 6.8).abs() < 1e-9);
        let err = b
            .consume(SimTime::ZERO, SimDuration::from_hours(7))
            .unwrap_err();
        assert!(matches!(err, BudgetError::InsufficientBudget { .. }));
        // But the reservation holder can consume it.
        b.consume_reserved(SimTime::ZERO, SimDuration::from_hours(10))
            .unwrap();
        assert_eq!(b.reserved(), SimDuration::ZERO);
    }

    #[test]
    fn release_returns_budget() {
        let mut b = week_budget();
        b.reserve(SimTime::ZERO, SimDuration::from_hours(10))
            .unwrap();
        b.release(SimDuration::from_hours(4)).unwrap();
        assert_eq!(b.reserved(), SimDuration::from_hours(6));
        assert!((b.remaining().as_hours_f64() - 10.8).abs() < 1e-9);
        assert!(matches!(
            b.release(SimDuration::from_hours(100)),
            Err(BudgetError::ReleaseExceedsReservation)
        ));
    }

    #[test]
    fn reservations_cleared_at_epoch_boundary() {
        let mut b = week_budget();
        b.reserve(SimTime::ZERO, SimDuration::from_hours(10))
            .unwrap();
        b.advance_to(SimTime::ZERO + SimDuration::WEEK);
        assert_eq!(b.reserved(), SimDuration::ZERO);
    }

    #[test]
    fn time_to_exhaustion_reports_remaining() {
        let mut b = week_budget();
        b.consume(SimTime::ZERO, SimDuration::from_hours(16))
            .unwrap();
        let t = b.time_to_exhaustion(SimTime::ZERO).unwrap();
        assert!((t.as_hours_f64() - 0.8).abs() < 1e-9);
        b.consume(SimTime::ZERO, t).unwrap();
        assert_eq!(b.time_to_exhaustion(SimTime::ZERO), None);
    }

    #[test]
    fn scale_fraction_for_constrained_experiments() {
        let mut b = week_budget();
        b.scale_fraction(0.5);
        assert!((b.epoch_allowance().as_hours_f64() - 8.4).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn never_consumes_more_than_allowance_plus_carryover(
            ops in prop::collection::vec((0u64..200, 0u64..30), 1..50)
        ) {
            let mut b = week_budget();
            let mut now = SimTime::ZERO;
            for &(advance_hours, consume_hours) in &ops {
                now += SimDuration::from_hours(advance_hours);
                let _ = b.consume(now, SimDuration::from_hours(consume_hours));
                // Invariant: per-epoch consumption never exceeds allowance
                // plus the carry-over cap (2 allowances total).
                prop_assert!(
                    b.consumed_this_epoch() <= b.epoch_allowance().mul_f64(2.0)
                );
            }
        }

        #[test]
        fn remaining_never_negative(
            ops in prop::collection::vec((0u64..400, 0u64..20, 0u64..20), 1..40)
        ) {
            let mut b = week_budget();
            let mut now = SimTime::ZERO;
            for &(advance_hours, consume_hours, reserve_hours) in &ops {
                now += SimDuration::from_hours(advance_hours);
                let _ = b.consume(now, SimDuration::from_hours(consume_hours));
                let _ = b.reserve(now, SimDuration::from_hours(reserve_hours));
                prop_assert!(b.remaining() >= SimDuration::ZERO);
            }
        }
    }
}

//! Online wear-out counters — the §VI upgrade path.
//!
//! "Overclocking lifetime budgets can be improved with *wear-out counters*
//! that indicate how a component's (e.g., CPU core) lifetime is impacted by
//! utilization (voltage) and operating temperatures. SmartOClock can use
//! wearout counters to upgrade from a conservative offline model to a
//! *per-part* online calculation for safety." (paper §VI)
//!
//! The offline time budget (`crate::budget`) assumes worst-case utilization
//! while overclocked; [`WearoutCounter`] instead integrates the wear model
//! over the *measured* operating state, so a lightly-utilized part can
//! overclock far longer than the conservative time budget would allow —
//! exactly the inefficiency §VI calls out in offline certification.

use crate::wear::{AgeingLedger, WearModel};
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;
use soc_power::units::MegaHertz;

/// A per-part online wear counter.
///
/// ```
/// use soc_reliability::counters::WearoutCounter;
/// use soc_reliability::wear::WearModel;
/// use simcore::time::SimDuration;
///
/// let model = WearModel::default();
/// let plan = model.curve().plan();
/// let mut counter = WearoutCounter::new(model.clone());
/// // A day of light load at turbo accrues credit...
/// counter.record(0.2, plan.turbo(), 55.0, SimDuration::from_days(1));
/// assert!(counter.credit_days() > 0.0);
/// // ...which can then fund overclocking.
/// assert!(counter.can_overclock(0.5, plan.max_overclock(), 65.0, SimDuration::from_hours(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WearoutCounter {
    model: WearModel,
    ledger: AgeingLedger,
}

impl WearoutCounter {
    /// A fresh counter for a part described by `model`.
    pub fn new(model: WearModel) -> WearoutCounter {
        WearoutCounter {
            model,
            ledger: AgeingLedger::new(),
        }
    }

    /// The wear model used for integration.
    pub fn model(&self) -> &WearModel {
        &self.model
    }

    /// Record `dt` of operation at the measured state.
    ///
    /// # Panics
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn record(&mut self, utilization: f64, frequency: MegaHertz, temp_c: f64, dt: SimDuration) {
        let rate = self.model.ageing_rate(utilization, frequency, temp_c);
        self.ledger.record(rate, dt);
    }

    /// Accumulated lifetime credit in days (negative when the part has aged
    /// past the vendor reference).
    pub fn credit_days(&self) -> f64 {
        self.ledger.credit_days()
    }

    /// Actual accumulated ageing (days).
    pub fn actual_days(&self) -> f64 {
        self.ledger.actual_days()
    }

    /// Whether the part is still within its lifetime goal.
    pub fn within_budget(&self) -> bool {
        self.ledger.within_budget()
    }

    /// Admission check: would `dt` of overclocking at the given measured
    /// state keep the part within its lifetime goal?
    ///
    /// Unlike the offline time budget — which charges worst-case wear per
    /// overclocked second regardless of load — this charges the *actual*
    /// predicted wear for the observed utilization and temperature.
    pub fn can_overclock(
        &self,
        utilization: f64,
        frequency: MegaHertz,
        temp_c: f64,
        dt: SimDuration,
    ) -> bool {
        let rate = self.model.ageing_rate(utilization, frequency, temp_c);
        let spend = rate * dt.as_days_f64();
        let earn = dt.as_days_f64(); // expected ageing accrues alongside
        self.credit_days() + earn - spend >= 0.0
    }

    /// Maximum continuous overclocking time at the given state before the
    /// credit runs out. Returns `None` when the state does not consume
    /// credit (rate ≤ 1).
    pub fn time_to_exhaustion(
        &self,
        utilization: f64,
        frequency: MegaHertz,
        temp_c: f64,
    ) -> Option<SimDuration> {
        let rate = self.model.ageing_rate(utilization, frequency, temp_c);
        if rate <= 1.0 {
            return None;
        }
        let days = (self.credit_days() / (rate - 1.0)).max(0.0);
        Some(SimDuration::from_secs_f64(days * 86_400.0))
    }
}

/// Compare the overclocking time granted over a utilization profile by the
/// offline time budget vs. the online wear counter. Returns
/// `(offline_hours, online_hours)` for the given per-epoch fraction.
///
/// The paper's §VI argument: offline certification "does not leverage the
/// impact of utilization variability … on ageing at cloud scale" — the
/// online counter grants strictly more overclocking at low utilization.
pub fn offline_vs_online_grant(
    model: &WearModel,
    utilization_profile: &[f64],
    step: SimDuration,
    offline_fraction: f64,
    temp_c: f64,
) -> (f64, f64) {
    let plan = model.curve().plan();
    let oc = plan.max_overclock();
    let total: SimDuration = step * utilization_profile.len() as u64;
    // Offline: a flat fraction of wall-clock time, independent of load.
    let offline_hours = total.as_hours_f64() * offline_fraction;
    // Online: overclock whenever the counter stays within budget.
    let mut counter = WearoutCounter::new(model.clone());
    let mut online_hours = 0.0;
    for &u in utilization_profile {
        let u = u.clamp(0.0, 1.0);
        if counter.can_overclock(u, oc, temp_c, step) {
            counter.record(u, oc, temp_c, step);
            online_hours += step.as_hours_f64();
        } else {
            counter.record(u, plan.turbo(), temp_c, step);
        }
    }
    (offline_hours, online_hours)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_power::freq::FrequencyPlan;

    fn model() -> WearModel {
        WearModel::default()
    }

    fn plan() -> FrequencyPlan {
        FrequencyPlan::default()
    }

    #[test]
    fn light_load_accrues_credit_heavy_load_spends_it() {
        let m = model();
        let mut c = WearoutCounter::new(m.clone());
        c.record(0.2, plan().turbo(), 55.0, SimDuration::from_days(2));
        let credit = c.credit_days();
        assert!(credit > 1.0, "light load should bank credit, got {credit}");
        c.record(0.9, plan().max_overclock(), 75.0, SimDuration::from_days(1));
        assert!(c.credit_days() < credit, "overclocking must spend credit");
    }

    #[test]
    fn admission_respects_credit() {
        let m = model();
        let mut c = WearoutCounter::new(m.clone());
        // No history: no credit beyond what the window itself accrues.
        assert!(!c.can_overclock(1.0, plan().max_overclock(), 85.0, SimDuration::from_days(1)));
        // Bank a quiet week, then a moderate request fits.
        c.record(0.1, plan().turbo(), 50.0, SimDuration::from_days(7));
        assert!(c.can_overclock(0.7, plan().max_overclock(), 65.0, SimDuration::from_days(1)));
    }

    #[test]
    fn time_to_exhaustion_scales_with_credit() {
        let m = model();
        let mut c = WearoutCounter::new(m.clone());
        c.record(0.2, plan().turbo(), 55.0, SimDuration::from_days(1));
        let t1 = c
            .time_to_exhaustion(0.9, plan().max_overclock(), 75.0)
            .expect("consuming state");
        c.record(0.2, plan().turbo(), 55.0, SimDuration::from_days(1));
        let t2 = c
            .time_to_exhaustion(0.9, plan().max_overclock(), 75.0)
            .expect("consuming state");
        assert!(t2 > t1, "more credit must buy more time");
        // Non-consuming state has no exhaustion.
        assert!(c.time_to_exhaustion(0.1, plan().turbo(), 50.0).is_none());
    }

    #[test]
    fn online_grants_more_than_offline_at_low_utilization() {
        // §VI's argument: a part that idles most of the day can overclock far
        // beyond the flat 10% offline certificate.
        let m = model();
        let profile: Vec<f64> = (0..288)
            .map(|i| if i % 12 == 0 { 0.6 } else { 0.15 })
            .collect();
        let (offline, online) =
            offline_vs_online_grant(&m, &profile, SimDuration::from_minutes(5), 0.10, 60.0);
        assert!(
            online > 2.0 * offline,
            "online ({online:.1}h) should dwarf offline ({offline:.1}h) at low utilization"
        );
    }

    #[test]
    fn online_stays_within_lifetime_goal() {
        let m = model();
        let profile: Vec<f64> = (0..2016)
            .map(|i| 0.3 + 0.3 * ((i / 288) % 2) as f64)
            .collect();
        let mut c = WearoutCounter::new(m.clone());
        let oc = plan().max_overclock();
        for &u in &profile {
            if c.can_overclock(u, oc, 65.0, SimDuration::from_minutes(5)) {
                c.record(u, oc, 65.0, SimDuration::from_minutes(5));
            } else {
                c.record(u, plan().turbo(), 65.0, SimDuration::from_minutes(5));
            }
        }
        assert!(
            c.within_budget(),
            "the online policy must never exceed reference ageing"
        );
    }
}

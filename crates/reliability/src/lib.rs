//! # soc-reliability — component lifetime substrate
//!
//! Overclocking "impacts component lifetime by increasing wearout and, thus,
//! cannot be used indefinitely" (paper §I). This crate models that risk:
//!
//! * [`wear`] — the ageing-rate model (voltage- and temperature-accelerated
//!   gate-oxide wear) standing in for the paper's TSMC 7 nm composite
//!   processor model, calibrated to the paper's anchors (§III-Q2):
//!   conservative fleet usage ages 2.5 years over a 5-year period; naive
//!   always-overclocking at full utilization burns 5 years of lifetime in
//!   under a year; an overclock-aware policy can consume the accumulated
//!   credits without exceeding expected ageing. Includes the
//!   [`wear::AgeingLedger`] that tracks actual-vs-expected
//!   ageing and the lifetime credits under-utilization accrues.
//! * [`binning`] — seeded per-part silicon heterogeneity (§III-Q2, §VI):
//!   deterministic frequency-bin draws, per-part maximum stable overclock,
//!   wear-rate multipliers feeding [`wear`], and the scalar risk score the
//!   risk-aware admission rule compares against the configured budget.
//! * [`budget`] — the epoch-based overclocking time budget (§IV-B): a weekly
//!   epoch split into per-weekday allowances, reservations for scheduled
//!   requests, and carry-over of unused budget.
//! * [`counters`] — online per-part wear-out counters (§VI's upgrade from
//!   conservative offline certification to measured-state accounting).
//! * [`thermal`] — a first-order RC thermal model with air/liquid/immersion
//!   cooling parameters, quantifying §III-Q2's claim that advanced cooling
//!   extends the sustainable overclocking duration.
//! * [`tracker`] — per-core time-in-state tracking, the software stand-in for
//!   vendor telemetry (Intel PMT / AMD HSMP, §IV-B), including the
//!   find-another-core exploration the sOA performs when a core's budget is
//!   exhausted (§IV-D).

#![forbid(unsafe_code)]

pub mod binning;
pub mod budget;
pub mod counters;
pub mod thermal;
pub mod tracker;
pub mod wear;

pub use binning::{BinningConfig, SiliconPart};
pub use budget::{BudgetError, OverclockBudget};
pub use counters::WearoutCounter;
pub use thermal::{Cooling, ThermalModel};
pub use tracker::TimeInState;
pub use wear::{AgeingLedger, WearModel};

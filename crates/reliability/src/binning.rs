//! Per-part silicon heterogeneity and frequency binning (§III-Q2, §VI).
//!
//! Production silicon is not uniform: manufacturing test data sorts parts
//! into *frequency bins* (the highest stable overclock differs part to
//! part) and measures per-part voltage/temperature sensitivity. The paper
//! argues SmartOClock can use these per-part *risk scores* to overclock
//! aggressively on good silicon while holding back on marginal parts. This
//! module models that: a seeded, **stateless** per-part draw that maps a
//! `(seed, part_id)` pair to a [`SiliconPart`] — a frequency bin, a maximum
//! stable overclock, wear-rate multipliers that scale the [`WearModel`]'s
//! voltage/temperature acceleration, and a scalar risk score in `[0, 1)`.
//!
//! ## Determinism contract
//!
//! Like `simcore::faults`, draws are pure functions of
//! `(config.seed, part_id)`: a part's silicon is the same no matter which
//! shard, thread, or query order asks. This is what keeps the columnar and
//! reference engines byte-identical under heterogeneity, and what lets an
//! sOA restart rediscover the same part identity (the bin is a physical
//! property of the chip, not control-plane state).
//!
//! ## Admission rule
//!
//! A request at frequency `f` is admitted iff
//! `risk × (f − turbo) / (max_overclock − turbo) ≤ risk_budget`, after
//! clamping `f` to the part's binned maximum. [`SiliconPart::admit`] walks
//! the frequency ladder downward until the rule holds (*down-binning*) and
//! returns `None` when no overclocked level fits (*bin-denial*).

use crate::wear::WearModel;
use serde::{Deserialize, Serialize};
use simcore::rng::Pcg32;
use soc_power::freq::FrequencyPlan;
use soc_power::units::MegaHertz;

/// Dedicated `Pcg32` stream for silicon draws, disjoint from the fault
/// stream (`0xFA17`) and the trace-generator streams.
const BINNING_STREAM: u64 = 0xB1A5;

/// SplitMix64 finalizer (same constants as `simcore::faults`): decorrelates
/// the user seed from part ids so adjacent parts draw independent silicon.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded per-part silicon distribution. The degenerate
/// [`uniform`](Self::uniform) configuration (one bin, no wear spread) is
/// byte-transparent: every part draws the ideal silicon and no binning
/// telemetry, counters, or wear accounting is produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinningConfig {
    /// Number of frequency bins parts are sorted into (1 = uniform fleet).
    #[serde(default = "default_bins")]
    pub bins: u32,
    /// Admission risk budget in `[0, 1]`: a part may run overclocked only
    /// while `risk × oc_fraction ≤ risk_budget`. `1.0` admits everything
    /// the part's bin allows; `0.0` denies marginal parts outright.
    #[serde(default = "default_risk_budget")]
    pub risk_budget: f64,
    /// Half-width of the per-part wear-multiplier spread: voltage and
    /// temperature acceleration multipliers draw uniformly from
    /// `[1 − spread, 1 + spread]`. `0.0` keeps the uniform wear model.
    #[serde(default)]
    pub wear_spread: f64,
    /// Seed of the silicon lottery (manufacturing variation).
    #[serde(default)]
    pub seed: u64,
}

fn default_bins() -> u32 {
    1
}

fn default_risk_budget() -> f64 {
    1.0
}

impl BinningConfig {
    /// The degenerate single-bin configuration: every part is ideal.
    pub fn uniform() -> BinningConfig {
        BinningConfig {
            bins: default_bins(),
            risk_budget: default_risk_budget(),
            wear_spread: 0.0,
            seed: 0,
        }
    }

    /// Whether this configuration is byte-transparent (no heterogeneity):
    /// one bin and no wear spread. The risk budget is irrelevant then —
    /// a single-bin part has risk exactly `0`, which every budget admits.
    pub fn is_uniform(&self) -> bool {
        self.bins <= 1 && self.wear_spread == 0.0
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics if any field is out of range.
    pub fn validate(&self) {
        assert!(
            (1..=256).contains(&self.bins),
            "bins must be in [1, 256], got {}",
            self.bins
        );
        assert!(
            self.risk_budget.is_finite() && (0.0..=1.0).contains(&self.risk_budget),
            "risk_budget must be in [0, 1], got {}",
            self.risk_budget
        );
        assert!(
            self.wear_spread.is_finite() && (0.0..1.0).contains(&self.wear_spread),
            "wear_spread must be in [0, 1), got {}",
            self.wear_spread
        );
    }

    /// Draw the silicon of `part_id` under `plan`. Stateless: the result
    /// depends only on `(self, plan, part_id)`, never on query order.
    pub fn part(&self, plan: &FrequencyPlan, part_id: u64) -> SiliconPart {
        if self.is_uniform() {
            return SiliconPart::uniform(plan);
        }
        let mut rng = Pcg32::new(mix64(self.seed ^ mix64(part_id)), BINNING_STREAM);
        let quality = rng.next_f64();
        let u_voltage = rng.next_f64();
        let u_temp = rng.next_f64();
        // Bin index: 0 is the best silicon (full overclock range), higher
        // bins certify progressively lower maximum stable frequencies.
        let bins = self.bins.max(1);
        let bin = ((quality * f64::from(bins)) as u32).min(bins - 1);
        // The binned maximum steps down one frequency level per bin, but
        // never below the lowest overclocked level: even the worst bin is
        // still an overclockable part (admission may yet deny it on risk).
        let floor = (plan.turbo() + plan.step()).min(plan.max_overclock());
        let mut max_oc = plan.max_overclock();
        for _ in 0..bin {
            max_oc = max_oc.saturating_sub(plan.step()).max(floor);
        }
        // Risk grows with the part's (mis)fortune in the lottery and with
        // binning aggressiveness: more bins resolve more marginal silicon.
        // One bin ⇒ risk exactly 0 (the uniform fleet is risk-free by
        // definition — there is no test data to distinguish parts).
        let risk = quality * (1.0 - 1.0 / f64::from(bins));
        SiliconPart {
            bin,
            max_oc,
            voltage_wear_mult: 1.0 + self.wear_spread * (2.0 * u_voltage - 1.0),
            temp_wear_mult: 1.0 + self.wear_spread * (2.0 * u_temp - 1.0),
            risk,
        }
    }
}

impl Default for BinningConfig {
    fn default() -> Self {
        BinningConfig::uniform()
    }
}

/// One part's manufacturing-test identity: its frequency bin, certified
/// maximum overclock, wear-acceleration multipliers, and risk score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiliconPart {
    /// Frequency bin (0 = best silicon).
    pub bin: u32,
    /// Highest stable overclock frequency for this part.
    pub max_oc: MegaHertz,
    /// Multiplier on the wear model's voltage-acceleration exponent.
    pub voltage_wear_mult: f64,
    /// Multiplier on the wear model's temperature-acceleration exponent.
    pub temp_wear_mult: f64,
    /// Scalar overclocking risk score in `[0, 1)` (0 = risk-free).
    pub risk: f64,
}

impl SiliconPart {
    /// The ideal part: best bin, full overclock range, reference wear.
    pub fn uniform(plan: &FrequencyPlan) -> SiliconPart {
        SiliconPart {
            bin: 0,
            max_oc: plan.max_overclock(),
            voltage_wear_mult: 1.0,
            temp_wear_mult: 1.0,
            risk: 0.0,
        }
    }

    /// Risk-aware admission: the highest frequency at or below `requested`
    /// (clamped to this part's binned maximum) whose normalized overclock
    /// fraction keeps `risk × fraction ≤ risk_budget`. Walks the frequency
    /// ladder downward (*down-binning*); `None` means no overclocked level
    /// fits the budget (*bin-denial*).
    pub fn admit(
        &self,
        plan: &FrequencyPlan,
        risk_budget: f64,
        requested: MegaHertz,
    ) -> Option<MegaHertz> {
        let turbo = plan.turbo();
        let span = plan.max_overclock().saturating_sub(turbo);
        if span.get() == 0 || plan.step().get() == 0 {
            return None;
        }
        let mut f = requested.min(self.max_oc);
        while f > turbo {
            let fraction = f.saturating_sub(turbo).ratio(span);
            if self.risk * fraction <= risk_budget {
                return Some(f);
            }
            f = f.saturating_sub(plan.step());
        }
        None
    }
}

/// The part-scaled wear model: the part's multipliers scale the base
/// model's voltage/temperature acceleration exponents, so marginal silicon
/// ages faster at the same operating point.
pub fn part_wear_model(base: &WearModel, part: &SiliconPart) -> WearModel {
    WearModel::new(
        base.alpha(),
        base.beta(),
        base.k_voltage() * part.voltage_wear_mult.max(0.0),
        base.k_temp() * part.temp_wear_mult.max(0.0),
        base.reference_temp_c(),
        *base.curve(),
    )
}

/// Hoisted per-part ageing-rate coefficients at a fixed overclock operating
/// point: `rate(u) = alpha + beta · u² · accel`, where `accel` folds in the
/// part-scaled voltage acceleration at the admitted frequency and the
/// temperature acceleration at `temp_c`. Lets the hot simulation loops
/// charge wear per step without re-deriving voltages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearRate {
    alpha: f64,
    beta: f64,
    accel: f64,
}

impl WearRate {
    /// Hoist the rate coefficients for `part` running overclocked at
    /// `frequency` with junction temperature `temp_c`.
    pub fn hoist(
        base: &WearModel,
        part: &SiliconPart,
        frequency: MegaHertz,
        temp_c: f64,
    ) -> WearRate {
        let model = part_wear_model(base, part);
        let accel = model.voltage_acceleration(frequency)
            * (model.k_temp() * (temp_c - model.reference_temp_c())).exp();
        WearRate {
            alpha: base.alpha(),
            beta: base.beta(),
            accel,
        }
    }

    /// Instantaneous ageing rate at `utilization` (clamped to `[0, 1]`).
    pub fn at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.alpha + self.beta * u * u * self.accel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FrequencyPlan {
        FrequencyPlan::default()
    }

    #[test]
    fn uniform_config_draws_ideal_parts() {
        let cfg = BinningConfig::uniform();
        assert!(cfg.is_uniform());
        for part_id in [0u64, 1, 7, u64::MAX] {
            let p = cfg.part(&plan(), part_id);
            assert_eq!(p, SiliconPart::uniform(&plan()));
        }
    }

    #[test]
    fn default_is_uniform() {
        assert_eq!(BinningConfig::default(), BinningConfig::uniform());
        BinningConfig::uniform().validate();
    }

    #[test]
    fn draws_are_stateless_and_seeded() {
        let cfg = BinningConfig {
            bins: 8,
            risk_budget: 0.5,
            wear_spread: 0.3,
            seed: 42,
        };
        cfg.validate();
        let a = cfg.part(&plan(), 17);
        let b = cfg.part(&plan(), 17);
        assert_eq!(a, b, "same (seed, part_id) must draw the same silicon");
        let other_seed = BinningConfig { seed: 43, ..cfg };
        let parts_differ = (0..32).any(|id| cfg.part(&plan(), id) != other_seed.part(&plan(), id));
        assert!(parts_differ, "different seeds must change the lottery");
    }

    #[test]
    fn bins_cover_the_frequency_ladder() {
        let cfg = BinningConfig {
            bins: 8,
            risk_budget: 1.0,
            wear_spread: 0.0,
            seed: 7,
        };
        let p = plan();
        let floor = p.turbo() + p.step();
        for id in 0..256u64 {
            let part = cfg.part(&p, id);
            assert!(part.bin < 8);
            assert!(part.max_oc <= p.max_overclock());
            assert!(
                part.max_oc >= floor,
                "even the worst bin stays overclockable"
            );
            assert!((0.0..1.0).contains(&part.risk));
        }
    }

    #[test]
    fn admit_clamps_to_bin_and_down_bins_on_risk() {
        let p = plan();
        let part = SiliconPart {
            bin: 2,
            max_oc: p.max_overclock().saturating_sub(p.step()),
            voltage_wear_mult: 1.0,
            temp_wear_mult: 1.0,
            risk: 0.8,
        };
        // Ample budget: admitted at the bin ceiling, not the request.
        assert_eq!(part.admit(&p, 1.0, p.max_overclock()), Some(part.max_oc));
        // Tight budget: down-binned below the ceiling.
        let tight = part.admit(&p, 0.2, p.max_overclock()).unwrap();
        assert!(tight < part.max_oc);
        assert!(tight > p.turbo());
        // Zero budget with nonzero risk: denied outright.
        assert_eq!(part.admit(&p, 0.0, p.max_overclock()), None);
    }

    #[test]
    fn admit_is_monotone_in_risk_budget() {
        let p = plan();
        let cfg = BinningConfig {
            bins: 8,
            risk_budget: 1.0,
            wear_spread: 0.0,
            seed: 3,
        };
        for id in 0..64u64 {
            let part = cfg.part(&p, id);
            let mut last = part.admit(&p, 1.0, p.max_overclock());
            for budget in [0.75, 0.5, 0.25, 0.1, 0.0] {
                let f = part.admit(&p, budget, p.max_overclock());
                match (last, f) {
                    (Some(a), Some(b)) => assert!(b <= a, "part {id}: tighter budget raised f"),
                    (None, Some(_)) => panic!("part {id}: tighter budget un-denied"),
                    _ => {}
                }
                last = f;
            }
        }
    }

    #[test]
    fn uniform_part_is_always_admitted_at_request() {
        let p = plan();
        let part = SiliconPart::uniform(&p);
        for budget in [0.0, 0.5, 1.0] {
            assert_eq!(
                part.admit(&p, budget, p.max_overclock()),
                Some(p.max_overclock()),
                "risk-free parts pass every budget"
            );
        }
    }

    #[test]
    fn part_wear_model_scales_acceleration() {
        let base = WearModel::default();
        let p = plan();
        let hot = SiliconPart {
            voltage_wear_mult: 1.5,
            ..SiliconPart::uniform(&p)
        };
        let scaled = part_wear_model(&base, &hot);
        assert!(
            scaled.voltage_acceleration(p.max_overclock())
                > base.voltage_acceleration(p.max_overclock()),
            "a voltage-sensitive part must age faster when overclocked"
        );
        let ideal = part_wear_model(&base, &SiliconPart::uniform(&p));
        assert_eq!(
            ideal.voltage_acceleration(p.max_overclock()),
            base.voltage_acceleration(p.max_overclock()),
            "the uniform part reproduces the base model exactly"
        );
    }

    #[test]
    fn hoisted_wear_rate_matches_model() {
        let base = WearModel::default();
        let p = plan();
        let cfg = BinningConfig {
            bins: 4,
            risk_budget: 1.0,
            wear_spread: 0.2,
            seed: 5,
        };
        let part = cfg.part(&p, 9);
        let temp = 78.0;
        let rate = WearRate::hoist(&base, &part, part.max_oc, temp);
        let model = part_wear_model(&base, &part);
        for u in [0.0, 0.25, 0.5, 1.0] {
            let direct = model.ageing_rate(u, part.max_oc, temp);
            assert!(
                (rate.at(u) - direct).abs() < 1e-12,
                "hoisted rate diverged at u={u}: {} vs {direct}",
                rate.at(u)
            );
        }
    }

    #[test]
    #[should_panic(expected = "risk_budget must be in [0, 1]")]
    fn validate_rejects_bad_budget() {
        let mut cfg = BinningConfig::uniform();
        cfg.risk_budget = 1.5;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "wear_spread must be in [0, 1)")]
    fn validate_rejects_full_spread() {
        let mut cfg = BinningConfig::uniform();
        cfg.wear_spread = 1.0;
        cfg.validate();
    }
}

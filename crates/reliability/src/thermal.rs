//! Thermal model and cooling technologies.
//!
//! The paper's §III-Q2 ties overclocking headroom to cooling: "advanced
//! cooling (e.g., wax, immersion) is needed for enabling
//! sprinting/overclocking … However, there is opportunity to overclock even
//! in air-cooled server deployments", and "advanced cooling can be used to
//! enhance the capability (e.g., duration) as lower operating temperatures
//! reduce ageing".
//!
//! [`ThermalModel`] is a first-order RC model: junction temperature relaxes
//! toward `ambient + R_th · P` with time constant `tau`. [`Cooling`]
//! parameterizes the thermal resistance for air, liquid, and immersion
//! deployments, which feeds the wear model's temperature acceleration — the
//! mechanism by which immersion cooling buys extra overclocking duration.

use crate::wear::WearModel;
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;
use soc_power::units::{MegaHertz, Watts};

/// Cooling technology of a server deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cooling {
    /// Conventional air cooling (the paper's deployment).
    Air,
    /// Cold-plate liquid cooling.
    Liquid,
    /// Two-phase immersion (the paper's §II reference \[51\]).
    Immersion,
}

impl Cooling {
    /// All technologies, from weakest to strongest.
    pub const ALL: [Cooling; 3] = [Cooling::Air, Cooling::Liquid, Cooling::Immersion];

    /// Junction-to-ambient thermal resistance (°C per watt) for a whole
    /// server package at the granularity we model (socket-level).
    pub fn thermal_resistance(self) -> f64 {
        match self {
            Cooling::Air => 0.140,
            Cooling::Liquid => 0.095,
            Cooling::Immersion => 0.065,
        }
    }

    /// Typical ambient/coolant temperature (°C).
    pub fn ambient_c(self) -> f64 {
        match self {
            Cooling::Air => 30.0,
            Cooling::Liquid => 28.0,
            Cooling::Immersion => 35.0, // dielectric bath runs warmer but pulls heat harder
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Cooling::Air => "air",
            Cooling::Liquid => "liquid",
            Cooling::Immersion => "immersion",
        }
    }
}

impl std::fmt::Display for Cooling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// First-order thermal model of a server socket.
///
/// ```
/// use soc_reliability::thermal::{Cooling, ThermalModel};
/// use soc_power::units::Watts;
/// use simcore::time::SimDuration;
///
/// let mut t = ThermalModel::new(Cooling::Air, SimDuration::from_secs(60));
/// for _ in 0..30 {
///     t.step(Watts::new(400.0), SimDuration::from_secs(60));
/// }
/// // Steady state: 30°C ambient + 0.14°C/W x 400W = 86°C.
/// assert!((t.junction_c() - 86.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    cooling: Cooling,
    /// Thermal time constant.
    tau: SimDuration,
    junction_c: f64,
}

impl ThermalModel {
    /// Create a model starting at ambient temperature.
    ///
    /// # Panics
    /// Panics if `tau` is zero.
    pub fn new(cooling: Cooling, tau: SimDuration) -> ThermalModel {
        assert!(!tau.is_zero(), "thermal time constant must be non-zero");
        ThermalModel {
            cooling,
            tau,
            junction_c: cooling.ambient_c(),
        }
    }

    /// The cooling technology.
    pub fn cooling(&self) -> Cooling {
        self.cooling
    }

    /// Current junction temperature (°C).
    pub fn junction_c(&self) -> f64 {
        self.junction_c
    }

    /// Steady-state junction temperature at constant `power`.
    pub fn steady_state_c(&self, power: Watts) -> f64 {
        self.cooling.ambient_c() + self.cooling.thermal_resistance() * power.get()
    }

    /// Advance the model by `dt` with the given power draw.
    pub fn step(&mut self, power: Watts, dt: SimDuration) {
        let target = self.steady_state_c(power);
        let alpha = 1.0 - (-dt.ratio(self.tau)).exp();
        self.junction_c += (target - self.junction_c) * alpha;
    }
}

/// Sustainable overclocking duty cycle under each cooling technology: the
/// fraction of time a server can spend overclocked without exceeding
/// reference ageing, given its busy/idle power profile. This quantifies the
/// paper's claim that advanced cooling "enhances the capability (e.g.,
/// duration)".
pub fn sustainable_duty_cycle(
    wear: &WearModel,
    cooling: Cooling,
    utilization: f64,
    oc_frequency: MegaHertz,
    turbo_power: Watts,
    oc_power: Watts,
) -> f64 {
    let tau = SimDuration::from_secs(60);
    let model = ThermalModel::new(cooling, tau);
    let t_turbo = model.steady_state_c(turbo_power);
    let t_oc = model.steady_state_c(oc_power);
    let plan = wear.curve().plan();
    let base_rate = wear.ageing_rate(utilization, plan.turbo(), t_turbo);
    if base_rate >= 1.0 {
        return 0.0;
    }
    let oc_rate = wear.ageing_rate(utilization, oc_frequency, t_oc);
    let turbo_rate_at_oc_temp = wear.ageing_rate(utilization, plan.turbo(), t_turbo);
    let extra = oc_rate - turbo_rate_at_oc_temp;
    if extra <= 0.0 {
        return 1.0;
    }
    ((1.0 - base_rate) / extra).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_power::freq::FrequencyPlan;

    #[test]
    fn steady_state_matches_rc_formula() {
        let m = ThermalModel::new(Cooling::Air, SimDuration::from_secs(60));
        assert_eq!(m.steady_state_c(Watts::new(100.0)), 30.0 + 14.0);
        assert_eq!(m.junction_c(), 30.0);
    }

    #[test]
    fn temperature_relaxes_exponentially() {
        let mut m = ThermalModel::new(Cooling::Air, SimDuration::from_secs(60));
        m.step(Watts::new(400.0), SimDuration::from_secs(60));
        // After one tau: ~63% of the way to 86°C.
        let expected = 30.0 + (86.0 - 30.0) * (1.0 - (-1.0f64).exp());
        assert!((m.junction_c() - expected).abs() < 1e-9);
        // Cooling back down when power drops.
        let hot = m.junction_c();
        m.step(Watts::ZERO, SimDuration::from_secs(60));
        assert!(m.junction_c() < hot);
    }

    #[test]
    fn stronger_cooling_runs_cooler() {
        let p = Watts::new(400.0);
        let air = ThermalModel::new(Cooling::Air, SimDuration::SECOND).steady_state_c(p);
        let liquid = ThermalModel::new(Cooling::Liquid, SimDuration::SECOND).steady_state_c(p);
        let immersion =
            ThermalModel::new(Cooling::Immersion, SimDuration::SECOND).steady_state_c(p);
        assert!(liquid < air);
        assert!(immersion < liquid);
    }

    #[test]
    fn advanced_cooling_extends_overclocking_duration() {
        // The paper's §III-Q2 claim, quantified: immersion cooling affords a
        // larger sustainable overclocking duty cycle than air.
        let wear = WearModel::default();
        let plan = FrequencyPlan::default();
        let duty = |cooling| {
            sustainable_duty_cycle(
                &wear,
                cooling,
                0.55,
                plan.max_overclock(),
                Watts::new(250.0),
                Watts::new(330.0),
            )
        };
        let air = duty(Cooling::Air);
        let immersion = duty(Cooling::Immersion);
        assert!(air > 0.0, "air cooling must still allow some overclocking");
        assert!(
            immersion > air,
            "immersion ({immersion:.3}) must allow a larger duty cycle than air ({air:.3})"
        );
    }

    #[test]
    fn no_duty_cycle_when_baseline_already_over() {
        let wear = WearModel::default();
        let plan = FrequencyPlan::default();
        // Scorching utilization + air cooling: baseline ageing already > 1.
        let duty = sustainable_duty_cycle(
            &wear,
            Cooling::Air,
            1.0,
            plan.max_overclock(),
            Watts::new(500.0),
            Watts::new(650.0),
        );
        assert_eq!(duty, 0.0);
    }
}

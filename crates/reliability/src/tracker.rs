//! Per-core time-in-state tracking.
//!
//! "Each sOA ensures that the overclocked time-in-state of a component
//! (e.g., per-core of a CPU) does not exceed limit. Tracking and enforcement
//! is per-server; an sOA uses mechanisms like Intel PMT for the time-in-state
//! tracking and denies overclocking requests if the budget is exhausted."
//! (paper §IV-B). [`TimeInState`] is the software stand-in for that vendor
//! telemetry, and [`TimeInState::find_core_with_budget`] implements the
//! core-migration exploration of §IV-D ("the sOA explores if any other cores
//! on a server have enough budget to support the VM's overclocking").

use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;

/// Per-core overclocked-time accounting against a per-core cap.
///
/// ```
/// use soc_reliability::tracker::TimeInState;
/// use simcore::time::SimDuration;
///
/// let mut t = TimeInState::new(4, SimDuration::from_hours(10));
/// t.record(0, SimDuration::from_hours(9));
/// assert!(t.has_budget(0, SimDuration::from_hours(1)));
/// assert!(!t.has_budget(0, SimDuration::from_hours(2)));
/// assert_eq!(t.find_core_with_budget(SimDuration::from_hours(2)), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeInState {
    per_core_cap: SimDuration,
    overclocked: Vec<SimDuration>,
}

impl TimeInState {
    /// Create a tracker for `cores` cores, each capped at `per_core_cap` of
    /// overclocked time in the current epoch.
    ///
    /// # Panics
    /// Panics if `cores == 0`.
    pub fn new(cores: usize, per_core_cap: SimDuration) -> TimeInState {
        assert!(cores > 0, "need at least one core");
        TimeInState {
            per_core_cap,
            overclocked: vec![SimDuration::ZERO; cores],
        }
    }

    /// Number of tracked cores.
    pub fn cores(&self) -> usize {
        self.overclocked.len()
    }

    /// The per-core cap.
    pub fn per_core_cap(&self) -> SimDuration {
        self.per_core_cap
    }

    /// Replace the per-core cap (epoch reconfiguration).
    pub fn set_per_core_cap(&mut self, cap: SimDuration) {
        self.per_core_cap = cap;
    }

    /// Overclocked time recorded against core `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn consumed(&self, i: usize) -> SimDuration {
        self.overclocked[i]
    }

    /// Remaining overclockable time on core `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn remaining(&self, i: usize) -> SimDuration {
        self.per_core_cap.saturating_sub(self.overclocked[i])
    }

    /// Whether core `i` can sustain `dt` more of overclocking.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn has_budget(&self, i: usize, dt: SimDuration) -> bool {
        self.remaining(i) >= dt
    }

    /// Record `dt` of overclocked time against core `i` (may exceed the cap;
    /// enforcement is the caller's admission decision, tracking is honest).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn record(&mut self, i: usize, dt: SimDuration) {
        self.overclocked[i] += dt;
    }

    /// First core with at least `dt` of budget remaining, if any — the
    /// migration target for a VM whose current cores are exhausted (§IV-D).
    pub fn find_core_with_budget(&self, dt: SimDuration) -> Option<usize> {
        (0..self.cores()).find(|&i| self.has_budget(i, dt))
    }

    /// Up to `n` distinct cores that can each sustain `dt`, preferring the
    /// least-worn cores (wear levelling). Returns fewer than `n` if not
    /// enough cores qualify.
    pub fn pick_cores(&self, n: usize, dt: SimDuration) -> Vec<usize> {
        let mut candidates: Vec<usize> = (0..self.cores())
            .filter(|&i| self.has_budget(i, dt))
            .collect();
        candidates.sort_by_key(|&i| (self.overclocked[i].as_micros(), i));
        candidates.truncate(n);
        candidates
    }

    /// Total overclocked time across cores.
    pub fn total_consumed(&self) -> SimDuration {
        self.overclocked
            .iter()
            .fold(SimDuration::ZERO, |a, &b| a + b)
    }

    /// Reset all counters (epoch rollover).
    pub fn reset(&mut self) {
        for v in &mut self.overclocked {
            *v = SimDuration::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_tracker_has_full_budget() {
        let t = TimeInState::new(8, SimDuration::from_hours(5));
        for i in 0..8 {
            assert_eq!(t.remaining(i), SimDuration::from_hours(5));
        }
        assert_eq!(t.total_consumed(), SimDuration::ZERO);
    }

    #[test]
    fn record_and_remaining() {
        let mut t = TimeInState::new(2, SimDuration::from_hours(5));
        t.record(0, SimDuration::from_hours(3));
        assert_eq!(t.remaining(0), SimDuration::from_hours(2));
        assert_eq!(t.remaining(1), SimDuration::from_hours(5));
        assert_eq!(t.total_consumed(), SimDuration::from_hours(3));
    }

    #[test]
    fn overconsumption_clamps_remaining_to_zero() {
        let mut t = TimeInState::new(1, SimDuration::from_hours(1));
        t.record(0, SimDuration::from_hours(3));
        assert_eq!(t.remaining(0), SimDuration::ZERO);
        assert!(!t.has_budget(0, SimDuration::from_micros(1)));
    }

    #[test]
    fn find_core_skips_exhausted() {
        let mut t = TimeInState::new(3, SimDuration::from_hours(2));
        t.record(0, SimDuration::from_hours(2));
        t.record(1, SimDuration::from_hours(1));
        assert_eq!(t.find_core_with_budget(SimDuration::from_hours(2)), Some(2));
        assert_eq!(t.find_core_with_budget(SimDuration::from_hours(1)), Some(1));
        assert_eq!(t.find_core_with_budget(SimDuration::from_hours(5)), None);
    }

    #[test]
    fn pick_cores_prefers_least_worn() {
        let mut t = TimeInState::new(4, SimDuration::from_hours(10));
        t.record(0, SimDuration::from_hours(5));
        t.record(1, SimDuration::from_hours(1));
        t.record(2, SimDuration::from_hours(3));
        let picked = t.pick_cores(2, SimDuration::from_hours(1));
        assert_eq!(picked, vec![3, 1]);
    }

    #[test]
    fn pick_cores_returns_fewer_when_exhausted() {
        let mut t = TimeInState::new(2, SimDuration::from_hours(1));
        t.record(0, SimDuration::from_hours(1));
        let picked = t.pick_cores(2, SimDuration::from_minutes(30));
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn reset_restores_budget() {
        let mut t = TimeInState::new(2, SimDuration::from_hours(1));
        t.record(0, SimDuration::from_hours(1));
        t.reset();
        assert_eq!(t.remaining(0), SimDuration::from_hours(1));
    }

    proptest! {
        #[test]
        fn total_equals_sum_of_cores(
            records in prop::collection::vec((0usize..8, 0u64..100), 0..50)
        ) {
            let mut t = TimeInState::new(8, SimDuration::from_hours(1000));
            let mut expected = 0u64;
            for &(core, mins) in &records {
                t.record(core, SimDuration::from_minutes(mins));
                expected += mins;
            }
            prop_assert_eq!(t.total_consumed(), SimDuration::from_minutes(expected));
        }

        #[test]
        fn picked_cores_always_have_budget(
            records in prop::collection::vec((0usize..4, 0u64..120), 0..20),
            want in 1usize..4,
        ) {
            let mut t = TimeInState::new(4, SimDuration::from_hours(1));
            for &(core, mins) in &records {
                t.record(core, SimDuration::from_minutes(mins));
            }
            let dt = SimDuration::from_minutes(30);
            for core in t.pick_cores(want, dt) {
                prop_assert!(t.has_budget(core, dt));
            }
        }
    }
}

//! Property-style tests for `soc_reliability::binning`.
//!
//! No external property-testing framework: cases are generated in seeded
//! `Pcg32` loops, so the suite is deterministic, dependency-free, and every
//! failure reproduces from the loop seed printed in the assertion message.
//!
//! Pinned invariants:
//!
//! * silicon draws are **query-order- and shard-invariant**: a part's
//!   identity depends only on `(config, plan, part_id)`, never on which
//!   other parts were drawn before it or how the fleet is partitioned
//!   (the property both rack engines and sOA restarts rely on);
//! * the risk score is **monotone in bin aggressiveness**: for a fixed
//!   part, more bins never lowers its risk;
//! * wear multipliers stay inside the configured
//!   `[1 − wear_spread, 1 + wear_spread]` bounds;
//! * bin assignment for a given `(seed, part_id)` is stable across runs,
//!   and the degenerate uniform config draws the ideal part everywhere;
//! * admission is monotone in the risk budget and transparent for the
//!   uniform fleet.

use simcore::rng::Pcg32;
use soc_power::freq::FrequencyPlan;
use soc_reliability::binning::BinningConfig;

/// Random-but-seeded heterogeneous configuration for one test case.
fn arb_config(rng: &mut Pcg32) -> BinningConfig {
    BinningConfig {
        bins: 2 + rng.gen_index(15) as u32,
        risk_budget: rng.next_f64(),
        wear_spread: rng.gen_range_f64(0.0, 0.9),
        seed: rng.next_u64(),
    }
}

fn plans() -> [FrequencyPlan; 2] {
    [
        FrequencyPlan::amd_reference(),
        FrequencyPlan::intel_reference(),
    ]
}

#[test]
fn draws_are_query_order_and_shard_invariant() {
    for case in 0..50u64 {
        let mut rng = Pcg32::seed_from_u64(2000 + case);
        let cfg = arb_config(&mut rng);
        for plan in &plans() {
            let n = 64usize;
            // Forward order, reverse order, and an interleaved "sharded"
            // order (odd part ids first) must all see the same silicon.
            let forward: Vec<_> = (0..n as u64).map(|id| cfg.part(plan, id)).collect();
            let mut reverse: Vec<_> = (0..n as u64).rev().map(|id| cfg.part(plan, id)).collect();
            reverse.reverse();
            let sharded: Vec<_> = (0..n as u64)
                .filter(|id| id % 2 == 1)
                .chain((0..n as u64).filter(|id| id % 2 == 0))
                .map(|id| (id, cfg.part(plan, id)))
                .collect();
            assert_eq!(
                forward, reverse,
                "case {case}: reverse query order diverged"
            );
            for (id, part) in sharded {
                assert_eq!(
                    forward[id as usize], part,
                    "case {case}: sharded query order diverged at part {id}"
                );
            }
        }
    }
}

#[test]
fn bin_assignment_is_stable_for_seed_and_part_id() {
    for case in 0..50u64 {
        let mut rng = Pcg32::seed_from_u64(3000 + case);
        let cfg = arb_config(&mut rng);
        let plan = &plans()[rng.gen_index(2)];
        let id = rng.next_u64();
        let first = cfg.part(plan, id);
        for rep in 0..5 {
            assert_eq!(
                cfg.part(plan, id),
                first,
                "case {case}: draw for (seed {}, part {id}) unstable at rep {rep}",
                cfg.seed
            );
        }
    }
}

#[test]
fn risk_is_monotone_in_bin_aggressiveness() {
    for case in 0..50u64 {
        let mut rng = Pcg32::seed_from_u64(4000 + case);
        let seed = rng.next_u64();
        let plan = &plans()[rng.gen_index(2)];
        for id in 0..32u64 {
            let mut prev = 0.0f64;
            for bins in 1..=16u32 {
                let cfg = BinningConfig {
                    bins,
                    ..BinningConfig::uniform()
                };
                let cfg = BinningConfig { seed, ..cfg };
                let risk = cfg.part(plan, id).risk;
                assert!(
                    risk + 1e-12 >= prev,
                    "case {case}: part {id} risk fell from {prev} to {risk} at {bins} bins"
                );
                assert!(
                    (0.0..1.0).contains(&risk),
                    "case {case}: part {id} risk {risk} outside [0, 1)"
                );
                prev = risk;
            }
        }
    }
}

#[test]
fn wear_multipliers_stay_within_configured_bounds() {
    for case in 0..50u64 {
        let mut rng = Pcg32::seed_from_u64(5000 + case);
        let cfg = arb_config(&mut rng);
        let plan = &plans()[rng.gen_index(2)];
        let lo = 1.0 - cfg.wear_spread;
        let hi = 1.0 + cfg.wear_spread;
        for id in 0..128u64 {
            let part = cfg.part(plan, id);
            for (name, mult) in [
                ("voltage", part.voltage_wear_mult),
                ("temp", part.temp_wear_mult),
            ] {
                assert!(
                    (lo..=hi).contains(&mult),
                    "case {case}: part {id} {name} multiplier {mult} outside [{lo}, {hi}]"
                );
            }
        }
    }
}

#[test]
fn binned_max_overclock_stays_on_the_frequency_ladder() {
    for case in 0..50u64 {
        let mut rng = Pcg32::seed_from_u64(6000 + case);
        let cfg = arb_config(&mut rng);
        for plan in &plans() {
            for id in 0..64u64 {
                let part = cfg.part(plan, id);
                assert!(
                    part.max_oc <= plan.max_overclock() && part.max_oc > plan.turbo(),
                    "case {case}: part {id} max_oc {} off the overclock range",
                    part.max_oc
                );
                let off_grid = part.max_oc.get().abs_diff(plan.turbo().get()) % plan.step().get();
                assert_eq!(
                    off_grid, 0,
                    "case {case}: part {id} max_oc {} not on a frequency step",
                    part.max_oc
                );
            }
        }
    }
}

#[test]
fn admission_is_monotone_in_risk_budget_and_uniform_transparent() {
    for case in 0..50u64 {
        let mut rng = Pcg32::seed_from_u64(7000 + case);
        let cfg = arb_config(&mut rng);
        let plan = &plans()[rng.gen_index(2)];
        for id in 0..32u64 {
            let part = cfg.part(plan, id);
            let mut prev = part.admit(plan, 1.0, plan.max_overclock());
            assert!(
                prev.is_some(),
                "case {case}: part {id} denied under a full risk budget"
            );
            let mut budget = 1.0;
            while budget > 0.0 {
                budget -= rng.gen_range_f64(0.05, 0.3);
                let f = part.admit(plan, budget.max(0.0), plan.max_overclock());
                match (prev, f) {
                    (Some(a), Some(b)) => assert!(
                        b <= a,
                        "case {case}: part {id} admitted higher under a tighter budget"
                    ),
                    (None, Some(_)) => {
                        panic!("case {case}: part {id} re-admitted under a tighter budget")
                    }
                    _ => {}
                }
                prev = f;
            }
        }
        // The degenerate uniform config is transparent at every budget.
        let uniform = BinningConfig::uniform();
        let part = uniform.part(plan, rng.next_u64());
        assert_eq!(
            part.admit(plan, 0.0, plan.max_overclock()),
            Some(plan.max_overclock()),
            "case {case}: uniform part must pass even a zero budget"
        );
    }
}

//! Fixture observation-layer crate: nothing wrong here — it exists so the
//! util-layer helper has something forbidden to reach. Never compiled.

pub struct Recorder {
    values: Vec<u64>,
}

impl Recorder {
    pub fn push(&mut self, v: u64) {
        self.values.push(v);
    }
}

//! Known-bad fixture: the sim-state crate that launders non-determinism
//! and panics through its allowed `util`-layer dependency. No line in this
//! file touches a clock, the environment, or an unwrap — the per-file
//! D/R lints see nothing — yet `step` is wall-clock-dependent (D006),
//! panic-reachable (R004), and pulls the observation layer into the sim's
//! transitive closure (A002). Never compiled.

pub fn step(xs: &[u64]) -> u64 {
    let t = helper::now_ms();
    t + helper::first_of(xs)
}

//! Known-bad fixture: the laundering helper. A `util`-layer crate that
//! wraps wall-clock time in an innocent-looking function, reaches up into
//! the observation layer, and hides a panic behind a clean signature.
//! Every file here lints clean under the per-file D-lints alone — the
//! workspace passes (A001/A002, D006, R004) are what catch it. Never
//! compiled.

use soc_health::Recorder;

pub fn now_ms() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap().as_millis() as u64
}

pub fn record(r: &Recorder, v: u64) {
    r.push(v);
}

pub fn first_of(xs: &[u64]) -> u64 {
    xs[0]
}

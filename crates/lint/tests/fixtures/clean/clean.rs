//! Known-clean fixture: the deterministic, unit-safe shapes the lints
//! steer toward. soc-lint must report nothing here.

use std::collections::{BTreeMap, BTreeSet};

pub struct Server {
    pub budget: Watts,
    pub base: MegaHertz,
    pub grants: BTreeMap<u64, u64>,
    pub seen: BTreeSet<u64>,
}

pub fn admit(budget: Watts, draw: Watts) -> Result<Watts, String> {
    let headroom = budget - draw;
    if headroom.get() < 0.0 {
        return Err("over budget".to_string());
    }
    Ok(headroom)
}

pub fn cap(freq: MegaHertz, limit: MegaHertz) -> MegaHertz {
    freq.min(limit)
}

pub fn utilization_ratio(busy: f64, total: f64) -> f64 {
    if total > 0.0 {
        busy / total
    } else {
        0.0
    }
}

pub fn draw_from_seeded_stream(rng: &mut Pcg32) -> f64 {
    rng.next_f64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        match v {
            Some(1) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}

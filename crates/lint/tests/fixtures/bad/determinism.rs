//! Known-bad fixture: every determinism lint fires in here. The expected
//! diagnostics are pinned in `determinism.expected`; this file is never
//! compiled (it lives under tests/fixtures, not in any crate's src tree).

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use rand::Rng;

struct SimState {
    table: HashMap<u32, u32>,
    seen: HashSet<u32>,
}

fn wall_clock_tick() -> u64 {
    let started = Instant::now();
    let stamp = std::time::SystemTime::now();
    let _ = (started, stamp);
    0
}

fn configured_mode() -> String {
    std::env::var("SOC_MODE").unwrap_or_default()
}

fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn spawn_workers() {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || tx.send(1));
    let q = crossbeam::channel::unbounded::<u32>();
    let _ = (rx, q);
}

//! Known-bad fixture: unit-safety lints. Raw floats and integers carrying
//! watt/megahertz quantities that should be `power::units` newtypes.

pub struct ServerConfig {
    pub budget_w: f64,
    pub base_freq: u32,
    pub name: String,
}

pub fn set_power_budget(budget_w: f64) {
    let _ = budget_w;
}

pub fn admit(power: f64, watts_delta: f64) -> bool {
    power + watts_delta < 450.0
}

pub fn cap_frequency(freq_mhz: u32, target_frequency: f64) -> u32 {
    let _ = target_frequency;
    freq_mhz
}

// Clean shapes the lints must NOT fire on: dimensionless ratios, aggregates,
// and already-newtyped parameters.
pub fn scale(power_scale_factor: f64, utilization: f64) -> f64 {
    power_scale_factor * utilization
}

pub fn series(power_samples: Vec<f64>) -> usize {
    power_samples.len()
}

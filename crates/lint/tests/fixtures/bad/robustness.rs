//! Known-bad fixture: robustness lints in library (non-test) code, with a
//! test module at the bottom proving the same patterns are allowed there.

pub fn lookup(map: &std::collections::BTreeMap<u32, u32>, k: u32) -> u32 {
    *map.get(&k).unwrap()
}

pub fn must_have(v: Option<u32>) -> u32 {
    v.expect("value is always present")
}

pub fn not_done() {
    todo!()
}

pub fn impossible(state: u32) {
    if state > 3 {
        panic!("state out of range");
    }
    unimplemented!()
}

pub fn truncate(now_s: f64, power: f64) -> (u64, u32) {
    (now_s as u64, power as u32)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u32, ()> = Ok(4);
        assert_eq!(r.expect("test expects are allowed"), 4);
    }
}

//! Known-bad fixture: a sim-state crate linking the wall-clock profiler.
//! `soc_prof` lives outside the deterministic core; sim-state crates must
//! expose pure probe hooks (`soc_cluster::probe::ShardProbe`) instead and
//! let the bench binaries attach timers. Never compiled.

use soc_prof::Profiler;

struct Shard {
    profiler: Profiler,
}

fn time_a_step(shard: &Shard) {
    let prof = soc_prof::Profiler::new("sim");
    let _guard = prof.phase("step");
    let _ = &shard.profiler;
}

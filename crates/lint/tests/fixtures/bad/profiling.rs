//! Known-bad fixture: a sim-state crate linking bench-side observability.
//! `soc_prof` (wall-clock profiling) and `soc_health` (health recording)
//! live outside the deterministic core; sim-state crates must expose pure
//! probe hooks (`soc_cluster::probe::ShardProbe`) instead and let the bench
//! binaries attach timers and recorders. Never compiled.

use soc_health::Recorder;
use soc_prof::Profiler;

struct Shard {
    profiler: Profiler,
    recorder: Recorder,
}

fn time_a_step(shard: &Shard) {
    let prof = soc_prof::Profiler::new("sim");
    let health = soc_health::Recorder::new("sim");
    let _guard = prof.phase("step");
    let _ = (&shard.profiler, &shard.recorder, health);
}

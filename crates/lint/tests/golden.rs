//! Golden fixture tests for `soc-lint`, mirroring `crates/analyze/tests/golden.rs`.
//!
//! `fixtures/bad/*.rs` are known-bad sources (never compiled — they live
//! outside any src tree); each has a committed `.expected` file pinning the
//! exact diagnostics as `line lint-id` pairs. `fixtures/clean/clean.rs`
//! must produce nothing. `fixtures/ws_bad/` is a whole fixture *workspace*
//! exercising the graph passes (A002, D006, R004) that no single file can
//! trigger. An intentional lint change must regenerate the `.expected`
//! files (the assertion message shows the new output).
//!
//! The self-check test then lints the real workspace and asserts it is
//! clean modulo `lint.toml` — the same gate CI enforces — so a regression
//! anywhere in the tree fails here first.

use soc_lint::parser::parse_file;
use soc_lint::{check_file, run_check, AllowEntry, Allowlist, Diagnostic, Layers, SourceFile};
use std::path::{Path, PathBuf};

/// Lint `source` as if it were `crates/<crate_name>/src/fixture.rs` under
/// the builtin layer assignment and render one `line lint-id` pair per
/// diagnostic.
fn render(crate_name: &str, source: &str) -> String {
    let path = format!("crates/{crate_name}/src/fixture.rs");
    let sf = SourceFile::parse(&path, crate_name, source);
    let model = parse_file(&sf);
    let mut out = String::new();
    for d in check_file(&sf, &model, &Layers::builtin_default()) {
        out.push_str(&format!("{} {}\n", d.line, d.lint));
    }
    out
}

fn assert_golden(name: &str, crate_name: &str, source: &str, expected: &str) {
    let got = render(crate_name, source);
    assert_eq!(
        got, expected,
        "fixtures/bad/{name}.expected drifted; if the lint change is \
         intentional, update the expected file to:\n{got}"
    );
}

#[test]
fn determinism_fixture_matches_golden() {
    // Scanned as a sim-state crate so the D-lints apply.
    assert_golden(
        "determinism",
        "power",
        include_str!("fixtures/bad/determinism.rs"),
        include_str!("fixtures/bad/determinism.expected"),
    );
}

#[test]
fn units_fixture_matches_golden() {
    assert_golden(
        "units",
        "power",
        include_str!("fixtures/bad/units.rs"),
        include_str!("fixtures/bad/units.expected"),
    );
}

#[test]
fn robustness_fixture_matches_golden() {
    // Scanned as a non-sim crate: R-lints apply everywhere.
    assert_golden(
        "robustness",
        "analyze",
        include_str!("fixtures/bad/robustness.rs"),
        include_str!("fixtures/bad/robustness.expected"),
    );
}

#[test]
fn profiling_fixture_matches_golden() {
    // Scanned as a sim-state crate: referencing the observation layer
    // (soc_prof, soc_health) is an A001 layer violation. The same source in
    // an observation/tooling crate is clean (checked below).
    assert_golden(
        "profiling",
        "cluster",
        include_str!("fixtures/bad/profiling.rs"),
        include_str!("fixtures/bad/profiling.expected"),
    );
}

#[test]
fn profiling_fixture_is_clean_outside_sim_state() {
    // crates/prof and crates/health sit in the observation layer and
    // crates/bench in tooling; both layers may use observation, so the same
    // source produces no A001 there.
    for crate_name in ["prof", "health", "bench"] {
        let got = render(crate_name, include_str!("fixtures/bad/profiling.rs"));
        assert_eq!(
            got, "",
            "soc_prof/soc_health use must be allowed in crates/{crate_name}"
        );
    }
}

#[test]
fn clean_fixture_is_clean() {
    let got = render("power", include_str!("fixtures/clean/clean.rs"));
    assert_eq!(got, "", "the clean fixture must produce no diagnostics");
}

#[test]
fn bad_fixtures_cover_at_least_eight_lint_ids() {
    let mut ids: Vec<String> = Vec::new();
    for (crate_name, source) in [
        ("power", include_str!("fixtures/bad/determinism.rs")),
        ("power", include_str!("fixtures/bad/units.rs")),
        ("analyze", include_str!("fixtures/bad/robustness.rs")),
    ] {
        let path = format!("crates/{crate_name}/src/fixture.rs");
        let sf = SourceFile::parse(&path, crate_name, source);
        let model = parse_file(&sf);
        ids.extend(
            check_file(&sf, &model, &Layers::builtin_default())
                .into_iter()
                .map(|d| d.lint.to_string()),
        );
    }
    ids.sort_unstable();
    ids.dedup();
    assert!(
        ids.len() >= 8,
        "bad fixtures must exercise at least 8 distinct lints, got {ids:?}"
    );
}

// --------------------------------------------- workspace fixture (graphs) --

fn ws_bad_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_bad")
}

/// The fixture workspace pins the graph passes: every file in it lints
/// clean per-file (modulo the helper's own R001/A001), but the workspace
/// analysis catches the sim crate laundering wall-clock time (D006),
/// panics (R004), and an observation-layer dependency (A002) through its
/// allowed helper.
#[test]
fn ws_bad_fixture_matches_golden() {
    let root = ws_bad_root();
    let report = run_check(&root, &root.join("lint.toml")).expect("fixture workspace scans");
    let got: String = report
        .blocking
        .iter()
        .map(|d| format!("{}:{} {}\n", d.path, d.line, d.lint))
        .collect();
    let expected = include_str!("fixtures/ws_bad/expected.txt");
    assert_eq!(
        got, expected,
        "fixtures/ws_bad/expected.txt drifted; if the lint change is \
         intentional, update it to:\n{got}"
    );
    // The headline catches: laundered non-determinism and the transitive
    // layer breach must both be present, flagged in the *sim* crate even
    // though the offending tokens live in the helper.
    for lint in ["A002", "D006", "R004"] {
        assert!(
            report
                .blocking
                .iter()
                .any(|d| d.lint == lint && d.path.contains("simx")),
            "expected a {lint} diagnostic in the simx crate"
        );
    }
    assert!(
        report
            .blocking
            .iter()
            .any(|d| d.lint == "A001" && d.path.contains("helper")),
        "expected the helper's direct observation-layer reference to flag A001"
    );
}

// ------------------------------------------------- allowlist ratchet gate --

/// A waiver that matches nothing is reported as stale, and the `check`
/// subcommand exits non-zero for it — dead entries cannot accumulate.
#[test]
fn stale_waiver_is_reported_and_fails_check() {
    let root = ws_bad_root();
    let report = run_check(&root, &root.join("stale.toml")).expect("fixture workspace scans");
    assert!(
        report.blocking.is_empty(),
        "stale.toml waives every real diagnostic; blocking: {:?}",
        report.blocking
    );
    assert_eq!(
        report.stale.len(),
        1,
        "exactly the line-999 entry must be stale, got {:?}",
        report.stale
    );
    assert_eq!(report.stale[0].line, Some(999));

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_soc-lint"))
        .args(["check", "--root"])
        .arg(&root)
        .arg("--allowlist")
        .arg(root.join("stale.toml"))
        .output()
        .expect("soc-lint binary runs");
    assert!(
        !out.status.success(),
        "`soc-lint check` must exit non-zero on a stale waiver:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_soc-lint"))
        .args(["ratchet", "--root"])
        .arg(&root)
        .arg("--allowlist")
        .arg(root.join("stale.toml"))
        .output()
        .expect("soc-lint binary runs");
    assert!(
        !out.status.success(),
        "`soc-lint ratchet` must fail on a stale waiver:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("stale"),
        "ratchet output names the stale waiver"
    );
}

/// File-wide waivers (no `line` key) match the file's diagnostics wherever
/// they land, so routine edits that shift line numbers don't invalidate the
/// waiver or flip CI red.
#[test]
fn file_wide_waiver_survives_line_drift() {
    let allow = Allowlist {
        entries: vec![AllowEntry {
            lint: "R001".to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line: None,
            justification: "whole-file invariant".to_string(),
        }],
    };
    let diag = |line| Diagnostic {
        lint: "R001",
        path: "crates/x/src/lib.rs".to_string(),
        line,
        message: "unwrap".to_string(),
    };
    // The same violation before and after a 40-line drift.
    let (blocking, waived, stale) = allow.apply(vec![diag(5), diag(45)]);
    assert!(blocking.is_empty(), "both drifted sites stay waived");
    assert_eq!(waived.len(), 2);
    assert!(stale.is_empty(), "a matching file-wide entry is not stale");
}

/// The real workspace is lint-clean modulo lint.toml, with no stale waivers.
#[test]
fn workspace_self_check() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <root>/crates/lint");
    let report = run_check(root, &root.join("lint.toml")).expect("workspace scan succeeds");
    assert!(
        report.files > 50,
        "expected to scan the whole workspace, saw only {} files",
        report.files
    );
    let rendered: Vec<String> = report
        .blocking
        .iter()
        .map(|d| format!("{}:{}: {} {}", d.path, d.line, d.lint, d.message))
        .collect();
    assert!(
        report.blocking.is_empty(),
        "workspace has non-allowlisted lint violations:\n{}",
        rendered.join("\n")
    );
    let stale: Vec<String> = report
        .stale
        .iter()
        .map(|e| format!("{} {}", e.lint, e.path))
        .collect();
    assert!(
        report.stale.is_empty(),
        "lint.toml has stale waivers (delete them): {stale:?}"
    );
}

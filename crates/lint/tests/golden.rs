//! Golden fixture tests for `soc-lint`, mirroring `crates/analyze/tests/golden.rs`.
//!
//! `fixtures/bad/*.rs` are known-bad sources (never compiled — they live
//! outside any src tree); each has a committed `.expected` file pinning the
//! exact diagnostics as `line lint-id` pairs. `fixtures/clean/clean.rs`
//! must produce nothing. An intentional lint change must regenerate the
//! `.expected` files (the assertion message shows the new output).
//!
//! The self-check test then lints the real workspace and asserts it is
//! clean modulo `lint.toml` — the same gate CI enforces — so a regression
//! anywhere in the tree fails here first.

use soc_lint::{check_file, run_check, SourceFile};
use std::path::Path;

/// Lint `source` as if it were `crates/<crate_name>/src/fixture.rs` and
/// render one `line lint-id` pair per diagnostic.
fn render(crate_name: &str, source: &str) -> String {
    let path = format!("crates/{crate_name}/src/fixture.rs");
    let sf = SourceFile::parse(&path, crate_name, source);
    let mut out = String::new();
    for d in check_file(&sf) {
        out.push_str(&format!("{} {}\n", d.line, d.lint));
    }
    out
}

fn assert_golden(name: &str, crate_name: &str, source: &str, expected: &str) {
    let got = render(crate_name, source);
    assert_eq!(
        got, expected,
        "fixtures/bad/{name}.expected drifted; if the lint change is \
         intentional, update the expected file to:\n{got}"
    );
}

#[test]
fn determinism_fixture_matches_golden() {
    // Scanned as a sim-state crate so the D-lints apply.
    assert_golden(
        "determinism",
        "power",
        include_str!("fixtures/bad/determinism.rs"),
        include_str!("fixtures/bad/determinism.expected"),
    );
}

#[test]
fn units_fixture_matches_golden() {
    assert_golden(
        "units",
        "power",
        include_str!("fixtures/bad/units.rs"),
        include_str!("fixtures/bad/units.expected"),
    );
}

#[test]
fn robustness_fixture_matches_golden() {
    // Scanned as a non-sim crate: R-lints apply everywhere.
    assert_golden(
        "robustness",
        "analyze",
        include_str!("fixtures/bad/robustness.rs"),
        include_str!("fixtures/bad/robustness.expected"),
    );
}

#[test]
fn profiling_fixture_matches_golden() {
    // Scanned as a sim-state crate: linking soc_prof is a D002. The same
    // source in a bench/prof crate would be clean (checked below).
    assert_golden(
        "profiling",
        "cluster",
        include_str!("fixtures/bad/profiling.rs"),
        include_str!("fixtures/bad/profiling.expected"),
    );
}

#[test]
fn profiling_fixture_is_clean_outside_sim_state() {
    // The carve-out: crates/prof, crates/health, and crates/bench may use
    // wall-clock timers and recorders, so the same source produces no D002
    // there.
    for crate_name in ["prof", "health", "bench"] {
        let got = render(crate_name, include_str!("fixtures/bad/profiling.rs"));
        assert_eq!(
            got, "",
            "soc_prof/soc_health use must be allowed in crates/{crate_name}"
        );
    }
}

#[test]
fn clean_fixture_is_clean() {
    let got = render("power", include_str!("fixtures/clean/clean.rs"));
    assert_eq!(got, "", "the clean fixture must produce no diagnostics");
}

#[test]
fn bad_fixtures_cover_at_least_eight_lint_ids() {
    let mut ids: Vec<String> = Vec::new();
    for (crate_name, source) in [
        ("power", include_str!("fixtures/bad/determinism.rs")),
        ("power", include_str!("fixtures/bad/units.rs")),
        ("analyze", include_str!("fixtures/bad/robustness.rs")),
    ] {
        let sf = SourceFile::parse("crates/x/src/fixture.rs", crate_name, source);
        ids.extend(check_file(&sf).into_iter().map(|d| d.lint.to_string()));
    }
    ids.sort_unstable();
    ids.dedup();
    assert!(
        ids.len() >= 8,
        "bad fixtures must exercise at least 8 distinct lints, got {ids:?}"
    );
}

/// The real workspace is lint-clean modulo lint.toml, with no stale waivers.
#[test]
fn workspace_self_check() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <root>/crates/lint");
    let report = run_check(root, &root.join("lint.toml")).expect("workspace scan succeeds");
    assert!(
        report.files > 50,
        "expected to scan the whole workspace, saw only {} files",
        report.files
    );
    let rendered: Vec<String> = report
        .blocking
        .iter()
        .map(|d| format!("{}:{}: {} {}", d.path, d.line, d.lint, d.message))
        .collect();
    assert!(
        report.blocking.is_empty(),
        "workspace has non-allowlisted lint violations:\n{}",
        rendered.join("\n")
    );
    let stale: Vec<String> = report
        .stale
        .iter()
        .map(|e| format!("{} {}", e.lint, e.path))
        .collect();
    assert!(
        report.stale.is_empty(),
        "lint.toml has stale waivers (delete them): {stale:?}"
    );
}

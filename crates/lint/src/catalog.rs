//! The lint catalog: every lint `soc-lint` knows, with the rationale and a
//! waiver recipe. `soc-lint list` renders this table; DESIGN.md documents it.

use std::fmt;

/// Lint category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// D-lints: bit-determinism per seed. Violations make causal-trace
    /// diffs (PR 2) meaningless because runs stop being byte-identical.
    Determinism,
    /// U-lints: physical quantities behind `power::units` newtypes so
    /// watt/megahertz arithmetic cannot silently mix scales.
    Units,
    /// R-lints: no panicking paths in library code; casts on physical
    /// values must be explicit conversions.
    Robustness,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Determinism => "determinism",
            Category::Units => "units",
            Category::Robustness => "robustness",
        };
        f.write_str(s)
    }
}

/// Static description of one lint.
pub struct LintInfo {
    /// Stable id (`D001`); allowlist entries reference this.
    pub id: &'static str,
    /// Short name for listings.
    pub name: &'static str,
    pub category: Category,
    /// One-line summary shown with each diagnostic.
    pub summary: &'static str,
    /// Why the invariant matters for SmartOClock specifically.
    pub rationale: &'static str,
    /// A minimal violating snippet.
    pub example: &'static str,
}

/// Every lint, in id order. Checks in `checks.rs` must emit only these ids
/// (enforced by a test).
pub const CATALOG: &[LintInfo] = &[
    LintInfo {
        id: "D001",
        name: "hash-collections-in-sim-state",
        category: Category::Determinism,
        summary: "HashMap/HashSet in a sim-state crate; use BTreeMap/BTreeSet",
        rationale: "Hash iteration order is randomized per process, so any loop over a \
                    hash collection in simulation state produces run-to-run differences \
                    that break byte-identical traces (and with them `soc-analyze diff`).",
        example: "use std::collections::HashMap;",
    },
    LintInfo {
        id: "D002",
        name: "wall-clock-in-sim-state",
        category: Category::Determinism,
        summary:
            "std::time::Instant/SystemTime, soc_prof, or soc_health in a sim-state crate; use simcore::time",
        rationale: "Wall-clock reads smuggle host timing into simulation state; all sim \
                    time must flow through SimTime so a seed fully determines a run. \
                    This includes importing the soc_prof profiling and soc_health \
                    recording crates: observability lives in crates/prof, crates/health \
                    and the bench binaries only, and sim-state crates expose pure probe \
                    hooks (soc_cluster::probe) that the bench side times and records.",
        example: "let t0 = std::time::Instant::now();",
    },
    LintInfo {
        id: "D003",
        name: "env-in-sim-state",
        category: Category::Determinism,
        summary: "std::env in a sim-state crate; configuration must be explicit",
        rationale: "Environment lookups make behaviour depend on invisible host state; \
                    sim crates take configuration as values so runs are reproducible \
                    from their inputs alone (bench binaries may read SOC_TRACE — they \
                    are not sim-state crates).",
        example: "let mode = std::env::var(\"MODE\");",
    },
    LintInfo {
        id: "D004",
        name: "external-rng-in-sim-state",
        category: Category::Determinism,
        summary: "rand/thread_rng in a sim-state crate; randomness only via simcore::rng::Pcg32",
        rationale: "thread_rng and friends seed from the OS; every random draw in the sim \
                    path must come from the run's seeded Pcg32 stream or replays diverge.",
        example: "let x = rand::thread_rng().gen::<f64>();",
    },
    LintInfo {
        id: "D005",
        name: "raw-threading-in-sim-state",
        category: Category::Determinism,
        summary: "std::thread/channel use in a sim-state crate; shard work through simcore::par",
        rationale: "Ad-hoc threads and channels interleave sim-state updates and telemetry in \
                    scheduler order, which varies run to run and with core count; \
                    simcore::par::par_map shards work deterministically and merges results \
                    in canonical input order, so `--threads N` stays byte-identical to \
                    `--threads 1`.",
        example: "std::thread::spawn(move || sim.step());",
    },
    LintInfo {
        id: "U001",
        name: "raw-float-power-parameter",
        category: Category::Units,
        summary: "power-named fn parameter typed as a raw float; use power::units::Watts",
        rationale: "The admission-control and budget-enforcement paths are constant \
                    watt arithmetic; a raw f64 watt parameter is one call site away \
                    from a kilowatt/watt mixup that silently breaks capping (the \
                    CloudPowerCap failure mode).",
        example: "fn set_budget(&mut self, budget_w: f64)",
    },
    LintInfo {
        id: "U002",
        name: "raw-number-frequency-parameter",
        category: Category::Units,
        summary: "frequency-named fn parameter typed as a raw number; use power::units::MegaHertz",
        rationale: "Frequency plans mix base/turbo/overclock values in MHz; a raw u32 \
                    or f64 frequency accepts GHz-scaled values without complaint.",
        example: "fn cap(&mut self, freq_mhz: u32)",
    },
    LintInfo {
        id: "U003",
        name: "raw-number-quantity-field",
        category: Category::Units,
        summary: "power/frequency-named struct field typed as a raw number; use the units newtypes",
        rationale: "Struct fields outlive their constructor's discipline: a raw f64 \
                    `power` field re-opens unit confusion at every read site.",
        example: "struct Server { budget_w: f64 }",
    },
    LintInfo {
        id: "R001",
        name: "unwrap-in-library-code",
        category: Category::Robustness,
        summary:
            "unwrap()/expect() outside #[cfg(test)]; return a Result or document the invariant",
        rationale: "A panicking accessor in the sim path aborts a whole multi-day \
                    cluster sweep; library code propagates errors, tests may unwrap.",
        example: "let v = map.get(&k).unwrap();",
    },
    LintInfo {
        id: "R002",
        name: "panic-in-library-code",
        category: Category::Robustness,
        summary: "panic!/todo!/unimplemented! outside #[cfg(test)]",
        rationale: "Explicit panics in library code are unfinished work or unstated \
                    invariants; both belong in the type system or an allowlist entry \
                    that names the invariant.",
        example: "None => panic!(\"no grant\")",
    },
    LintInfo {
        id: "R003",
        name: "lossy-cast-on-quantity",
        category: Category::Robustness,
        summary:
            "`as` integer cast on a time/power-named value; use a checked or documented conversion",
        rationale: "`x as u64` on a sim-time or wattage silently truncates and \
                    saturates; conversions on physical values must be explicit about \
                    rounding so two code paths cannot round differently.",
        example: "let whole = watts as u64;",
    },
];

/// Look up a lint by id.
pub fn lint(id: &str) -> Option<&'static LintInfo> {
    CATALOG.iter().find(|l| l.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_ordered_within_category() {
        let ids: Vec<&str> = CATALOG.iter().map(|l| l.id).collect();
        let mut deduped = ids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(ids.len(), deduped.len(), "catalog ids must be unique");
        // Within each category prefix, ids ascend.
        for pair in ids.windows(2) {
            if pair[0].as_bytes()[0] == pair[1].as_bytes()[0] {
                assert!(pair[0] < pair[1], "{} must precede {}", pair[0], pair[1]);
            }
        }
    }

    #[test]
    fn lookup() {
        assert_eq!(
            lint("D001").map(|l| l.name),
            Some("hash-collections-in-sim-state")
        );
        assert!(lint("Z999").is_none());
    }
}

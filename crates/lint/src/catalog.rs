//! The lint catalog: every lint `soc-lint` knows, with the rationale and a
//! waiver recipe. `soc-lint list` renders this table; DESIGN.md documents it.

use std::fmt;

/// Lint category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// A-lints: architecture layering. The `[layers]` section of lint.toml
    /// assigns every crate to a tier and declares which tiers each may use;
    /// A-lints enforce those edges directly (A001) and transitively (A002).
    Architecture,
    /// D-lints: bit-determinism per seed. Violations make causal-trace
    /// diffs (PR 2) meaningless because runs stop being byte-identical.
    Determinism,
    /// U-lints: physical quantities behind `power::units` newtypes so
    /// watt/megahertz arithmetic cannot silently mix scales.
    Units,
    /// R-lints: no panicking paths in library code; casts on physical
    /// values must be explicit conversions.
    Robustness,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Architecture => "architecture",
            Category::Determinism => "determinism",
            Category::Units => "units",
            Category::Robustness => "robustness",
        };
        f.write_str(s)
    }
}

/// Static description of one lint.
pub struct LintInfo {
    /// Stable id (`D001`); allowlist entries reference this.
    pub id: &'static str,
    /// Short name for listings.
    pub name: &'static str,
    pub category: Category,
    /// One-line summary shown with each diagnostic.
    pub summary: &'static str,
    /// Why the invariant matters for SmartOClock specifically.
    pub rationale: &'static str,
    /// A minimal violating snippet.
    pub example: &'static str,
}

/// Every lint, in id order. Checks in `checks.rs` must emit only these ids
/// (enforced by a test).
pub const CATALOG: &[LintInfo] = &[
    LintInfo {
        id: "A001",
        name: "layer-violation",
        category: Category::Architecture,
        summary: "reference to a workspace crate in a layer this crate's layer may not use",
        rationale: "The workspace is tiered — sim-state, emit, observation, tooling — and \
                    the tiers are declared once in the `[layers]` section of lint.toml \
                    rather than hard-coded per lint. Sim-state linking observability \
                    (soc_prof, soc_health) would let bench-side timers and recorders \
                    leak host behaviour into seed-determined simulation state; the \
                    sanctioned pattern is pure probe hooks (soc_cluster::probe) that \
                    the bench side attaches to. Moving a crate between tiers is a \
                    one-line config change, not a lint release.",
        example: "use soc_health::Recorder; // in crates/power",
    },
    LintInfo {
        id: "A002",
        name: "transitive-layer-violation",
        category: Category::Architecture,
        summary: "a forbidden layer is reachable through an allowed intermediary crate",
        rationale: "A001 only sees direct references, so an intermediary crate in an \
                    allowed layer could re-export a forbidden one and launder the \
                    dependency. A002 walks the workspace crate graph: if any path from \
                    a crate reaches a layer its own layer may not use, the first hop of \
                    that path is flagged with the full chain, so the fix site is always \
                    a real reference in the offending crate.",
        example: "use helper::recorder; // helper itself uses soc_health",
    },
    LintInfo {
        id: "D001",
        name: "hash-collections-in-sim-state",
        category: Category::Determinism,
        summary: "HashMap/HashSet in a sim-state crate; use BTreeMap/BTreeSet",
        rationale: "Hash iteration order is randomized per process, so any loop over a \
                    hash collection in simulation state produces run-to-run differences \
                    that break byte-identical traces (and with them `soc-analyze diff`).",
        example: "use std::collections::HashMap;",
    },
    LintInfo {
        id: "D002",
        name: "wall-clock-in-sim-state",
        category: Category::Determinism,
        summary: "std::time::Instant/SystemTime in a sim-state crate; use simcore::time",
        rationale: "Wall-clock reads smuggle host timing into simulation state; all sim \
                    time must flow through SimTime so a seed fully determines a run. \
                    (Linking the observability crates from sim-state is A001's job; \
                    wall-clock reads laundered through helper crates are D006's.)",
        example: "let t0 = std::time::Instant::now();",
    },
    LintInfo {
        id: "D003",
        name: "env-in-sim-state",
        category: Category::Determinism,
        summary: "std::env in a sim-state crate; configuration must be explicit",
        rationale: "Environment lookups make behaviour depend on invisible host state; \
                    sim crates take configuration as values so runs are reproducible \
                    from their inputs alone (bench binaries may read SOC_TRACE — they \
                    are not sim-state crates).",
        example: "let mode = std::env::var(\"MODE\");",
    },
    LintInfo {
        id: "D004",
        name: "external-rng-in-sim-state",
        category: Category::Determinism,
        summary: "rand/thread_rng in a sim-state crate; randomness only via simcore::rng::Pcg32",
        rationale: "thread_rng and friends seed from the OS; every random draw in the sim \
                    path must come from the run's seeded Pcg32 stream or replays diverge.",
        example: "let x = rand::thread_rng().gen::<f64>();",
    },
    LintInfo {
        id: "D005",
        name: "raw-threading-in-sim-state",
        category: Category::Determinism,
        summary: "std::thread/channel use in a sim-state crate; shard work through simcore::par",
        rationale: "Ad-hoc threads and channels interleave sim-state updates and telemetry in \
                    scheduler order, which varies run to run and with core count; \
                    simcore::par::par_map shards work deterministically and merges results \
                    in canonical input order, so `--threads N` stays byte-identical to \
                    `--threads 1`.",
        example: "std::thread::spawn(move || sim.step());",
    },
    LintInfo {
        id: "D006",
        name: "laundered-nondeterminism",
        category: Category::Determinism,
        summary: "a sim-state call site reaches a wall-clock/env/rng source through a helper crate",
        rationale: "D002–D004 flag non-deterministic sources written directly in \
                    sim-state crates, but a helper crate in an allowed layer can wrap \
                    `SystemTime::now()` in `now_ms()` and every file still lints clean. \
                    D006 propagates taint from the sources backward along the workspace \
                    call graph and flags the sim-state call site, naming the full chain \
                    down to the source so the plumbing fix (pass SimTime/Pcg32 in) is \
                    obvious.",
        example: "let t = soc_telemetry::clock::now_ms(); // wraps SystemTime",
    },
    LintInfo {
        id: "U001",
        name: "raw-float-power-parameter",
        category: Category::Units,
        summary: "power-named fn parameter typed as a raw float; use power::units::Watts",
        rationale: "The admission-control and budget-enforcement paths are constant \
                    watt arithmetic; a raw f64 watt parameter is one call site away \
                    from a kilowatt/watt mixup that silently breaks capping (the \
                    CloudPowerCap failure mode).",
        example: "fn set_budget(&mut self, budget_w: f64)",
    },
    LintInfo {
        id: "U002",
        name: "raw-number-frequency-parameter",
        category: Category::Units,
        summary: "frequency-named fn parameter typed as a raw number; use power::units::MegaHertz",
        rationale: "Frequency plans mix base/turbo/overclock values in MHz; a raw u32 \
                    or f64 frequency accepts GHz-scaled values without complaint.",
        example: "fn cap(&mut self, freq_mhz: u32)",
    },
    LintInfo {
        id: "U003",
        name: "raw-number-quantity-field",
        category: Category::Units,
        summary: "power/frequency-named struct field typed as a raw number; use the units newtypes",
        rationale: "Struct fields outlive their constructor's discipline: a raw f64 \
                    `power` field re-opens unit confusion at every read site.",
        example: "struct Server { budget_w: f64 }",
    },
    LintInfo {
        id: "U004",
        name: "raw-unit-return",
        category: Category::Units,
        summary: "unit-named pub fn returns a bare raw number; return the units newtype",
        rationale: "U001–U003 keep raw watts and megahertz out of parameters and \
                    fields, but a `pub fn draw_w() -> f64` leaks the quantity back out \
                    of the API unlabeled, and every caller re-decides what scale it is. \
                    Returning Watts/MegaHertz closes the unit-flow loop: quantities \
                    enter and leave crate boundaries typed.",
        example: "pub fn draw_w(&self) -> f64",
    },
    LintInfo {
        id: "R001",
        name: "unwrap-in-library-code",
        category: Category::Robustness,
        summary:
            "unwrap()/expect() outside #[cfg(test)]; return a Result or document the invariant",
        rationale: "A panicking accessor in the sim path aborts a whole multi-day \
                    cluster sweep; library code propagates errors, tests may unwrap.",
        example: "let v = map.get(&k).unwrap();",
    },
    LintInfo {
        id: "R002",
        name: "panic-in-library-code",
        category: Category::Robustness,
        summary: "panic!/todo!/unimplemented! outside #[cfg(test)]",
        rationale: "Explicit panics in library code are unfinished work or unstated \
                    invariants; both belong in the type system or an allowlist entry \
                    that names the invariant.",
        example: "None => panic!(\"no grant\")",
    },
    LintInfo {
        id: "R003",
        name: "lossy-cast-on-quantity",
        category: Category::Robustness,
        summary:
            "`as` integer cast on a time/power-named value; use a checked or documented conversion",
        rationale: "`x as u64` on a sim-time or wattage silently truncates and \
                    saturates; conversions on physical values must be explicit about \
                    rounding so two code paths cannot round differently.",
        example: "let whole = watts as u64;",
    },
    LintInfo {
        id: "R004",
        name: "panic-reachable-from-sim-api",
        category: Category::Robustness,
        summary: "a sim-state pub fn's call chain reaches an unwrap/panic/indexing site",
        rationale: "R001/R002 flag panic sites where they are written, but a sim-state \
                    `pub fn` can reach one three helpers deep and abort a multi-hour \
                    sweep from inside a dependency. R004 walks the workspace call graph \
                    from every panic site (unwrap/expect, panic!-family, slice \
                    indexing) back to the sim-state public API. Two barriers encode \
                    accepted contracts: a `# Panics` doc section anywhere on the chain, \
                    and a lint.toml waiver covering the site itself.",
        example: "pub fn admit(&mut self) { self.pick_server() } // pick_server unwraps",
    },
];

/// Look up a lint by id.
pub fn lint(id: &str) -> Option<&'static LintInfo> {
    CATALOG.iter().find(|l| l.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_ordered_within_category() {
        let ids: Vec<&str> = CATALOG.iter().map(|l| l.id).collect();
        let mut deduped = ids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(ids.len(), deduped.len(), "catalog ids must be unique");
        // Within each category prefix, ids ascend.
        for pair in ids.windows(2) {
            if pair[0].as_bytes()[0] == pair[1].as_bytes()[0] {
                assert!(pair[0] < pair[1], "{} must precede {}", pair[0], pair[1]);
            }
        }
    }

    #[test]
    fn lookup() {
        assert_eq!(
            lint("D001").map(|l| l.name),
            Some("hash-collections-in-sim-state")
        );
        assert!(lint("Z999").is_none());
    }
}

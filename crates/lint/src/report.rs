//! Rendering: human diagnostics for terminals, a JSON report for CI
//! artifacts, and the catalog listing.

use crate::allowlist::AllowEntry;
use crate::catalog::{self, CATALOG};
use crate::checks::Diagnostic;

/// Everything one `check` run produced, post-allowlist.
pub struct CheckReport {
    /// Violations not covered by the allowlist — these fail the build.
    pub blocking: Vec<Diagnostic>,
    /// Violations waived by `lint.toml`.
    pub waived: Vec<Diagnostic>,
    /// Allowlist entries that matched nothing (stale; should be deleted).
    pub stale: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files: usize,
}

impl CheckReport {
    /// Human-readable rendering, one `path:line: ID summary — detail` per
    /// blocking violation.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.blocking {
            let summary = catalog::lint(d.lint).map_or("", |l| l.summary);
            out.push_str(&format!(
                "{}:{}: {} {}\n    {}\n",
                d.path, d.line, d.lint, summary, d.message
            ));
        }
        if !self.stale.is_empty() {
            out.push_str("\nstale lint.toml entries (matched nothing; delete them):\n");
            for e in &self.stale {
                let line = e.line.map_or(String::new(), |l| format!(":{l}"));
                out.push_str(&format!("  {} {}{}\n", e.lint, e.path, line));
            }
        }
        out.push_str(&format!(
            "\nfiles analyzed: {}; {} blocking violation(s), {} waived by lint.toml, {} stale waiver(s)\n",
            self.files,
            self.blocking.len(),
            self.waived.len(),
            self.stale.len()
        ));
        out
    }

    /// JSON report (the CI artifact). Shape:
    /// `{"files": N, "blocking": [...], "waived": [...], "stale": [...]}`
    /// with each violation as `{"lint", "path", "line", "message"}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files\":{},", self.files));
        out.push_str("\"blocking\":");
        push_diags(&mut out, &self.blocking);
        out.push_str(",\"waived\":");
        push_diags(&mut out, &self.waived);
        out.push_str(",\"stale\":[");
        for (i, e) in self.stale.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":{},\"path\":{}",
                json_string(&e.lint),
                json_string(&e.path)
            ));
            if let Some(l) = e.line {
                out.push_str(&format!(",\"line\":{l}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out.push('\n');
        out
    }
}

fn push_diags(out: &mut String, diags: &[Diagnostic]) {
    out.push('[');
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            json_string(d.lint),
            json_string(&d.path),
            d.line,
            json_string(&d.message)
        ));
    }
    out.push(']');
}

/// Escape a string for JSON output (shared with the SARIF renderer).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `list` subcommand: the full catalog with rationale and waiver recipe.
pub fn render_catalog() -> String {
    let mut out = String::from("soc-lint catalog\n================\n");
    for l in CATALOG {
        out.push_str(&format!(
            "\n{} [{}] {}\n  {}\n  rationale: {}\n  example:   {}\n  waive:     [[allow]] lint = \"{}\" in lint.toml with a justification\n",
            l.id, l.category, l.name, l.summary, l.rationale, l.example, l.id
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CheckReport {
        CheckReport {
            blocking: vec![Diagnostic {
                lint: "D001",
                path: "crates/power/src/x.rs".to_string(),
                line: 7,
                message: "HashMap in sim-state crate `power`".to_string(),
            }],
            waived: vec![],
            stale: vec![AllowEntry {
                lint: "R001".to_string(),
                path: "crates/core/src/y.rs".to_string(),
                line: Some(3),
                justification: "old".to_string(),
            }],
            files: 12,
        }
    }

    #[test]
    fn human_render_includes_position_and_stale() {
        let text = report().render_human();
        assert!(text.contains("crates/power/src/x.rs:7: D001"));
        assert!(text.contains("stale lint.toml entries"));
        assert!(text.contains("files analyzed: 12; 1 blocking"));
    }

    #[test]
    fn json_render_is_wellformed() {
        let json = report().render_json();
        assert!(json.starts_with("{\"files\":12,"));
        assert!(json.contains("\"blocking\":[{\"lint\":\"D001\""));
        assert!(json.contains(
            "\"stale\":[{\"lint\":\"R001\",\"path\":\"crates/core/src/y.rs\",\"line\":3}]"
        ));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn catalog_lists_every_lint() {
        let text = render_catalog();
        for l in CATALOG {
            assert!(text.contains(l.id));
        }
    }
}

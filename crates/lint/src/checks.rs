//! Per-file lint implementations. Each check is a token- or item-pattern
//! query over a [`SourceFile`] and its parsed [`FileModel`]; together they
//! emit only ids present in the catalog.
//!
//! Which crates count as simulation state is no longer a hard-coded list:
//! it comes from the `[layers]` section of `lint.toml` (or the built-in
//! default in [`crate::config::Layers::builtin_default`]). The same layer
//! model drives A001 here and A002/D006/R004 in the workspace passes.

use crate::config::Layers;
use crate::graph::ident_names_crate;
use crate::lexer::{Token, TokenKind};
use crate::parser::{fn_params, struct_fields, FileModel};
use crate::source::SourceFile;

/// One lint violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Catalog id (`D001`).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What was found, concretely.
    pub message: String,
}

/// Run every applicable per-file lint over one file. Diagnostics are
/// deduplicated per `(lint, line)` and sorted by `(line, lint)`.
pub fn check_file(src: &SourceFile, model: &FileModel, layers: &Layers) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let sim_state = layers.sim_state_crates().contains(src.crate_name.as_str());
    if sim_state {
        determinism_lints(src, &mut diags);
        unit_lints(src, &mut diags);
        unit_flow_lints(src, model, &mut diags);
    }
    architecture_lints(src, model, layers, &mut diags);
    if !src.is_bin {
        robustness_lints(src, &mut diags);
    }
    diags.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    diags.dedup_by(|a, b| a.lint == b.lint && a.line == b.line);
    diags
}

fn push(diags: &mut Vec<Diagnostic>, src: &SourceFile, lint: &'static str, line: u32, msg: String) {
    diags.push(Diagnostic {
        lint,
        path: src.path.clone(),
        line,
        message: msg,
    });
}

// ---------------------------------------------------------------- A-lints --

/// A001: a reference to a workspace crate whose layer this crate's layer may
/// not use. Purely declarative — the tiers and their allowed edges live in
/// `lint.toml`, so moving a crate between layers is a config change, not a
/// lint release. Transitive violations (an allowed intermediary that itself
/// reaches a forbidden layer) are A002's job in the workspace pass.
fn architecture_lints(
    src: &SourceFile,
    model: &FileModel,
    layers: &Layers,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(my_layer) = layers.layer_of(&src.crate_name) else {
        return; // unassigned crates carry no layering obligations
    };
    for root in &model.path_roots {
        let Some(target) = layers
            .all_crates()
            .into_iter()
            .find(|c| ident_names_crate(&root.name, c))
        else {
            continue;
        };
        if target == src.crate_name {
            continue;
        }
        let Some(target_layer) = layers.layer_of(target) else {
            continue;
        };
        if !layers.allows(my_layer, target_layer) {
            push(
                diags,
                src,
                "A001",
                root.line,
                format!(
                    "crate `{}` (layer `{my_layer}`) references `{}` (layer `{target_layer}`), \
                     which `[layers.{my_layer}]` in lint.toml does not allow",
                    src.crate_name, root.name
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- D-lints --

/// D001–D005 apply to the whole file, test code included: a flaky test from
/// hash-order or wall-clock dependence costs the same debugging time as a
/// flaky simulation. There are no hard-coded path carve-outs: the sanctioned
/// threading home (`simcore::par`) holds a justified file-wide D005 waiver in
/// `lint.toml` like any other exception.
fn determinism_lints(src: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => push(
                diags,
                src,
                "D001",
                t.line,
                format!("{} in sim-state crate `{}`; hash iteration order is per-process random — use BTreeMap/BTreeSet", t.text, src.crate_name),
            ),
            "Instant" | "SystemTime" => push(
                diags,
                src,
                "D002",
                t.line,
                format!("std::time::{} reads the wall clock; sim time must come from simcore::time::SimTime", t.text),
            ),
            "env" if path_prefix(toks, i, "std") => push(
                diags,
                src,
                "D003",
                t.line,
                "std::env read in sim-state crate; pass configuration explicitly".to_string(),
            ),
            "thread_rng" => push(
                diags,
                src,
                "D004",
                t.line,
                "thread_rng seeds from the OS; draw from the run's simcore::rng::Pcg32 stream".to_string(),
            ),
            "rand" if is_crate_use(toks, i) => push(
                diags,
                src,
                "D004",
                t.line,
                "the `rand` crate is non-deterministic across versions and platforms; use simcore::rng::Pcg32".to_string(),
            ),
            "thread" if path_prefix(toks, i, "std") => push(
                diags,
                src,
                "D005",
                t.line,
                "std::thread in sim-state crate; scheduler interleaving varies per run — shard through simcore::par::par_map".to_string(),
            ),
            "mpsc" => push(
                diags,
                src,
                "D005",
                t.line,
                "channel use in sim-state crate; message arrival order is scheduler-dependent — shard through simcore::par::par_map".to_string(),
            ),
            "crossbeam" if is_crate_use(toks, i) => push(
                diags,
                src,
                "D005",
                t.line,
                "crossbeam channels in sim-state crate; message arrival order is scheduler-dependent — shard through simcore::par::par_map".to_string(),
            ),
            _ => {}
        }
    }
}

/// Is token `i` the segment right after `prefix ::`?
pub(crate) fn path_prefix(toks: &[Token], i: usize, prefix: &str) -> bool {
    i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident(prefix)
}

/// Is the identifier at `i` used as an external crate path root
/// (`rand::…` or `use rand…`)?
pub(crate) fn is_crate_use(toks: &[Token], i: usize) -> bool {
    let followed_by_path = toks.get(i + 1).is_some_and(|t| t.is_punct("::"));
    let after_use = i >= 1 && toks[i - 1].is_ident("use");
    // `foo::rand::…` is a module named rand, not the crate.
    (followed_by_path && !(i >= 1 && toks[i - 1].is_punct("::"))) || after_use
}

// ---------------------------------------------------------------- U-lints --

/// Name-pattern fragments that mark a value as a *derived* quantity (ratio,
/// scaling factor, exponent) where a bare float is the correct type.
const DIMENSIONLESS_MARKERS: &[&str] = &[
    "ratio", "frac", "scale", "factor", "coeff", "slope", "alpha", "exponent", "pct", "percent",
    "share", "weight", "norm", "prob", "util", "penalty", "risk",
];

fn is_dimensionless(name: &str) -> bool {
    DIMENSIONLESS_MARKERS.iter().any(|m| name.contains(m))
}

/// Does this identifier name a power quantity that should be `Watts`?
fn is_power_name(name: &str) -> bool {
    if is_dimensionless(name) {
        return false;
    }
    name.ends_with("_w")
        || name.contains("watt")
        || name == "power"
        || name.starts_with("power_")
        || name.ends_with("_power")
        || name == "budget"
        || name.starts_with("budget_")
        || name.ends_with("_budget")
}

/// Does this identifier name a frequency that should be `MegaHertz`?
fn is_freq_name(name: &str) -> bool {
    if is_dimensionless(name) {
        return false;
    }
    name.contains("mhz")
        || name == "freq"
        || name.starts_with("freq")
        || name.ends_with("_freq")
        || name.contains("frequency")
}

const FLOAT_TYPES: &[&str] = &["f64", "f32"];
const NUMERIC_TYPES: &[&str] = &[
    "f64", "f32", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize",
];

/// U001/U002 on `fn` parameters and U003 on struct fields. Test code is
/// scanned too: a test helper taking `watts: f64` reintroduces the exact
/// call-site ambiguity the newtypes exist to remove.
fn unit_lints(src: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some((params, end)) = fn_params(toks, i) {
                for (name, line, ty) in params {
                    check_quantity(src, diags, "parameter", &name, line, &ty, true);
                }
                i = end;
                continue;
            }
        } else if toks[i].is_ident("struct") {
            if let Some((fields, _, _, end)) = struct_fields(toks, i) {
                for (name, line, ty) in fields {
                    check_quantity(src, diags, "field", &name, line, &ty, false);
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
}

/// Emit U001/U002/U003 for one named, typed slot if its name/type pair is a
/// raw physical quantity.
fn check_quantity(
    src: &SourceFile,
    diags: &mut Vec<Diagnostic>,
    slot: &str,
    name: &str,
    line: u32,
    ty: &[Token],
    is_param: bool,
) {
    // Only a bare primitive type is "raw": `Vec<f64>`, `Option<Watts>`, or
    // references are aggregate shapes the newtype rule does not dictate.
    let [only] = ty else { return };
    let raw_float = FLOAT_TYPES.contains(&only.text.as_str());
    let raw_number = NUMERIC_TYPES.contains(&only.text.as_str());
    if is_power_name(name) && raw_float {
        let lint = if is_param { "U001" } else { "U003" };
        push(
            diags,
            src,
            lint,
            line,
            format!(
                "power-named {slot} `{name}: {}`; use soc_power::units::Watts",
                only.text
            ),
        );
    } else if is_freq_name(name) && raw_number {
        let lint = if is_param { "U002" } else { "U003" };
        push(
            diags,
            src,
            lint,
            line,
            format!(
                "frequency-named {slot} `{name}: {}`; use soc_power::units::MegaHertz",
                only.text
            ),
        );
    }
}

/// U004: a unit-suffixed `pub fn` (`*_w`, `*watt*`, `*mhz*`) returning a
/// bare raw number leaks an unlabeled physical quantity out of the crate's
/// API — the return-side twin of U001/U002, which cover the parameters.
fn unit_flow_lints(src: &SourceFile, model: &FileModel, diags: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        if !f.is_pub {
            continue;
        }
        let [only] = &f.ret[..] else { continue };
        let power = is_power_name(&f.name) && FLOAT_TYPES.contains(&only.text.as_str());
        let freq = is_freq_name(&f.name) && NUMERIC_TYPES.contains(&only.text.as_str());
        if power || freq {
            let newtype = if power { "Watts" } else { "MegaHertz" };
            push(
                diags,
                src,
                "U004",
                f.line,
                format!(
                    "unit-named pub fn `{}` returns raw `{}`; return soc_power::units::{newtype}",
                    f.name, only.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- R-lints --

/// Identifier patterns for sim-time values (R003).
fn is_time_name(name: &str) -> bool {
    name.ends_with("_s")
        || name.ends_with("_secs")
        || name.ends_with("_us")
        || name.ends_with("_ms")
        || name.ends_with("_ns")
        || name.contains("time")
        || name.contains("secs")
}

/// R001–R003 on non-test tokens.
fn robustness_lints(src: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let toks = &src.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || src.in_test[i] {
            continue;
        }
        match t.text.as_str() {
            // `.unwrap()` with no argument; `.expect("…")` only with a string
            // message — a non-string argument means an ordinary method that
            // happens to be named expect (the JSON parser has one).
            "unwrap"
                if i >= 1
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(")")) =>
            {
                push(
                    diags,
                    src,
                    "R001",
                    t.line,
                    ".unwrap() in library code; return a Result or justify the invariant in lint.toml".to_string(),
                );
            }
            "expect"
                if i >= 1
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && toks.get(i + 2).is_some_and(|n| n.text == "\"…\"") =>
            {
                push(
                    diags,
                    src,
                    "R001",
                    t.line,
                    ".expect(\"…\") in library code; return a Result or justify the invariant in lint.toml".to_string(),
                );
            }
            "panic" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                push(
                    diags,
                    src,
                    "R002",
                    t.line,
                    format!(
                        "{}! in library code; encode the invariant or return an error",
                        t.text
                    ),
                );
            }
            name if (is_time_name(name) || is_power_name(name))
                && toks.get(i + 1).is_some_and(|n| n.is_ident("as"))
                && toks
                    .get(i + 2)
                    .is_some_and(|n| NUMERIC_TYPES[2..].contains(&n.text.as_str())) =>
            {
                push(
                    diags,
                    src,
                    "R003",
                    t.line,
                    format!("`{} as {}` truncates a physical quantity; use an explicit rounding conversion", name, toks[i + 2].text),
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::parser::parse_file;

    fn lint_src(crate_name: &str, path: &str, src: &str) -> Vec<(String, u32)> {
        let sf = SourceFile::parse(path, crate_name, src);
        let model = parse_file(&sf);
        check_file(&sf, &model, &Layers::builtin_default())
            .into_iter()
            .map(|d| (d.lint.to_string(), d.line))
            .collect()
    }

    fn sim(src: &str) -> Vec<(String, u32)> {
        lint_src("power", "crates/power/src/x.rs", src)
    }

    #[test]
    fn d001_hash_collections() {
        assert_eq!(
            sim("use std::collections::HashMap;"),
            [("D001".to_string(), 1)]
        );
        assert_eq!(
            sim("let s: HashSet<u32> = HashSet::new();"),
            [("D001".to_string(), 1)]
        );
        assert!(sim("use std::collections::BTreeMap;").is_empty());
        // Non-sim crate: no D-lint.
        assert!(lint_src(
            "analyze",
            "crates/analyze/src/x.rs",
            "use std::collections::HashMap;"
        )
        .is_empty());
    }

    #[test]
    fn d002_wall_clock() {
        assert_eq!(sim("let t = Instant::now();"), [("D002".to_string(), 1)]);
        assert_eq!(
            sim("let t = std::time::SystemTime::now();"),
            [("D002".to_string(), 1)]
        );
    }

    #[test]
    fn a001_layer_violations() {
        // Sim-state may not reference observation-layer crates…
        assert_eq!(sim("use soc_prof::Profiler;"), [("A001".to_string(), 1)]);
        assert_eq!(sim("use soc_health::Recorder;"), [("A001".to_string(), 1)]);
        // …or tooling.
        assert_eq!(sim("use soc_bench::Runner;"), [("A001".to_string(), 1)]);
        // The emit layer is an allowed edge from sim-state.
        assert!(sim("use soc_telemetry::Sink;").is_empty());
        // A local identifier that merely shares the name is not a reference.
        assert!(sim("let soc_health = 1;").is_empty());
        // Observation may read sim-state and emit, and its own layer.
        assert!(lint_src(
            "health",
            "crates/health/src/x.rs",
            "use soc_telemetry::Row;\nuse soc_cluster::Cluster;\nuse soc_analyze::diff;"
        )
        .is_empty());
        // Tooling may use everything.
        assert!(lint_src(
            "bench",
            "crates/bench/src/x.rs",
            "use soc_health::Recorder;\nuse soc_cluster::Cluster;"
        )
        .is_empty());
        // Observation may not reach tooling.
        assert_eq!(
            lint_src(
                "analyze",
                "crates/analyze/src/x.rs",
                "use soc_bench::Runner;"
            ),
            [("A001".to_string(), 1)]
        );
    }

    #[test]
    fn d003_env_needs_std_prefix() {
        assert_eq!(
            sim("let v = std::env::var(\"X\");"),
            [("D003".to_string(), 1)]
        );
        // A local module named env is not std::env.
        assert!(sim("let v = config::env::var();").is_empty());
    }

    #[test]
    fn d004_rand() {
        assert_eq!(
            sim("let r = rand::thread_rng();"),
            [("D004".to_string(), 1)]
        );
        assert_eq!(sim("use rand::Rng;"), [("D004".to_string(), 1)]);
        // Our own rng module is fine.
        assert!(sim("use simcore::rng::Pcg32;").is_empty());
        // A field access named rand is fine.
        assert!(sim("let x = cfg.rand;").is_empty());
    }

    #[test]
    fn d005_raw_threading() {
        assert_eq!(sim("use std::thread;"), [("D005".to_string(), 1)]);
        assert_eq!(
            sim("std::thread::spawn(|| step());"),
            [("D005".to_string(), 1)]
        );
        assert_eq!(sim("use std::sync::mpsc;"), [("D005".to_string(), 1)]);
        assert_eq!(
            sim("use crossbeam::channel::bounded;"),
            [("D005".to_string(), 1)]
        );
        // No hard-coded carve-out anymore: the par abstraction flags like any
        // other sim-state file and holds a justified waiver in lint.toml.
        assert_eq!(
            lint_src(
                "simcore",
                "crates/simcore/src/par.rs",
                "use std::thread;\nstd::thread::scope(|s| s);"
            ),
            [("D005".to_string(), 1), ("D005".to_string(), 2)]
        );
        // A local module or field named thread is not std::thread.
        assert!(sim("let t = pool.thread;").is_empty());
        assert!(sim("runtime::thread::park();").is_empty());
        // Non-sim crates may thread freely.
        assert!(lint_src("analyze", "crates/analyze/src/x.rs", "use std::thread;").is_empty());
    }

    #[test]
    fn u001_u002_params() {
        assert_eq!(
            sim("fn set_budget(budget_w: f64) {}"),
            [("U001".to_string(), 1)]
        );
        assert_eq!(
            sim("fn flat_template(watts: f64) {}"),
            [("U001".to_string(), 1)]
        );
        assert_eq!(sim("fn cap(freq_mhz: u32) {}"), [("U002".to_string(), 1)]);
        // Newtyped versions are clean.
        assert!(sim("fn set_budget(budget: Watts) {}").is_empty());
        assert!(sim("fn cap(freq: MegaHertz) {}").is_empty());
        // Dimensionless names are clean even as f64: a risk budget is a
        // probability mass, not watts, despite the `_budget` suffix.
        assert!(sim("fn scale(power_scale_factor: f64, util: f64) {}").is_empty());
        assert!(sim("fn admit(risk_budget: f64) {}").is_empty());
        // Aggregates are out of scope.
        assert!(sim("fn series(power_samples: Vec<f64>) {}").is_empty());
    }

    #[test]
    fn u003_fields() {
        assert_eq!(
            sim("struct Server { budget_w: f64, name: String }"),
            [("U003".to_string(), 1)]
        );
        assert_eq!(
            sim("struct Plan {\n    pub base_freq: u32,\n}"),
            [("U003".to_string(), 2)]
        );
        assert!(sim("struct Server { budget: Watts }").is_empty());
    }

    #[test]
    fn u004_raw_unit_returns() {
        assert_eq!(
            sim("pub fn draw_w() -> f64 { 0.0 }"),
            [("U004".to_string(), 1)]
        );
        assert_eq!(
            sim("pub fn turbo_mhz() -> u32 { 0 }"),
            [("U004".to_string(), 1)]
        );
        // Newtyped, private, or aggregate returns are clean.
        assert!(sim("pub fn draw_w() -> Watts { Watts(0.0) }").is_empty());
        assert!(sim("fn draw_w() -> f64 { 0.0 }").is_empty());
        assert!(sim("pub fn draws_w() -> Vec<f64> { vec![] }").is_empty());
        // Dimensionless names are clean.
        assert!(sim("pub fn power_scale_factor() -> f64 { 1.0 }").is_empty());
        // U-lints are sim-state only.
        assert!(lint_src(
            "analyze",
            "crates/analyze/src/x.rs",
            "pub fn draw_w() -> f64 { 0.0 }"
        )
        .is_empty());
    }

    #[test]
    fn r001_unwrap_outside_tests_only() {
        let flagged = lint_src(
            "analyze",
            "crates/analyze/src/x.rs",
            "fn f() { x.unwrap(); }",
        );
        assert_eq!(flagged, [("R001".to_string(), 1)]);
        let in_test = lint_src(
            "analyze",
            "crates/analyze/src/x.rs",
            "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }",
        );
        assert!(in_test.is_empty());
        // Bin targets are exempt.
        assert!(lint_src(
            "analyze",
            "crates/analyze/src/bin/t.rs",
            "fn f() { x.unwrap(); }"
        )
        .is_empty());
    }

    #[test]
    fn r001_expect_needs_a_string_message() {
        assert_eq!(
            sim("fn f() { x.expect(\"msg\"); }"),
            [("R001".to_string(), 1)]
        );
        // A method named expect taking a non-string is not Option::expect.
        assert!(sim("fn f() { self.expect(b'{'); }").is_empty());
        assert!(sim("fn f() { parser.expect(Token::Brace); }").is_empty());
    }

    #[test]
    fn r002_panic_family() {
        assert_eq!(
            sim("fn f() { panic!(\"boom\") }"),
            [("R002".to_string(), 1)]
        );
        assert_eq!(sim("fn f() { todo!() }"), [("R002".to_string(), 1)]);
        // std::panic::catch_unwind is not the macro.
        assert!(sim("fn f() { std::panic::catch_unwind(g); }").is_empty());
    }

    #[test]
    fn r003_lossy_casts() {
        assert_eq!(sim("let t = now_s as u64;"), [("R003".to_string(), 1)]);
        assert_eq!(sim("let w = power as u32;"), [("R003".to_string(), 1)]);
        // Float→float is a widening, not a truncation.
        assert!(sim("let w = power as f64;").is_empty());
        assert!(sim("let n = count as u64;").is_empty());
    }

    #[test]
    fn emitted_ids_are_cataloged() {
        let everything = "use std::collections::HashMap;\nlet t = Instant::now();\n\
                          let v = std::env::var(\"X\");\nlet r = thread_rng();\n\
                          fn f(budget_w: f64, freq_mhz: u32) {}\nstruct S { power: f64 }\n\
                          pub fn draw_w() -> f64 { 0.0 }\nuse soc_health::Recorder;\n\
                          fn g() { x.unwrap(); panic!(); let t = now_s as u64; }";
        for (id, _) in sim(everything) {
            assert!(catalog::lint(&id).is_some(), "{id} missing from catalog");
        }
    }

    #[test]
    fn one_diagnostic_per_lint_per_line() {
        assert_eq!(
            sim("let m: HashMap<u32, HashMap<u32, u32>> = HashMap::new();").len(),
            1
        );
    }
}

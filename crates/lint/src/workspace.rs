//! Workspace walking, the whole-workspace analysis, and the top-level check
//! runner.
//!
//! [`analyze_workspace`] is the semantic core: it parses every file into a
//! token stream and an item model, builds the crate dependency graph and the
//! intra-workspace call graph, and runs every pass — the per-file lints
//! (A001, D/U/R series), the A002 transitive-layering pass over the crate
//! graph, and the D006/R004 taint passes over the call graph. [`run_check`]
//! wraps it with `lint.toml` loading and the allowlist ratchet.

use crate::checks::{self, Diagnostic};
use crate::config::LintConfig;
use crate::graph::{CallGraph, CrateGraph, FileRef};
use crate::parser::{parse_file, FileModel};
use crate::report::CheckReport;
use crate::source::SourceFile;
use crate::taint;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// A source file scheduled for linting.
pub struct WorkspaceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Directory name under `crates/`.
    pub crate_name: String,
    /// Absolute path for reading.
    pub abs_path: PathBuf,
}

/// Enumerate every `crates/*/src/**/*.rs` under `root`, sorted by relative
/// path so diagnostics and reports are byte-stable across filesystems.
pub fn workspace_files(root: &Path) -> Result<Vec<WorkspaceFile>, String> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let crate_dirs =
        fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    for entry in crate_dirs {
        let entry = entry.map_err(|e| format!("{}: {e}", crates_dir.display()))?;
        let crate_path = entry.path();
        if !crate_path.is_dir() {
            continue;
        }
        let crate_name = entry.file_name().to_string_lossy().into_owned();
        let src = crate_path.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files, &crate_name, root)?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn collect_rs(
    dir: &Path,
    out: &mut Vec<WorkspaceFile>,
    crate_name: &str,
    root: &Path,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out, crate_name, root)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace root", path.display()))?;
            let rel_path = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(WorkspaceFile {
                rel_path,
                crate_name: crate_name.to_string(),
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// The full semantic analysis of one workspace: every file's token and item
/// views, both graphs, and the raw (pre-allowlist) diagnostics from every
/// pass.
pub struct Analysis {
    /// `(tokens+metadata, items)` per file, in sorted rel-path order.
    pub files: Vec<(SourceFile, FileModel)>,
    pub crate_graph: CrateGraph,
    pub call_graph: CallGraph,
    /// All diagnostics, sorted by `(path, line, lint)` and deduplicated.
    pub diags: Vec<Diagnostic>,
    /// Indices of `[[allow]]` entries consumed as R004 taint barriers. Such
    /// an entry never matches a rendered diagnostic (the waived site is
    /// simply not flagged), so the stale-entry check must exempt it.
    pub used_barrier_waivers: BTreeSet<usize>,
}

/// Parse, build graphs, and run every pass over the workspace at `root`.
pub fn analyze_workspace(root: &Path, config: &LintConfig) -> Result<Analysis, String> {
    let listed = workspace_files(root)?;
    let mut files = Vec::with_capacity(listed.len());
    for file in &listed {
        let text = fs::read_to_string(&file.abs_path)
            .map_err(|e| format!("{}: {e}", file.abs_path.display()))?;
        let src = SourceFile::parse(&file.rel_path, &file.crate_name, &text);
        let model = parse_file(&src);
        files.push((src, model));
    }
    let refs: Vec<FileRef<'_>> = files
        .iter()
        .map(|(src, model)| FileRef {
            crate_name: &src.crate_name,
            path: &src.path,
            model,
        })
        .collect();
    let crate_graph = CrateGraph::build(&refs);
    let call_graph = CallGraph::build(&refs, &crate_graph);

    let mut diags: Vec<Diagnostic> = Vec::new();
    for (src, model) in &files {
        diags.extend(checks::check_file(src, model, &config.layers));
    }
    diags.extend(transitive_layer_lints(&crate_graph, config));
    diags.extend(taint::determinism_taint(
        &files,
        &call_graph,
        &config.layers,
    ));
    let (r004, used_barrier_waivers) =
        taint::panic_reachability(&files, &call_graph, &config.layers, &config.allowlist);
    diags.extend(r004);
    diags.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    diags.dedup_by(|a, b| a.lint == b.lint && a.path == b.path && a.line == b.line);

    Ok(Analysis {
        files,
        crate_graph,
        call_graph,
        diags,
        used_barrier_waivers,
    })
}

/// A002: for every crate, BFS the crate graph; if a crate in a layer its own
/// layer may not use is reachable, flag the *first hop* of the offending
/// path — always a real reference site in the offending crate — with the
/// full chain. Direct (one-hop) violations are A001's per-file job and are
/// skipped here so one bad edge yields one diagnostic.
fn transitive_layer_lints(graph: &CrateGraph, config: &LintConfig) -> Vec<Diagnostic> {
    let layers = &config.layers;
    let mut diags = Vec::new();
    for krate in &graph.crates {
        let Some(my_layer) = layers.layer_of(krate) else {
            continue;
        };
        let pred = graph.reachable_from(krate);
        for target in pred.keys() {
            let Some(target_layer) = layers.layer_of(target) else {
                continue;
            };
            if layers.allows(my_layer, target_layer) {
                continue;
            }
            let chain = graph.path_to(krate, target, &pred);
            if chain.len() <= 2 {
                continue; // direct edge: A001 already flags the reference
            }
            let first_hop = &chain[1];
            let site = &graph.edges[&(krate.clone(), first_hop.clone())][0];
            diags.push(Diagnostic {
                lint: "A002",
                path: site.path.clone(),
                line: site.line,
                message: format!(
                    "crate `{krate}` (layer `{my_layer}`) reaches `{target}` (layer \
                     `{target_layer}`) through {}; `[layers.{my_layer}]` in lint.toml \
                     does not allow that layer",
                    chain.join(" -> "),
                ),
            });
        }
    }
    diags
}

/// Lint every workspace file under `root`, filtered through the allowlist in
/// the `lint.toml` at `config_path` when it exists (a missing file means
/// nothing is waived and the builtin layer default applies — a fresh
/// checkout still checks).
pub fn run_check(root: &Path, config_path: &Path) -> Result<CheckReport, String> {
    let config = load_config(config_path)?;
    let analysis = analyze_workspace(root, &config)?;
    let files = analysis.files.len();
    let (blocking, waived, stale) = config.allowlist.apply(analysis.diags);
    // Waivers consumed as R004 taint barriers never match a diagnostic —
    // they are doing their job, not stale.
    let stale = stale
        .into_iter()
        .filter(|e| {
            config
                .allowlist
                .entries
                .iter()
                .position(|x| std::ptr::eq(x, *e))
                .is_none_or(|i| !analysis.used_barrier_waivers.contains(&i))
        })
        .cloned()
        .collect();
    Ok(CheckReport {
        blocking,
        waived,
        stale,
        files,
    })
}

/// Load `lint.toml`, or the empty default when the file does not exist.
pub fn load_config(config_path: &Path) -> Result<LintConfig, String> {
    if config_path.exists() {
        let text = fs::read_to_string(config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        LintConfig::parse(&text)
    } else {
        Ok(LintConfig::default())
    }
}

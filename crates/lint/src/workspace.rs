//! Workspace walking and the top-level check runner.

use crate::allowlist::Allowlist;
use crate::checks::{self, Diagnostic};
use crate::report::CheckReport;
use crate::source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// A source file scheduled for linting.
pub struct WorkspaceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Directory name under `crates/`.
    pub crate_name: String,
    /// Absolute path for reading.
    pub abs_path: PathBuf,
}

/// Enumerate every `crates/*/src/**/*.rs` under `root`, sorted by relative
/// path so diagnostics and reports are byte-stable across filesystems.
pub fn workspace_files(root: &Path) -> Result<Vec<WorkspaceFile>, String> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let crate_dirs =
        fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    for entry in crate_dirs {
        let entry = entry.map_err(|e| format!("{}: {e}", crates_dir.display()))?;
        let crate_path = entry.path();
        if !crate_path.is_dir() {
            continue;
        }
        let crate_name = entry.file_name().to_string_lossy().into_owned();
        let src = crate_path.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files, &crate_name, root)?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn collect_rs(
    dir: &Path,
    out: &mut Vec<WorkspaceFile>,
    crate_name: &str,
    root: &Path,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out, crate_name, root)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace root", path.display()))?;
            let rel_path = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(WorkspaceFile {
                rel_path,
                crate_name: crate_name.to_string(),
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// Lint every workspace file under `root`, filtered through the allowlist at
/// `allowlist_path` when it exists (a missing allowlist means nothing is
/// waived, not an error — a fresh checkout with no `lint.toml` still checks).
pub fn run_check(root: &Path, allowlist_path: &Path) -> Result<CheckReport, String> {
    let allowlist = if allowlist_path.exists() {
        let text = fs::read_to_string(allowlist_path)
            .map_err(|e| format!("{}: {e}", allowlist_path.display()))?;
        Allowlist::parse(&text)?
    } else {
        Allowlist::default()
    };
    let files = workspace_files(root)?;
    let mut diags: Vec<Diagnostic> = Vec::new();
    for file in &files {
        let text = fs::read_to_string(&file.abs_path)
            .map_err(|e| format!("{}: {e}", file.abs_path.display()))?;
        let src = SourceFile::parse(&file.rel_path, &file.crate_name, &text);
        diags.extend(checks::check_file(&src));
    }
    let (blocking, waived, stale) = allowlist.apply(diags);
    Ok(CheckReport {
        blocking,
        waived,
        stale: stale.into_iter().cloned().collect(),
        files: files.len(),
    })
}

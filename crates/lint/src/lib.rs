//! `soc-lint` — determinism- and unit-safety static analysis for the
//! SmartOClock workspace.
//!
//! Two invariants make this reproduction trustworthy and neither is checked
//! by the compiler:
//!
//! 1. **Bit-determinism per seed.** Causal-trace diffs (`soc-analyze diff`)
//!    only mean anything because two runs with the same seed are
//!    byte-identical. One `HashMap` iteration, `Instant::now()`, or
//!    `thread_rng()` in simulation state silently breaks that.
//! 2. **Unit safety.** Admission control and budget enforcement are
//!    watt/megahertz arithmetic end to end; a raw `f64` watt parameter is
//!    one call site away from a mis-scaled budget that quietly disables
//!    capping.
//!
//! `soc-lint` walks every `crates/*/src/**/*.rs`, tokenizes it with a small
//! hand-rolled lexer ([`lexer`]), and enforces the catalog in [`catalog`]:
//! D-lints (determinism), U-lints (units), R-lints (robustness), each a
//! token-pattern query in [`checks`]. Pre-existing violations ratchet down
//! through `lint.toml` ([`allowlist`]): every waiver carries a written
//! justification and stale waivers are reported for deletion.
//!
//! ```text
//! cargo run -p soc-lint -- check          # human diagnostics, exit 1 on violations
//! cargo run -p soc-lint -- json           # same check, JSON report on stdout
//! cargo run -p soc-lint -- list           # the lint catalog with rationales
//! ```

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod catalog;
pub mod checks;
pub mod lexer;
pub mod report;
pub mod source;
pub mod workspace;

pub use allowlist::{AllowEntry, Allowlist};
pub use catalog::{lint, Category, LintInfo, CATALOG};
pub use checks::{check_file, Diagnostic, SIM_STATE_CRATES};
pub use report::{render_catalog, CheckReport};
pub use source::SourceFile;
pub use workspace::{run_check, workspace_files};

//! `soc-lint` — determinism- and unit-safety static analysis for the
//! SmartOClock workspace.
//!
//! Two invariants make this reproduction trustworthy and neither is checked
//! by the compiler:
//!
//! 1. **Bit-determinism per seed.** Causal-trace diffs (`soc-analyze diff`)
//!    only mean anything because two runs with the same seed are
//!    byte-identical. One `HashMap` iteration, `Instant::now()`, or
//!    `thread_rng()` in simulation state silently breaks that.
//! 2. **Unit safety.** Admission control and budget enforcement are
//!    watt/megahertz arithmetic end to end; a raw `f64` watt parameter is
//!    one call site away from a mis-scaled budget that quietly disables
//!    capping.
//!
//! `soc-lint` walks every `crates/*/src/**/*.rs`, tokenizes it with a small
//! hand-rolled lexer ([`lexer`]), parses an item-level model ([`parser`]),
//! and builds the workspace crate-dependency and call graphs ([`graph`]).
//! On top of those it enforces the catalog in [`catalog`]: A-lints
//! (architecture layering, per the `[layers]` tables in `lint.toml`),
//! D-lints (determinism), U-lints (units), R-lints (robustness) — per-file
//! token queries in [`checks`], graph passes in [`workspace`] and
//! [`taint`]. The taint passes catch what no per-file query can: a
//! sim-state crate laundering a wall-clock read or a panic through a
//! helper crate that lints clean on its own. Pre-existing violations
//! ratchet down through `lint.toml` ([`allowlist`]): every waiver carries
//! a written justification, stale waivers fail the check, and the ratchet
//! pins the entry count to a committed baseline.
//!
//! ```text
//! cargo run -p soc-lint -- check          # human diagnostics, exit 1 on violations
//! cargo run -p soc-lint -- json           # same check, JSON report on stdout
//! cargo run -p soc-lint -- sarif          # same check, SARIF 2.1.0 log
//! cargo run -p soc-lint -- graph          # crate dependency graph (DOT/JSON)
//! cargo run -p soc-lint -- ratchet        # allowlist-growth gate
//! cargo run -p soc-lint -- list           # the lint catalog with rationales
//! ```

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod catalog;
pub mod checks;
pub mod config;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod sarif;
pub mod source;
pub mod taint;
pub mod workspace;

pub use allowlist::{AllowEntry, Allowlist};
pub use catalog::{lint, Category, LintInfo, CATALOG};
pub use checks::{check_file, Diagnostic};
pub use config::{Layers, LintConfig};
pub use report::{render_catalog, CheckReport};
pub use source::SourceFile;
pub use workspace::{analyze_workspace, run_check, workspace_files, Analysis};

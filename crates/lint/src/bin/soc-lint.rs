//! `soc-lint` — command-line determinism/unit-safety/architecture checks.
//!
//! ```text
//! soc-lint check   [--root DIR] [--allowlist FILE] [--out FILE]
//! soc-lint json    [--root DIR] [--allowlist FILE] [--out FILE]
//! soc-lint sarif   [--root DIR] [--allowlist FILE] [--out FILE]
//! soc-lint graph   [--root DIR] [--allowlist FILE] [--format dot|json] [--out FILE]
//! soc-lint ratchet [--root DIR] [--allowlist FILE]
//! soc-lint list
//! ```
//!
//! `check` prints human diagnostics and exits non-zero when any violation is
//! not waived by `lint.toml` — or when a waiver is stale; `json`/`sarif` are
//! the same check with the machine report (the CI artifacts) on stdout or
//! `--out`; `graph` dumps the workspace crate dependency graph; `ratchet`
//! fails when the `[[allow]]` list has grown past the committed baseline;
//! `list` prints the catalog.

use soc_lint::report::render_catalog;
use soc_lint::sarif::render_sarif;
use soc_lint::workspace::{analyze_workspace, load_config, run_check};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: soc-lint <command> [args]

commands:
  check   [--root DIR] [--allowlist FILE] [--out FILE]
          lint the workspace; exit 1 on non-allowlisted violations or stale waivers
  json    [--root DIR] [--allowlist FILE] [--out FILE]
          same check, JSON report (always written, even on failure)
  sarif   [--root DIR] [--allowlist FILE] [--out FILE]
          same check, SARIF 2.1.0 log (waived violations appear suppressed)
  graph   [--root DIR] [--allowlist FILE] [--format dot|json] [--out FILE]
          dump the workspace crate dependency graph with layer annotations
  ratchet [--root DIR] [--allowlist FILE]
          fail if [[allow]] entries exceed the [ratchet] allowlist-baseline,
          any entry is stale, or any violation is blocking
  list    print the lint catalog with rationales and waiver instructions

--root defaults to the nearest ancestor containing crates/ (or .);
--allowlist defaults to <root>/lint.toml.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("soc-lint: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `(name, value)` pairs parsed from `--name value` arguments.
type Flags<'a> = Vec<(&'a str, &'a str)>;

/// Split off every `--flag value` pair; returns (positional, flags).
fn split_flags(args: &[String]) -> Result<(Vec<&str>, Flags<'_>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(name) = arg.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(arg);
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| *v)
}

/// Walk up from the current directory to the nearest dir containing
/// `crates/`; fall back to `.` (the error from the walker names the path).
fn default_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Print to stdout, or write to `--out FILE` when given.
fn deliver(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text)
            .map_err(|e| format!("writing {path}: {e}"))
            .map(|()| eprintln!("soc-lint: report written to {path}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// Resolve `--root` and `--allowlist` to concrete paths.
fn paths(flags: &Flags<'_>) -> (PathBuf, PathBuf) {
    let root = flag(flags, "root").map_or_else(default_root, PathBuf::from);
    let allowlist = flag(flags, "allowlist").map_or_else(|| root.join("lint.toml"), PathBuf::from);
    (root, allowlist)
}

/// Returns Ok(true) when the workspace is clean (exit 0).
fn run(args: &[String]) -> Result<bool, String> {
    let Some(command) = args.first().map(String::as_str) else {
        return Err(USAGE.to_string());
    };
    let (positional, flags) = split_flags(&args[1..])?;
    if !positional.is_empty() {
        return Err(format!(
            "{command} takes no positional arguments\n\n{USAGE}"
        ));
    }
    match command {
        "check" | "json" | "sarif" => {
            let (root, allowlist) = paths(&flags);
            let report = run_check(&root, &allowlist)?;
            let rendered = match command {
                "json" => report.render_json(),
                "sarif" => {
                    let config = load_config(Path::new(&allowlist))?;
                    render_sarif(&report, &config.allowlist)
                }
                _ => report.render_human(),
            };
            deliver(&rendered, flag(&flags, "out"))?;
            // Stale waivers fail too: an entry matching nothing is either
            // dead weight or a typo silently waiving the wrong thing.
            Ok(report.blocking.is_empty() && report.stale.is_empty())
        }
        "graph" => {
            let (root, allowlist) = paths(&flags);
            let config = load_config(&allowlist)?;
            let analysis = analyze_workspace(&root, &config)?;
            let rendered = match flag(&flags, "format").unwrap_or("dot") {
                "dot" => analysis.crate_graph.render_dot(&config.layers),
                "json" => analysis.crate_graph.render_json(&config.layers),
                other => return Err(format!("unknown graph format '{other}' (dot|json)")),
            };
            deliver(&rendered, flag(&flags, "out"))?;
            Ok(true)
        }
        "ratchet" => {
            let (root, allowlist) = paths(&flags);
            let config = load_config(&allowlist)?;
            let Some(baseline) = config.ratchet_baseline else {
                return Err(
                    "lint.toml has no [ratchet] allowlist-baseline; add one to enable the ratchet"
                        .to_string(),
                );
            };
            let entries = config.allowlist.entries.len();
            let report = run_check(&root, &allowlist)?;
            let mut ok = true;
            if entries > baseline {
                println!(
                    "ratchet: FAIL — {entries} [[allow]] entries exceed the committed baseline of {baseline}; \
                     fix the new violation instead of waiving it (or justify raising the baseline)"
                );
                ok = false;
            } else if entries < baseline {
                println!(
                    "ratchet: {entries} [[allow]] entries, baseline {baseline} — tighten the \
                     baseline in lint.toml to lock in the progress"
                );
            }
            if !report.stale.is_empty() {
                println!(
                    "ratchet: FAIL — {} stale waiver(s) match nothing; delete them",
                    report.stale.len()
                );
                ok = false;
            }
            if !report.blocking.is_empty() {
                println!(
                    "ratchet: FAIL — {} blocking violation(s); run `soc-lint check` for details",
                    report.blocking.len()
                );
                ok = false;
            }
            if ok {
                println!(
                    "ratchet: OK — {entries} waiver(s) within baseline {baseline}, none stale, no blocking violations"
                );
            }
            Ok(ok)
        }
        "list" => {
            print!("{}", render_catalog());
            Ok(true)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

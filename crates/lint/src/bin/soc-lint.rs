//! `soc-lint` — command-line determinism/unit-safety checks.
//!
//! ```text
//! soc-lint check [--root DIR] [--allowlist FILE] [--out FILE]
//! soc-lint json  [--root DIR] [--allowlist FILE] [--out FILE]
//! soc-lint list
//! ```
//!
//! `check` prints human diagnostics and exits non-zero when any violation is
//! not waived by `lint.toml`; `json` is the same check with the machine
//! report (the CI artifact) on stdout or `--out`; `list` prints the catalog.

use soc_lint::report::render_catalog;
use soc_lint::workspace::run_check;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: soc-lint <command> [args]

commands:
  check [--root DIR] [--allowlist FILE] [--out FILE]
        lint the workspace; exit 1 on non-allowlisted violations
  json  [--root DIR] [--allowlist FILE] [--out FILE]
        same check, JSON report (always written, even on failure)
  list  print the lint catalog with rationales and waiver instructions

--root defaults to the nearest ancestor containing crates/ (or .);
--allowlist defaults to <root>/lint.toml.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("soc-lint: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `(name, value)` pairs parsed from `--name value` arguments.
type Flags<'a> = Vec<(&'a str, &'a str)>;

/// Split off every `--flag value` pair; returns (positional, flags).
fn split_flags(args: &[String]) -> Result<(Vec<&str>, Flags<'_>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(name) = arg.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(arg);
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| *v)
}

/// Walk up from the current directory to the nearest dir containing
/// `crates/`; fall back to `.` (the error from the walker names the path).
fn default_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Print to stdout, or write to `--out FILE` when given.
fn deliver(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text)
            .map_err(|e| format!("writing {path}: {e}"))
            .map(|()| eprintln!("soc-lint: report written to {path}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// Returns Ok(true) when the workspace is clean (exit 0).
fn run(args: &[String]) -> Result<bool, String> {
    let Some(command) = args.first().map(String::as_str) else {
        return Err(USAGE.to_string());
    };
    let (positional, flags) = split_flags(&args[1..])?;
    if !positional.is_empty() {
        return Err(format!(
            "{command} takes no positional arguments\n\n{USAGE}"
        ));
    }
    match command {
        "check" | "json" => {
            let root = flag(&flags, "root").map_or_else(default_root, PathBuf::from);
            let allowlist =
                flag(&flags, "allowlist").map_or_else(|| root.join("lint.toml"), PathBuf::from);
            let report = run_check(&root, Path::new(&allowlist))?;
            let rendered = if command == "json" {
                report.render_json()
            } else {
                report.render_human()
            };
            deliver(&rendered, flag(&flags, "out"))?;
            Ok(report.blocking.is_empty())
        }
        "list" => {
            print!("{}", render_catalog());
            Ok(true)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

//! Item-level parsing on top of the token stream: function signatures and
//! bodies, struct fields, call sites, and path roots (`use` declarations and
//! qualified paths).
//!
//! This is the substrate the semantic passes run on. The per-file token
//! lints (D001–D005, R001–R003) need only the flat stream; the workspace
//! passes need to know *which function* a token belongs to (R004 panic
//! reachability), *who calls whom* (D006 determinism taint), and *which
//! crates a file references* (A001/A002 architecture layering). Like the
//! lexer, this is deliberately not a full parser: item headers and brace
//! matching are all the passes require, and a construct we fail to parse
//! degrades to "no item recorded", never to a wrong item.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// One `name: type` binding — a fn parameter or struct field — as
/// `(name, line, type tokens)`.
pub type Binding = (String, u32, Vec<Token>);

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (`par_map`, `now_ms`); for method calls the method
    /// name, for qualified paths the final segment.
    pub name: String,
    /// For qualified calls (`helper::now_ms(…)`), the first path segment;
    /// the call-graph resolver uses it to narrow candidates to one crate.
    pub qualifier: Option<String>,
    pub line: u32,
    /// `receiver.name(…)` rather than `name(…)`.
    pub is_method: bool,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    /// Bare `pub` (crate-external API). `pub(crate)`/`pub(super)` are
    /// crate-internal and count as private here.
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    pub params: Vec<Binding>,
    /// Return type tokens (empty for `()` / no arrow).
    pub ret: Vec<Token>,
    /// Token index range `[open, close]` of the body braces; `None` for
    /// trait-signature items ending in `;`.
    pub body: Option<(usize, usize)>,
    /// The doc comment immediately above the item contains a `# Panics`
    /// section — the documented-panic contract convention (R004).
    pub panics_documented: bool,
    /// Calls made inside the body, in source order.
    pub calls: Vec<CallSite>,
}

/// One parsed struct with named fields.
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub line: u32,
    pub in_test: bool,
    pub fields: Vec<Binding>,
}

/// A path-root reference: `use NAME::…` or `NAME::…` in expression or type
/// position. The dependency graph filters these against the set of actual
/// workspace crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathRoot {
    pub name: String,
    pub line: u32,
    pub in_test: bool,
}

/// Everything the semantic passes need from one file.
#[derive(Debug, Default)]
pub struct FileModel {
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub path_roots: Vec<PathRoot>,
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "let", "else",
    "break", "continue", "await", "where", "impl", "dyn",
];

/// Parse one file's items.
pub fn parse_file(src: &SourceFile) -> FileModel {
    let toks = &src.tokens;
    let mut model = FileModel::default();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some((item, next)) = parse_fn(src, i) {
                model.fns.push(item);
                i = next;
                continue;
            }
        } else if toks[i].is_ident("struct") {
            if let Some((fields, name, line, end)) = struct_fields(toks, i) {
                model.structs.push(StructItem {
                    name,
                    line,
                    in_test: src.in_test[i],
                    fields,
                });
                i = end;
                continue;
            }
        }
        i += 1;
    }
    model.path_roots = collect_path_roots(src);
    model
}

/// Parse the `fn` at `fn_idx`; returns the item and the index to resume at
/// (past the signature, NOT past the body, so nested fns are found too).
fn parse_fn(src: &SourceFile, fn_idx: usize) -> Option<(FnItem, usize)> {
    let toks = &src.tokens;
    let (params, after_params) = fn_params(toks, fn_idx)?;
    let name = toks[fn_idx + 1].text.clone();
    let line = toks[fn_idx + 1].line;

    // Return type: `-> …` up to the body `{`, a `;`, or a `where` clause.
    let mut i = after_params;
    let mut ret = Vec::new();
    if toks.get(i).is_some_and(|t| t.is_punct("->")) {
        i += 1;
        while let Some(t) = toks.get(i) {
            if t.is_punct("{") || t.is_punct(";") || t.is_ident("where") {
                break;
            }
            ret.push(t.clone());
            i += 1;
        }
    }
    // Skip a where clause to the body/semicolon.
    while let Some(t) = toks.get(i) {
        if t.is_punct("{") || t.is_punct(";") {
            break;
        }
        i += 1;
    }
    let body = if toks.get(i).is_some_and(|t| t.is_punct("{")) {
        matching_punct(toks, i, "{", "}").map(|close| (i, close))
    } else {
        None
    };

    let first = item_first_token(toks, fn_idx);
    let is_pub = item_is_pub(toks, fn_idx);
    let panics_documented = docs_mention_panics(src, toks[first].line);
    let calls = body.map_or_else(Vec::new, |(open, close)| {
        collect_calls(&toks[open + 1..close])
    });
    Some((
        FnItem {
            name,
            line,
            is_pub,
            in_test: src.in_test[fn_idx],
            params,
            ret,
            body,
            panics_documented,
            calls,
        },
        after_params,
    ))
}

/// Walk back from the `fn`/`struct` keyword over modifiers and attributes to
/// the first token of the item (where its doc comment must end).
fn item_first_token(toks: &[Token], kw_idx: usize) -> usize {
    let mut j = kw_idx;
    while j > 0 {
        let prev = &toks[j - 1];
        let is_modifier = prev.is_ident("pub")
            || prev.is_ident("const")
            || prev.is_ident("unsafe")
            || prev.is_ident("async")
            || prev.is_ident("extern")
            || prev.is_ident("crate")
            || prev.is_ident("super")
            || prev.is_ident("default")
            || (prev.kind == TokenKind::Literal && prev.text == "\"…\"");
        if is_modifier || prev.is_punct("(") || prev.is_punct(")") {
            j -= 1;
            continue;
        }
        // Attribute `#[…]` ending right before the current first token.
        if prev.is_punct("]") {
            if let Some(open) = matching_back(toks, j - 1, "[", "]") {
                if open > 0 && toks[open - 1].is_punct("#") {
                    j = open - 1;
                    continue;
                }
            }
        }
        break;
    }
    j
}

/// Is the item at `kw_idx` bare-`pub` (crate-external)?
fn item_is_pub(toks: &[Token], kw_idx: usize) -> bool {
    let mut j = kw_idx;
    while j > 0 {
        let prev = &toks[j - 1];
        if prev.is_ident("pub") {
            // `pub(crate)` restricts visibility: the token after `pub` is `(`.
            return !toks.get(j).is_some_and(|t| t.is_punct("("));
        }
        let skippable = prev.is_ident("const")
            || prev.is_ident("unsafe")
            || prev.is_ident("async")
            || prev.is_ident("extern")
            || prev.is_ident("crate")
            || prev.is_ident("super")
            || prev.is_ident("default")
            || (prev.kind == TokenKind::Literal && prev.text == "\"…\"")
            || prev.is_punct("(")
            || prev.is_punct(")");
        if !skippable {
            return false;
        }
        j -= 1;
    }
    false
}

/// Does the contiguous doc block ending on the line right above `item_line`
/// contain a `# Panics` section?
fn docs_mention_panics(src: &SourceFile, item_line: u32) -> bool {
    if item_line == 1 {
        return false;
    }
    let mut expect = item_line - 1;
    let mut found = false;
    for d in src.docs.iter().rev() {
        if d.line > expect {
            continue;
        }
        if d.line != expect {
            break; // gap: the block above the item has ended
        }
        if d.text.contains("# Panics") {
            found = true;
        }
        if expect == 1 {
            break;
        }
        expect -= 1;
    }
    found
}

/// Extract call sites from a body token slice.
fn collect_calls(body: &[Token]) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident || !body.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let name = t.text.as_str();
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `fn nested(…)` — a declaration, not a call.
        if i >= 1 && body[i - 1].is_ident("fn") {
            continue;
        }
        let is_method = i >= 1 && body[i - 1].is_punct(".");
        let mut qualifier = None;
        if !is_method && i >= 2 && body[i - 1].is_punct("::") {
            // Walk to the head of the `a::b::name(` path.
            let mut j = i;
            while j >= 2 && body[j - 1].is_punct("::") && body[j - 2].kind == TokenKind::Ident {
                j -= 2;
            }
            if j != i {
                qualifier = Some(body[j].text.clone());
            }
        }
        calls.push(CallSite {
            name: name.to_string(),
            qualifier,
            line: t.line,
            is_method,
        });
    }
    calls
}

/// Collect path roots: `use NAME…` and `NAME::…` where NAME is not itself a
/// path segment. `std`/`crate`/`self`/`super` are kept out (never workspace
/// crates); everything else is filtered later against the real crate set.
fn collect_path_roots(src: &SourceFile) -> Vec<PathRoot> {
    let toks = &src.tokens;
    let mut roots = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "std" | "core" | "alloc" | "crate" | "self" | "super"
        ) {
            continue;
        }
        let followed_by_path = toks.get(i + 1).is_some_and(|n| n.is_punct("::"));
        let after_path = i >= 1 && toks[i - 1].is_punct("::");
        let after_use = i >= 1 && toks[i - 1].is_ident("use");
        if (followed_by_path && !after_path) || after_use {
            roots.push(PathRoot {
                name: t.text.clone(),
                line: t.line,
                in_test: src.in_test[i],
            });
        }
    }
    roots
}

// ------------------------------------------------------- shared token ops --

/// Parse the parameter list of the `fn` at `fn_idx`. Returns
/// `(params, index past the closing paren)`; each param is
/// `(name, line, type tokens)`. Self receivers and non-identifier patterns
/// are skipped.
pub fn fn_params(toks: &[Token], fn_idx: usize) -> Option<(Vec<Binding>, usize)> {
    let mut i = fn_idx + 1;
    // fn name, possibly with generics before the paren.
    if !toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident) {
        return None;
    }
    i += 1;
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_angles(toks, i)?;
    }
    if !toks.get(i).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let close = matching_punct(toks, i, "(", ")")?;
    let mut params = Vec::new();
    for group in split_commas(&toks[i + 1..close]) {
        let mut g = group;
        while g.first().is_some_and(|t| t.is_ident("mut")) {
            g = &g[1..];
        }
        // Skip receivers and non-trivial patterns: we need `ident : type`.
        let [name, colon, ty @ ..] = g else { continue };
        if name.kind != TokenKind::Ident || !colon.is_punct(":") || name.text == "self" {
            continue;
        }
        params.push((name.text.clone(), name.line, ty.to_vec()));
    }
    Some((params, close + 1))
}

/// Parse the fields of the braced `struct` at `struct_idx`. Tuple and unit
/// structs yield no item. Returns `(fields, name, line, index past the
/// closing brace)`.
pub fn struct_fields(
    toks: &[Token],
    struct_idx: usize,
) -> Option<(Vec<Binding>, String, u32, usize)> {
    let mut i = struct_idx + 1;
    if !toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident) {
        return None;
    }
    let name = toks[i].text.clone();
    let line = toks[i].line;
    i += 1;
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_angles(toks, i)?;
    }
    if !toks.get(i).is_some_and(|t| t.is_punct("{")) {
        return None; // tuple struct, unit struct, or `struct X where …`
    }
    let close = matching_punct(toks, i, "{", "}")?;
    let mut fields = Vec::new();
    for group in split_commas(&toks[i + 1..close]) {
        let mut g = group;
        // Strip field attributes and visibility.
        loop {
            if g.first().is_some_and(|t| t.is_punct("#"))
                && g.get(1).is_some_and(|t| t.is_punct("["))
            {
                let Some(end) = g.iter().position(|t| t.is_punct("]")) else {
                    break;
                };
                g = &g[end + 1..];
            } else if g.first().is_some_and(|t| t.is_ident("pub")) {
                g = &g[1..];
                if g.first().is_some_and(|t| t.is_punct("(")) {
                    let Some(end) = g.iter().position(|t| t.is_punct(")")) else {
                        break;
                    };
                    g = &g[end + 1..];
                }
            } else {
                break;
            }
        }
        let [fname, colon, ty @ ..] = g else { continue };
        if fname.kind != TokenKind::Ident || !colon.is_punct(":") {
            continue;
        }
        fields.push((fname.text.clone(), fname.line, ty.to_vec()));
    }
    Some((fields, name, line, close + 1))
}

/// Split a token slice at top-level commas (tracking `()`, `[]`, `{}`, `<>`).
pub fn split_commas(toks: &[Token]) -> Vec<&[Token]> {
    let mut groups = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (j, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth == 0 => {
                groups.push(&toks[start..j]);
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        groups.push(&toks[start..]);
    }
    groups
}

/// Skip a `<…>` generics group starting at `open`; returns index past `>`.
pub fn skip_angles(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
    }
    None
}

/// Index of the closer matching the opener at `open`.
pub fn matching_punct(toks: &[Token], open: usize, o: &str, c: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the opener matching the closer at `close`, scanning backward.
fn matching_back(toks: &[Token], close: usize, o: &str, c: &str) -> Option<usize> {
    let mut depth = 0i32;
    for j in (0..=close).rev() {
        if toks[j].is_punct(c) {
            depth += 1;
        } else if toks[j].is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        parse_file(&SourceFile::parse("crates/x/src/lib.rs", "x", src))
    }

    #[test]
    fn fn_signature_and_body() {
        let m = model("pub fn admit(budget: Watts, n: u32) -> f64 { helper(n); x.update(n) }");
        assert_eq!(m.fns.len(), 1);
        let f = &m.fns[0];
        assert_eq!(f.name, "admit");
        assert!(f.is_pub);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].0, "budget");
        assert_eq!(f.ret.len(), 1);
        assert_eq!(f.ret[0].text, "f64");
        assert!(f.body.is_some());
        let names: Vec<(&str, bool)> = f
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.is_method))
            .collect();
        assert_eq!(names, [("helper", false), ("update", true)]);
    }

    #[test]
    fn visibility_variants() {
        let m = model(
            "pub fn api() {}\nfn private() {}\npub(crate) fn internal() {}\n\
             pub const fn cpub() {}\npub unsafe extern \"C\" fn ffi() {}",
        );
        let vis: Vec<(&str, bool)> = m.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            vis,
            [
                ("api", true),
                ("private", false),
                ("internal", false),
                ("cpub", true),
                ("ffi", true)
            ]
        );
    }

    #[test]
    fn panics_doc_attaches_to_the_item_below() {
        let m = model(
            "/// Sums the series.\n///\n/// # Panics\n/// Panics if empty.\n\
             #[inline]\npub fn sum() {}\n\npub fn undocumented() {}",
        );
        assert!(m.fns[0].panics_documented, "doc block above attrs attaches");
        assert!(!m.fns[1].panics_documented, "blank line breaks attachment");
    }

    #[test]
    fn qualified_calls_carry_their_path_root() {
        let m = model("fn f() { helper::now_ms(); soc_power::units::watts(1.0); g(); }");
        let calls = &m.fns[0].calls;
        assert_eq!(calls[0].qualifier.as_deref(), Some("helper"));
        assert_eq!(calls[1].qualifier.as_deref(), Some("soc_power"));
        assert_eq!(calls[1].name, "watts");
        assert_eq!(calls[2].qualifier, None);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let m = model("fn f() { if cond() { vec![1] } else { format!(\"x\") ; other() } }");
        let names: Vec<&str> = m.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["cond", "other"]);
    }

    #[test]
    fn path_roots_exclude_std_and_segments() {
        let m =
            model("use std::fmt;\nuse soc_health::Recorder;\nfn f() { helper::g(); a::b::c(); }");
        let names: Vec<&str> = m.path_roots.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["soc_health", "helper", "a"]);
    }

    #[test]
    fn structs_with_fields() {
        let m = model("pub struct Server { pub budget: Watts, name: String }\nstruct Unit;");
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].name, "Server");
        assert_eq!(m.structs[0].fields.len(), 2);
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let m = model("trait T { fn hook(&self, n: u32); }");
        assert_eq!(m.fns.len(), 1);
        assert!(m.fns[0].body.is_none());
        assert!(m.fns[0].calls.is_empty());
    }

    #[test]
    fn test_regions_are_flagged() {
        let m = model("fn lib() {}\n#[cfg(test)]\nmod t { fn helper() {} }");
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
    }
}

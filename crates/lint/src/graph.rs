//! The workspace dependency graph and intra-workspace call graph.
//!
//! Both graphs are built from the per-file [`crate::parser::FileModel`]s and
//! carry source provenance (file + line) so every architecture diagnostic
//! points at an actual reference site, not just a crate pair. The crate
//! graph feeds the A001/A002 layering passes and the `soc-lint graph`
//! subcommand (DOT/JSON dump); the call graph feeds the D006 determinism
//! taint and R004 panic-reachability passes.

use crate::config::Layers;
use crate::parser::FileModel;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One analyzed file, borrowed from the workspace analysis.
#[derive(Clone, Copy)]
pub struct FileRef<'a> {
    /// Crate directory name under `crates/`.
    pub crate_name: &'a str,
    /// Workspace-relative path.
    pub path: &'a str,
    pub model: &'a FileModel,
}

/// Does `ident` name the workspace crate in directory `dir`? Package names
/// follow the `soc-<dir>` convention, so the source ident is `soc_<dir>`;
/// bare `<dir>` is accepted too so fixture workspaces (and any future
/// unprefixed crate) resolve.
pub fn ident_names_crate(ident: &str, dir: &str) -> bool {
    ident == dir || (ident.strip_prefix("soc_") == Some(dir))
}

/// One reference from a file to a crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefSite {
    pub path: String,
    pub line: u32,
    pub in_test: bool,
}

/// Crate-level dependency graph with reference-site provenance.
#[derive(Debug, Default)]
pub struct CrateGraph {
    /// All workspace crate directory names, sorted.
    pub crates: Vec<String>,
    /// `(from, to)` → first reference site per file, sorted by path. Self
    /// edges are never recorded.
    pub edges: BTreeMap<(String, String), Vec<RefSite>>,
}

impl CrateGraph {
    /// Build the graph from every file's path roots, resolved against the
    /// set of crates that actually exist in the workspace.
    pub fn build(files: &[FileRef<'_>]) -> CrateGraph {
        let crates: BTreeSet<String> = files.iter().map(|f| f.crate_name.to_string()).collect();
        let mut edges: BTreeMap<(String, String), Vec<RefSite>> = BTreeMap::new();
        for f in files {
            let mut seen_here: BTreeSet<&str> = BTreeSet::new();
            for root in &f.model.path_roots {
                let Some(target) = crates.iter().find(|dir| ident_names_crate(&root.name, dir))
                else {
                    continue;
                };
                if target == f.crate_name || !seen_here.insert(target) {
                    continue; // self-reference, or already recorded for file
                }
                edges
                    .entry((f.crate_name.to_string(), target.clone()))
                    .or_default()
                    .push(RefSite {
                        path: f.path.to_string(),
                        line: root.line,
                        in_test: root.in_test,
                    });
            }
        }
        for sites in edges.values_mut() {
            sites.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
        }
        CrateGraph {
            crates: crates.into_iter().collect(),
            edges,
        }
    }

    /// Direct dependencies of `from`, sorted.
    pub fn deps_of(&self, from: &str) -> Vec<&str> {
        self.edges
            .keys()
            .filter(|(f, _)| f == from)
            .map(|(_, t)| t.as_str())
            .collect()
    }

    /// BFS over the dependency edges from `start`: every reachable crate
    /// mapped to its predecessor on a shortest path (for chain rendering).
    /// `start` itself is not included.
    pub fn reachable_from(&self, start: &str) -> BTreeMap<String, String> {
        let mut pred: BTreeMap<String, String> = BTreeMap::new();
        let mut queue = VecDeque::from([start.to_string()]);
        while let Some(cur) = queue.pop_front() {
            for dep in self.deps_of(&cur) {
                if dep != start && !pred.contains_key(dep) {
                    pred.insert(dep.to_string(), cur.clone());
                    queue.push_back(dep.to_string());
                }
            }
        }
        pred
    }

    /// The shortest dependency path `start → … → target`, as crate names,
    /// using a predecessor map from [`Self::reachable_from`].
    pub fn path_to(
        &self,
        start: &str,
        target: &str,
        pred: &BTreeMap<String, String>,
    ) -> Vec<String> {
        let mut chain = vec![target.to_string()];
        let mut cur = target;
        while cur != start {
            let Some(p) = pred.get(cur) else {
                return Vec::new(); // unreachable: no chain to render
            };
            chain.push(p.clone());
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// DOT rendering of the crate graph, layer-annotated when layers are
    /// configured. Deterministic output: nodes and edges in sorted order.
    pub fn render_dot(&self, layers: &Layers) -> String {
        let mut out = String::from("digraph workspace {\n  rankdir=LR;\n  node [shape=box];\n");
        for c in &self.crates {
            let label = match layers.layer_of(c) {
                Some(layer) => format!("{c}\\n[{layer}]"),
                None => c.clone(),
            };
            out.push_str(&format!("  \"{c}\" [label=\"{label}\"];\n"));
        }
        for ((from, to), sites) in &self.edges {
            out.push_str(&format!(
                "  \"{from}\" -> \"{to}\" [label=\"{}\"];\n",
                sites.len()
            ));
        }
        out.push_str("}\n");
        out
    }

    /// JSON rendering: `{"crates":[{"name","layer"}],"edges":[{"from","to",
    /// "refs","first_site"}]}`.
    pub fn render_json(&self, layers: &Layers) -> String {
        let mut out = String::from("{\"crates\":[");
        for (i, c) in self.crates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match layers.layer_of(c) {
                Some(layer) => out.push_str(&format!("{{\"name\":\"{c}\",\"layer\":\"{layer}\"}}")),
                None => out.push_str(&format!("{{\"name\":\"{c}\"}}")),
            }
        }
        out.push_str("],\"edges\":[");
        for (i, ((from, to), sites)) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let first = &sites[0];
            out.push_str(&format!(
                "{{\"from\":\"{from}\",\"to\":\"{to}\",\"refs\":{},\"first_site\":\"{}:{}\"}}",
                sites.len(),
                first.path,
                first.line
            ));
        }
        out.push_str("]}\n");
        out
    }
}

/// One function in the workspace call graph, addressed as
/// `(file index, fn index within that file's model)`.
pub type FnId = (usize, usize);

/// The intra-workspace call graph. Calls are resolved by name with crate
/// narrowing: a qualified call resolves inside the named crate, an
/// unqualified or method call resolves first inside the calling crate, then
/// across its direct dependencies. Unresolvable names (std, vendored crates)
/// simply produce no edge — the passes over this graph are about workspace
/// helpers, and a missing edge degrades to the per-file lints that already
/// cover direct uses.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Node `n` is function `self.fns[n]`.
    pub fns: Vec<FnId>,
    /// Outgoing call edges per node: `(callee node, call-site line)`.
    pub calls: Vec<Vec<(usize, u32)>>,
}

impl CallGraph {
    pub fn build(files: &[FileRef<'_>], crate_graph: &CrateGraph) -> CallGraph {
        // Index every fn by name, remembering its crate.
        let mut fns: Vec<FnId> = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, item) in f.model.fns.iter().enumerate() {
                by_name.entry(&item.name).or_default().push(fns.len());
                fns.push((fi, gi));
            }
        }
        let crate_of = |node: usize| files[fns[node].0].crate_name;

        let mut calls: Vec<Vec<(usize, u32)>> = vec![Vec::new(); fns.len()];
        for (node, &(fi, gi)) in fns.iter().enumerate() {
            let caller_crate = files[fi].crate_name;
            let deps: BTreeSet<&str> = crate_graph.deps_of(caller_crate).into_iter().collect();
            for call in &files[fi].model.fns[gi].calls {
                let Some(candidates) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                // Qualified by a crate name: resolve only inside that crate.
                let crate_qualified = call.qualifier.as_deref().and_then(|q| {
                    crate_graph
                        .crates
                        .iter()
                        .find(|dir| ident_names_crate(q, dir))
                });
                let resolved: Vec<usize> = if let Some(target_crate) = crate_qualified {
                    candidates
                        .iter()
                        .copied()
                        .filter(|&n| crate_of(n) == target_crate)
                        .collect()
                } else {
                    // Same crate first; otherwise any direct dependency.
                    let same: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&n| crate_of(n) == caller_crate)
                        .collect();
                    if same.is_empty() {
                        candidates
                            .iter()
                            .copied()
                            .filter(|&n| deps.contains(crate_of(n)))
                            .collect()
                    } else {
                        same
                    }
                };
                for callee in resolved {
                    calls[node].push((callee, call.line));
                }
            }
        }
        CallGraph { fns, calls }
    }

    /// Node indices of every fn, for iteration.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.fns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::source::SourceFile;

    fn files(
        list: &[(&'static str, &'static str, &'static str)],
    ) -> Vec<(String, String, FileModel)> {
        list.iter()
            .map(|(krate, path, src)| {
                let sf = SourceFile::parse(path, krate, src);
                (krate.to_string(), path.to_string(), parse_file(&sf))
            })
            .collect()
    }

    fn refs(owned: &[(String, String, FileModel)]) -> Vec<FileRef<'_>> {
        owned
            .iter()
            .map(|(c, p, m)| FileRef {
                crate_name: c,
                path: p,
                model: m,
            })
            .collect()
    }

    #[test]
    fn crate_edges_with_provenance() {
        let owned = files(&[
            (
                "cluster",
                "crates/cluster/src/lib.rs",
                "use soc_power::units::Watts;\nfn f() { soc_power::units::clamp(); }",
            ),
            ("power", "crates/power/src/lib.rs", "pub fn clamp() {}"),
        ]);
        let g = CrateGraph::build(&refs(&owned));
        assert_eq!(g.crates, ["cluster", "power"]);
        let sites = &g.edges[&("cluster".to_string(), "power".to_string())];
        // One site per file, the first reference.
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 1);
    }

    #[test]
    fn reachability_and_paths() {
        let owned = files(&[
            ("a", "crates/a/src/lib.rs", "use soc_b::x;"),
            ("b", "crates/b/src/lib.rs", "use soc_c::y;"),
            ("c", "crates/c/src/lib.rs", ""),
        ]);
        let g = CrateGraph::build(&refs(&owned));
        let pred = g.reachable_from("a");
        assert!(pred.contains_key("b") && pred.contains_key("c"));
        assert_eq!(g.path_to("a", "c", &pred), ["a", "b", "c"]);
        assert!(g.reachable_from("c").is_empty());
    }

    #[test]
    fn call_resolution_prefers_same_crate_then_deps() {
        let owned = files(&[
            (
                "a",
                "crates/a/src/lib.rs",
                "use soc_b::shared;\nfn local() {}\nfn f() { local(); shared(); soc_b::only_b(); }",
            ),
            (
                "b",
                "crates/b/src/lib.rs",
                "pub fn shared() {}\npub fn only_b() {}\nfn local() {}",
            ),
        ]);
        let g = CrateGraph::build(&refs(&owned));
        let cg = CallGraph::build(&refs(&owned), &g);
        // Find node for a::f (file 0, fn index 1).
        let f_node = cg.fns.iter().position(|&id| id == (0, 1)).unwrap();
        let callees: Vec<FnId> = cg.calls[f_node].iter().map(|&(n, _)| cg.fns[n]).collect();
        // local() resolves to a::local only; shared() to b::shared (not a
        // local one — none in a); only_b qualified to b.
        assert_eq!(callees, [(0, 0), (1, 0), (1, 1)]);
    }

    #[test]
    fn dot_and_json_are_deterministic_and_layered() {
        let owned = files(&[
            ("a", "crates/a/src/lib.rs", "use soc_b::x;"),
            ("b", "crates/b/src/lib.rs", ""),
        ]);
        let g = CrateGraph::build(&refs(&owned));
        let layers = crate::config::LintConfig::parse(
            "[layers.top]\ncrates = [\"a\"]\nmay-use = [\"bot\"]\n[layers.bot]\ncrates = [\"b\"]\nmay-use = []\n",
        )
        .unwrap()
        .layers;
        let dot = g.render_dot(&layers);
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.contains("[top]"));
        let json = g.render_json(&layers);
        assert!(json.contains("{\"from\":\"a\",\"to\":\"b\",\"refs\":1,"));
        assert!(json.contains("\"layer\":\"top\""));
    }
}

//! `lint.toml` — the allowlist ratchet.
//!
//! Legacy violations are waived one entry at a time, each with a written
//! justification, so the count can only go down: new code cannot hide behind
//! old waivers (entries pin a file, optionally a line), and entries that no
//! longer match anything are reported so they get deleted.
//!
//! The format is a deliberately tiny TOML subset, parsed by hand like the
//! JSON subset in `soc-analyze`:
//!
//! ```toml
//! [[allow]]
//! lint = "R001"
//! path = "crates/simcore/src/engine.rs"
//! # line = 42          # optional: omit to waive the whole file for this lint
//! justification = "heap pop follows a non-empty check two lines up"
//! ```

use crate::checks::Diagnostic;

/// One waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub lint: String,
    pub path: String,
    /// Waive only this line when present; the whole file for `lint` when
    /// absent.
    pub line: Option<u32>,
    pub justification: String,
}

impl AllowEntry {
    fn matches(&self, d: &Diagnostic) -> bool {
        self.lint == d.lint && self.path == d.path && self.line.is_none_or(|l| l == d.line)
    }
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse `lint.toml` text and keep only the `[[allow]]` entries. The
    /// full parser (layers, ratchet) lives in [`crate::config`]; this is the
    /// convenience entry point for code and tests that only care about
    /// waivers. Unknown keys, missing required keys, and anything outside
    /// the subset are hard errors: a waiver file that cannot be read exactly
    /// is a waiver file that silently waives wrong.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        Ok(crate::config::LintConfig::parse(text)?.allowlist)
    }

    /// Split diagnostics into (blocking, waived); also returns the indices of
    /// entries that matched nothing (stale waivers to delete).
    pub fn apply(
        &self,
        diags: Vec<Diagnostic>,
    ) -> (Vec<Diagnostic>, Vec<Diagnostic>, Vec<&AllowEntry>) {
        let mut blocking = Vec::new();
        let mut waived = Vec::new();
        let mut used = vec![false; self.entries.len()];
        for d in diags {
            match self.entries.iter().position(|e| e.matches(&d)) {
                Some(i) => {
                    used[i] = true;
                    waived.push(d);
                }
                None => blocking.push(d),
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(e, _)| e)
            .collect();
        (blocking, waived, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: &'static str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            lint,
            path: path.to_string(),
            line,
            message: String::new(),
        }
    }

    const SAMPLE: &str = r#"
# ratchet file
[[allow]]
lint = "R001"
path = "crates/simcore/src/engine.rs"
justification = "heap pop follows a non-empty check"

[[allow]]
lint = "R002"
path = "crates/core/src/soa.rs"
line = 99
justification = "unreachable by grant-id construction"
"#;

    #[test]
    fn parses_entries() {
        let list = Allowlist::parse(SAMPLE).unwrap();
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].line, None);
        assert_eq!(list.entries[1].line, Some(99));
    }

    #[test]
    fn apply_splits_and_reports_stale() {
        let list = Allowlist::parse(SAMPLE).unwrap();
        let diags = vec![
            diag("R001", "crates/simcore/src/engine.rs", 10),
            diag("R001", "crates/simcore/src/stats.rs", 3),
            diag("R002", "crates/core/src/soa.rs", 98),
        ];
        let (blocking, waived, stale) = list.apply(diags);
        // File-level waiver catches engine.rs; wrong file and wrong line block.
        assert_eq!(waived.len(), 1);
        assert_eq!(blocking.len(), 2);
        // The line-pinned entry matched nothing.
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].lint, "R002");
    }

    #[test]
    fn missing_justification_is_an_error() {
        let bad = "[[allow]]\nlint = \"R001\"\npath = \"x.rs\"\n";
        assert!(Allowlist::parse(bad).is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        let bad = "[[allow]]\nlint = \"R001\"\npath = \"x.rs\"\nreason = \"nope\"\n";
        assert!(Allowlist::parse(bad).is_err());
    }

    #[test]
    fn empty_file_is_empty_list() {
        assert!(Allowlist::parse("# nothing\n").unwrap().entries.is_empty());
    }
}

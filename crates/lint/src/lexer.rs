//! A minimal Rust lexer.
//!
//! Produces a flat token stream with line numbers — identifiers, punctuation,
//! and literals — with comments and whitespace stripped and string/char
//! literals reduced to opaque `Literal` tokens so their *contents* can never
//! trigger a lint. This is deliberately not a full parser: every lint in the
//! catalog is a token-pattern query (`std :: collections :: HashMap`, `.
//! unwrap (`, `fn name ( params )`), so a correct tokenization with literal
//! and comment opacity is exactly the substrate needed.
//!
//! Handled: line comments, nested block comments, doc comments, `"…"` and
//! `r#"…"#` strings (any hash depth, `b`/`br` prefixes), char literals vs
//! lifetimes, numeric literals with type suffixes, and the multi-char
//! operators the checks care about (`::`, `->`, `=>`).
//!
//! Doc comments are stripped from the token stream like ordinary comments —
//! their contents must never trigger a token-pattern lint — but [`lex`]
//! additionally returns them as [`DocLine`]s so the item parser can honor
//! documented `# Panics` contracts (lint R004).

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`).
    Ident,
    /// Punctuation: single characters plus the merged `::`, `->`, `=>`.
    Punct,
    /// String, char, byte, or numeric literal (contents opaque).
    Literal,
    /// A lifetime such as `'a` (kept distinct so char-literal detection
    /// cannot eat generic parameters).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    pub line: u32,
    pub kind: TokenKind,
}

impl Token {
    fn new(text: impl Into<String>, line: u32, kind: TokenKind) -> Token {
        Token {
            text: text.into(),
            line,
            kind,
        }
    }

    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// One line of doc-comment text (`///`, `//!`, `/** */`, `/*! */`) with its
/// 1-based source line. The token stream never contains these; the item
/// parser reads them to honor documented `# Panics` contracts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocLine {
    pub line: u32,
    pub text: String,
}

/// The full lexer output: the comment/literal-opaque token stream plus the
/// doc-comment lines stripped out of it.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub docs: Vec<DocLine>,
}

/// Tokenize Rust source, discarding doc-comment text. See [`lex`] for the
/// variant that keeps it.
pub fn tokenize(source: &str) -> Vec<Token> {
    lex(source).tokens
}

/// Tokenize Rust source. Never fails: unterminated constructs simply consume
/// to end-of-file, which is the right degradation for a linter (a file the
/// compiler rejects will be reported by the build, not by us).
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut docs: Vec<DocLine> = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment. `///` (but not `////`) and `//!` are doc
                // comments: captured as text, still absent from the tokens.
                let is_doc = match chars.get(i + 2) {
                    Some('/') => chars.get(i + 3) != Some(&'/'),
                    Some('!') => true,
                    _ => false,
                };
                let text_start = i + 3;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                if is_doc {
                    let text: String = chars[text_start.min(i)..i].iter().collect();
                    docs.push(DocLine {
                        line,
                        text: text.trim().to_string(),
                    });
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment; Rust block comments nest. `/**` (with
                // content) and `/*!` are doc comments, captured line by line;
                // the isolated `/**/` and `/***/` are ordinary comments.
                let is_doc = match chars.get(i + 2) {
                    Some('*') => {
                        chars.get(i + 3) != Some(&'/')
                            && !(chars.get(i + 3) == Some(&'*') && chars.get(i + 4) == Some(&'/'))
                    }
                    Some('!') => true,
                    _ => false,
                };
                let mut depth = 1;
                i += 2;
                if is_doc {
                    i += 1; // the `*`/`!` marker, not comment content
                }
                let mut buf = String::new();
                let flush = |line: u32, buf: &mut String, docs: &mut Vec<DocLine>| {
                    if is_doc {
                        let text = buf.trim().trim_start_matches('*').trim().to_string();
                        docs.push(DocLine { line, text });
                    }
                    buf.clear();
                };
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        flush(line, &mut buf, &mut docs);
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        buf.push(chars[i]);
                        i += 1;
                    }
                }
                // Final (or only) line of the block, `*/` excluded.
                flush(line, &mut buf, &mut docs);
            }
            '"' => {
                let start_line = line;
                i = skip_string(&chars, i, &mut line);
                tokens.push(Token::new("\"…\"", start_line, TokenKind::Literal));
            }
            'r' | 'b' if raw_string_start(&chars, i).is_some() => {
                let start_line = line;
                // Position of the opening quote and the number of `#`s.
                if let Some((quote, hashes)) = raw_string_start(&chars, i) {
                    i = if hashes == usize::MAX {
                        // Plain `b"…"`: delegate to the ordinary string scanner.
                        skip_string(&chars, quote, &mut line)
                    } else {
                        skip_raw_string(&chars, quote, hashes, &mut line)
                    };
                }
                tokens.push(Token::new("\"…\"", start_line, TokenKind::Literal));
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`). A quote
                // followed by ident-start is a lifetime unless the char after
                // the identifier char is a closing quote.
                let next = chars.get(i + 1).copied();
                let after = chars.get(i + 2).copied();
                let is_lifetime =
                    matches!(next, Some(n) if n.is_alphabetic() || n == '_') && after != Some('\'');
                if is_lifetime {
                    let start = i + 1;
                    let mut j = start;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    let name: String = chars[start..j].iter().collect();
                    tokens.push(Token::new(format!("'{name}"), line, TokenKind::Lifetime));
                    i = j;
                } else {
                    // Char literal: skip escape-aware to the closing quote.
                    let mut j = i + 1;
                    while j < chars.len() && chars[j] != '\'' {
                        if chars[j] == '\n' || (chars[j] == '\\' && chars.get(j + 1) == Some(&'\n'))
                        {
                            line += 1;
                        }
                        j += if chars[j] == '\\' { 2 } else { 1 };
                    }
                    tokens.push(Token::new("'…'", line, TokenKind::Literal));
                    i = j + 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::new(text, line, TokenKind::Ident));
            }
            c if c.is_ascii_digit() => {
                // Numeric literal, including underscores, `.` (but not `..`),
                // exponents, and type suffixes like `0u64` / `1.5f32`.
                let start = i;
                while i < chars.len() {
                    let d = chars[i];
                    let mid_float = d == '.'
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && chars.get(i.wrapping_sub(1)) != Some(&'.');
                    if d.is_alphanumeric() || d == '_' || mid_float {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::new(text, line, TokenKind::Literal));
            }
            ':' if chars.get(i + 1) == Some(&':') => {
                tokens.push(Token::new("::", line, TokenKind::Punct));
                i += 2;
            }
            '-' if chars.get(i + 1) == Some(&'>') => {
                tokens.push(Token::new("->", line, TokenKind::Punct));
                i += 2;
            }
            '=' if chars.get(i + 1) == Some(&'>') => {
                tokens.push(Token::new("=>", line, TokenKind::Punct));
                i += 2;
            }
            _ => {
                tokens.push(Token::new(c.to_string(), line, TokenKind::Punct));
                i += 1;
            }
        }
    }
    Lexed { tokens, docs }
}

/// Skip a `"…"` string starting at the opening quote index; returns the index
/// just past the closing quote and advances the line counter over embedded
/// newlines.
fn skip_string(chars: &[char], open: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // A line-continuation escape (`\` at end of line) still
                // advances the line counter or every later diagnostic drifts.
                if chars.get(j + 1) == Some(&'\n') {
                    *line += 1;
                }
                j += 2;
            }
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// If `chars[i..]` begins a raw (or byte) string, return the index of the
/// opening quote and the hash count. Plain `b"…"` (no `r`) is signalled with
/// `usize::MAX` hashes so the caller uses the escape-aware scanner.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        let mut hashes = 0;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) == Some(&'"') {
            return Some((j, hashes));
        }
        return None;
    }
    // `b"…"` byte string with ordinary escapes.
    if j > i && chars.get(j) == Some(&'"') {
        return Some((j, usize::MAX));
    }
    None
}

/// Skip a raw string `r#…#"…"#…#` whose opening quote is at `open` with
/// `hashes` hash marks; returns the index just past the closing delimiter.
fn skip_raw_string(chars: &[char], open: usize, hashes: usize, line: &mut u32) -> usize {
    let mut j = open + 1;
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
        } else if chars[j] == '"' {
            let mut k = 0;
            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return j + 1 + hashes;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_paths() {
        assert_eq!(
            texts("use std::collections::HashMap;"),
            ["use", "std", "::", "collections", "::", "HashMap", ";"]
        );
    }

    #[test]
    fn comments_are_opaque() {
        assert_eq!(
            texts("// HashMap\nx /* Instant /* nested */ */ y"),
            ["x", "y"]
        );
        assert_eq!(
            texts("/// doc HashMap\nfn f() {}"),
            ["fn", "f", "(", ")", "{", "}"]
        );
    }

    #[test]
    fn strings_are_opaque() {
        assert_eq!(
            texts(r#"let s = "HashMap::new()";"#),
            ["let", "s", "=", "\"…\"", ";"]
        );
        assert_eq!(
            texts(r##"let s = r#"Instant"#;"##),
            ["let", "s", "=", "\"…\"", ";"]
        );
        assert_eq!(
            texts(r#"let b = b"rand";"#),
            ["let", "b", "=", "\"…\"", ";"]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(
            texts("fn f<'a>(x: &'a str)"),
            ["fn", "f", "<", "'a", ">", "(", "x", ":", "&", "'a", "str", ")"]
        );
        assert_eq!(
            texts(r"let c = 'x'; let n = '\n';"),
            ["let", "c", "=", "'…'", ";", "let", "n", "=", "'…'", ";"]
        );
    }

    #[test]
    fn numbers_with_suffixes() {
        assert_eq!(texts("1_000u64 + 2.5f32"), ["1_000u64", "+", "2.5f32"]);
        // A range must not be eaten as a float.
        assert_eq!(texts("0..10"), ["0", ".", ".", "10"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = tokenize("a\n/* two\nlines */\nb\n\"x\ny\"\nc");
        let lines: Vec<(String, u32)> = toks.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(
            lines,
            [
                ("a".to_string(), 1),
                ("b".to_string(), 4),
                ("\"…\"".to_string(), 5),
                ("c".to_string(), 7)
            ]
        );
    }

    #[test]
    fn merged_operators() {
        assert_eq!(
            texts("a::b -> c => d"),
            ["a", "::", "b", "->", "c", "=>", "d"]
        );
    }

    // --- edge-case regressions (nested comments, raw strings, doc lines) ---

    #[test]
    fn deeply_nested_block_comments_close_exactly() {
        // The inner `*/` must not close the outer comment, and the token
        // after the whole construct must land on the right line.
        let toks = tokenize("a /* 1 /* 2 /* 3 */ 2 */ 1 */ b");
        let got: Vec<(String, u32)> = toks.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(got, [("a".to_string(), 1), ("b".to_string(), 1)]);
        // Unbalanced nesting consumes to EOF, like rustc.
        assert_eq!(texts("x /* /* */ y"), ["x"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque_and_line_exact() {
        // `"#` inside an `r##"…"##` body must not close the literal.
        let toks = tokenize("r##\"a \"# Instant\nHashMap\"## after");
        let got: Vec<(String, u32)> = toks.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(got, [("\"…\"".to_string(), 1), ("after".to_string(), 2)]);
        // A raw string has no escapes: `\` right before the closing quote.
        assert_eq!(texts(r#"r"a\" b"#), ["\"…\"", "b"]);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        // `\` at end of line inside a string literal swallows the newline;
        // the counter must still advance or every later line drifts.
        let toks = tokenize("let s = \"a\\\nb\";\nnext");
        let next = toks.into_iter().find(|t| t.text == "next").unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn doc_comments_are_stripped_but_captured() {
        let lexed = lex("/// outer HashMap\n//! inner Instant\n//// not-a-doc rand\nfn f() {}");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        // None of the comment contents leak into the token stream.
        assert_eq!(texts, ["fn", "f", "(", ")", "{", "}"]);
        let docs: Vec<(u32, &str)> = lexed
            .docs
            .iter()
            .map(|d| (d.line, d.text.as_str()))
            .collect();
        assert_eq!(docs, [(1, "outer HashMap"), (2, "inner Instant")]);
    }

    #[test]
    fn block_doc_comments_yield_per_line_text() {
        let lexed = lex("/** first\n * # Panics\n */\nfn f() {}");
        let docs: Vec<(u32, &str)> = lexed
            .docs
            .iter()
            .map(|d| (d.line, d.text.as_str()))
            .collect();
        assert_eq!(docs, [(1, "first"), (2, "# Panics"), (3, "")]);
        assert_eq!(lexed.tokens[0].line, 4);
        // `/**/` and `/***/` are ordinary comments, not docs.
        assert!(lex("/**/ /***/ x").docs.is_empty());
    }
}

//! Per-file source model: token stream plus the structural facts the checks
//! need — which tokens sit inside `#[cfg(test)]` / `#[test]` items, which
//! crate the file belongs to, and whether it is a binary entry point.

use crate::lexer::{lex, DocLine, Token};

/// A tokenized source file with lint-relevant structure attached.
pub struct SourceFile {
    /// Workspace-relative path (`crates/power/src/units.rs`).
    pub path: String,
    /// Directory name under `crates/` (`power`, not the package name).
    pub crate_name: String,
    /// Token stream (comments and literal contents already stripped).
    pub tokens: Vec<Token>,
    /// Doc-comment lines stripped out of the token stream, in line order;
    /// the item parser reads these for documented `# Panics` contracts.
    pub docs: Vec<DocLine>,
    /// Parallel to `tokens`: true when the token is inside a `#[cfg(test)]`
    /// or `#[test]` item (the attribute itself, the item header, and the
    /// whole body).
    pub in_test: Vec<bool>,
    /// True for `src/bin/*` and `src/main.rs` — CLI entry points, where the
    /// robustness lints do not apply (a `main` reporting errors via
    /// `ExitCode` has no caller to propagate to).
    pub is_bin: bool,
}

impl SourceFile {
    /// Tokenize `source` and compute structure.
    pub fn parse(path: &str, crate_name: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        let in_test = mark_test_regions(&lexed.tokens);
        let is_bin = path.contains("/src/bin/") || path.ends_with("src/main.rs");
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            tokens: lexed.tokens,
            docs: lexed.docs,
            in_test,
            is_bin,
        }
    }
}

/// Mark every token belonging to a `#[cfg(test)]` or `#[test]` item.
///
/// An attribute covers the item that follows it: any further attributes and
/// then either a braced body (covered to the matching `}`) or a `;`-item
/// (covered to the `;`). `cfg` attributes count when they mention `test`
/// anywhere in their argument (`cfg(test)`, `cfg(any(test, fuzzing))`);
/// bare `#[test]`-style attributes count when their final path segment is
/// `test` (covers `#[test]`, `#[tokio::test]`).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let attr_start = i;
            let close = match matching(tokens, i + 1, "[", "]") {
                Some(c) => c,
                None => break, // unterminated attribute: nothing more to mark
            };
            if attr_is_test(&tokens[i + 2..close]) {
                let end = item_end(tokens, close + 1).unwrap_or(tokens.len() - 1);
                for flag in in_test.iter_mut().take(end + 1).skip(attr_start) {
                    *flag = true;
                }
            }
            i = close + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Does this attribute body (tokens between `#[` and `]`) gate on test?
fn attr_is_test(body: &[Token]) -> bool {
    let Some(first) = body.first() else {
        return false;
    };
    if first.is_ident("cfg") {
        // `test` counts only outside a `not(...)` group: `#[cfg(not(test))]`
        // gates code that runs everywhere EXCEPT tests, so exempting it from
        // the R-lints would be exactly backwards.
        return cfg_mentions_test(body);
    }
    // Bare test-like attribute: last path segment is `test`.
    body.last().is_some_and(|t| t.is_ident("test"))
}

/// Scan a `cfg(...)` attribute body for `test` outside any `not(...)`.
fn cfg_mentions_test(body: &[Token]) -> bool {
    // Depth of nesting inside `not(...)` groups: when >0, `test` is negated.
    let mut not_depth = 0usize;
    // Parenthesis depths at which a `not(` group opened.
    let mut not_opens: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    let mut prev_ident_not = false;
    for t in body {
        if t.is_punct("(") {
            if prev_ident_not {
                not_depth += 1;
                not_opens.push(depth);
            }
            depth += 1;
        } else if t.is_punct(")") {
            depth = depth.saturating_sub(1);
            if not_opens.last() == Some(&depth) {
                not_opens.pop();
                not_depth -= 1;
            }
        } else if t.is_ident("test") && not_depth == 0 {
            return true;
        }
        prev_ident_not = t.is_ident("not");
    }
    false
}

/// Index of the token that ends the item starting at `start`: the `}`
/// matching its first body brace, or a top-level `;` for brace-less items.
/// Skips over any further attributes before the item keyword.
fn item_end(tokens: &[Token], start: usize) -> Option<usize> {
    let mut i = start;
    // Skip stacked attributes (`#[test] #[ignore] fn …`).
    while i < tokens.len()
        && tokens[i].is_punct("#")
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        i = matching(tokens, i + 1, "[", "]")? + 1;
    }
    // Walk to the item body `{` or terminating `;`, stepping over any
    // parenthesized/bracketed groups in the header (fn args, generics are
    // `<`/`>` which never nest ambiguously at item level for our purposes).
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            return matching(tokens, i, "{", "}");
        }
        if t.is_punct(";") {
            return Some(i);
        }
        if t.is_punct("(") {
            i = matching(tokens, i, "(", ")")? + 1;
        } else if t.is_punct("[") {
            i = matching(tokens, i, "[", "]")? + 1;
        } else {
            i += 1;
        }
    }
    None
}

/// Index of the closer matching the opener at `open` (which must hold the
/// `open_tok` punctuation).
fn matching(tokens: &[Token], open: usize, open_tok: &str, close_tok: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_tok) {
            depth += 1;
        } else if t.is_punct(close_tok) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_flags(src: &str) -> Vec<(String, bool)> {
        let sf = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        sf.tokens
            .iter()
            .zip(&sf.in_test)
            .map(|(t, &f)| (t.text.clone(), f))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_covered() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn tail() {}";
        let flags = test_flags(src);
        let covered: Vec<&str> = flags
            .iter()
            .filter(|(_, f)| *f)
            .map(|(t, _)| t.as_str())
            .collect();
        assert!(covered.contains(&"unwrap"));
        assert!(covered.contains(&"mod"));
        let uncovered: Vec<&str> = flags
            .iter()
            .filter(|(_, f)| !*f)
            .map(|(t, _)| t.as_str())
            .collect();
        assert!(uncovered.contains(&"lib"));
        assert!(uncovered.contains(&"tail"));
    }

    #[test]
    fn bare_test_fn_is_covered() {
        let src = "#[test]\nfn check() { y.unwrap(); }\nfn real() { work(); }";
        let flags = test_flags(src);
        assert!(flags.iter().any(|(t, f)| t == "unwrap" && *f));
        assert!(flags.iter().any(|(t, f)| t == "work" && !*f));
    }

    #[test]
    fn stacked_attributes_and_cfg_any() {
        let src = "#[cfg(any(test, fuzzing))]\n#[allow(dead_code)]\nfn helper() { z.unwrap(); }";
        let flags = test_flags(src);
        assert!(flags.iter().any(|(t, f)| t == "unwrap" && *f));
    }

    #[test]
    fn cfg_not_test_is_not_covered() {
        let src = "#[cfg(feature = \"extra\")]\nfn gated() { q.unwrap(); }";
        let flags = test_flags(src);
        assert!(flags.iter().any(|(t, f)| t == "unwrap" && !*f));
        // `#[cfg(not(test))]` code runs everywhere EXCEPT under test — it is
        // ordinary library code and must not be exempt from the R-lints.
        let src = "#[cfg(not(test))]\nfn prod() { q.unwrap(); }";
        let flags = test_flags(src);
        assert!(flags.iter().any(|(t, f)| t == "unwrap" && !*f));
        // But `test` outside the `not(...)` group still gates the item.
        let src = "#[cfg(any(test, not(fuzzing)))]\nfn t() { q.unwrap(); }";
        let flags = test_flags(src);
        assert!(flags.iter().any(|(t, f)| t == "unwrap" && *f));
    }

    #[test]
    fn semicolon_items_end_at_semicolon() {
        let src = "#[cfg(test)]\nuse helpers::x;\nfn real() { work(); }";
        let flags = test_flags(src);
        assert!(flags.iter().any(|(t, f)| t == "helpers" && *f));
        assert!(flags.iter().any(|(t, f)| t == "work" && !*f));
    }

    #[test]
    fn bin_detection() {
        assert!(SourceFile::parse("crates/x/src/bin/tool.rs", "x", "").is_bin);
        assert!(SourceFile::parse("crates/x/src/main.rs", "x", "").is_bin);
        assert!(!SourceFile::parse("crates/x/src/lib.rs", "x", "").is_bin);
    }
}

//! SARIF 2.1.0 output for the `soc-lint sarif` subcommand.
//!
//! SARIF (Static Analysis Results Interchange Format) is the schema CI
//! systems and code-scanning UIs ingest. The renderer emits one run with the
//! full lint catalog as `rules`, every blocking violation as an `error`
//! result, and every waived violation as a suppressed result whose
//! suppression carries the `lint.toml` justification — so the waiver debt is
//! visible in the same artifact as the live findings.
//!
//! Hand-rolled like the other renderers (no serde in this workspace); the
//! subset is fixed, so a string builder plus the shared JSON escaper is the
//! whole implementation.

use crate::allowlist::Allowlist;
use crate::catalog::CATALOG;
use crate::checks::Diagnostic;
use crate::report::{json_string, CheckReport};

const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";
const VERSION: &str = "2.1.0";

/// Render one check run as a SARIF 2.1.0 log. `allow` supplies the
/// justification text attached to each suppressed (waived) result.
pub fn render_sarif(report: &CheckReport, allow: &Allowlist) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"$schema\":{},\"version\":{},\"runs\":[{{",
        json_string(SCHEMA),
        json_string(VERSION)
    ));
    out.push_str("\"tool\":{\"driver\":{\"name\":\"soc-lint\",");
    out.push_str(&format!(
        "\"informationUri\":{},\"rules\":[",
        json_string("https://github.com/smartoclock-sim")
    ));
    for (i, l) in CATALOG.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"name\":{},\"shortDescription\":{{\"text\":{}}},\
             \"fullDescription\":{{\"text\":{}}},\"defaultConfiguration\":{{\"level\":\"error\"}}}}",
            json_string(l.id),
            json_string(l.name),
            json_string(l.summary),
            json_string(l.rationale),
        ));
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for d in &report.blocking {
        push_result(&mut out, &mut first, d, None);
    }
    for d in &report.waived {
        let justification = allow
            .entries
            .iter()
            .find(|e| e.lint == d.lint && e.path == d.path && e.line.is_none_or(|l| l == d.line))
            .map(|e| e.justification.as_str())
            .unwrap_or("waived in lint.toml");
        push_result(&mut out, &mut first, d, Some(justification));
    }
    out.push_str("]}]}");
    out.push('\n');
    out
}

/// Append one SARIF result. A `Some` justification marks the result as
/// suppressed by the external allowlist.
fn push_result(out: &mut String, first: &mut bool, d: &Diagnostic, waived: Option<&str>) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let rule_index = CATALOG
        .iter()
        .position(|l| l.id == d.lint)
        .map_or(-1i64, |i| i as i64);
    out.push_str(&format!(
        "{{\"ruleId\":{},\"ruleIndex\":{rule_index},\"level\":\"error\",\
         \"message\":{{\"text\":{}}},\"locations\":[{{\"physicalLocation\":\
         {{\"artifactLocation\":{{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]",
        json_string(d.lint),
        json_string(&d.message),
        json_string(&d.path),
        d.line
    ));
    if let Some(justification) = waived {
        out.push_str(&format!(
            ",\"suppressions\":[{{\"kind\":\"external\",\"justification\":{}}}]",
            json_string(justification)
        ));
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allowlist::AllowEntry;

    fn report() -> CheckReport {
        CheckReport {
            blocking: vec![Diagnostic {
                lint: "D001",
                path: "crates/power/src/x.rs".to_string(),
                line: 7,
                message: "HashMap in sim-state \"crate\"".to_string(),
            }],
            waived: vec![Diagnostic {
                lint: "R001",
                path: "crates/core/src/y.rs".to_string(),
                line: 3,
                message: ".unwrap() in library code".to_string(),
            }],
            stale: vec![],
            files: 2,
        }
    }

    fn allow() -> Allowlist {
        Allowlist {
            entries: vec![AllowEntry {
                lint: "R001".to_string(),
                path: "crates/core/src/y.rs".to_string(),
                line: Some(3),
                justification: "non-empty by construction".to_string(),
            }],
        }
    }

    #[test]
    fn sarif_shape_is_valid() {
        let sarif = render_sarif(&report(), &allow());
        // Top-level schema shape.
        assert!(sarif.starts_with(
            "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{"
        ));
        assert!(sarif.contains("\"tool\":{\"driver\":{\"name\":\"soc-lint\""));
        // Every catalog rule is listed with descriptions.
        for l in CATALOG {
            assert!(
                sarif.contains(&format!("{{\"id\":\"{}\",\"name\":\"{}\"", l.id, l.name)),
                "rule {} missing",
                l.id
            );
        }
        // The blocking result points at the right file/line and rule.
        assert!(sarif.contains("\"ruleId\":\"D001\""));
        assert!(sarif.contains("\"uri\":\"crates/power/src/x.rs\""));
        assert!(sarif.contains("\"startLine\":7"));
        // The waived result is suppressed with its lint.toml justification.
        assert!(sarif.contains(
            "\"suppressions\":[{\"kind\":\"external\",\"justification\":\"non-empty by construction\"}]"
        ));
        // Escaping survives into the message text.
        assert!(sarif.contains("HashMap in sim-state \\\"crate\\\""));
        // Exactly one run, results array closes the document.
        assert!(sarif.trim_end().ends_with("]}]}"));
    }

    #[test]
    fn rule_indices_match_catalog_positions() {
        let sarif = render_sarif(&report(), &Allowlist::default());
        let d001_pos = CATALOG.iter().position(|l| l.id == "D001").unwrap();
        assert!(sarif.contains(&format!("\"ruleId\":\"D001\",\"ruleIndex\":{d001_pos}")));
    }

    #[test]
    fn empty_report_is_still_valid() {
        let empty = CheckReport {
            blocking: vec![],
            waived: vec![],
            stale: vec![],
            files: 0,
        };
        let sarif = render_sarif(&empty, &Allowlist::default());
        assert!(sarif.contains("\"results\":[]"));
    }
}

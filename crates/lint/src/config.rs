//! `lint.toml` — the full lint configuration: the `[[allow]]` waiver ratchet
//! ([`crate::allowlist`]), the `[layers.*]` architecture declaration, and the
//! `[ratchet]` baseline.
//!
//! The layers section is the declarative replacement for the crate-name
//! special cases that used to live in `checks.rs`: instead of a hard-coded
//! `soc_prof | soc_health` match arm, the file declares which tier every
//! workspace crate belongs to and which tiers each tier may depend on, and
//! the A001/A002 passes enforce it by graph reachability:
//!
//! ```toml
//! [layers.sim-state]
//! crates = ["simcore", "power", "core"]
//! may-use = ["emit"]            # same-layer edges are always allowed
//!
//! [layers.emit]
//! crates = ["telemetry"]
//! may-use = []
//!
//! [ratchet]
//! allowlist-baseline = 12       # soc-lint ratchet fails if [[allow]] grows
//! ```
//!
//! The layer named `sim-state` is special by convention: the determinism and
//! unit lints (D-/U-series) apply to its crates, and D006/R004 treat its
//! public API as the protected surface. When `lint.toml` declares no layers
//! at all, [`Layers::builtin_default`] supplies the workspace's standard
//! tiering so a fresh checkout still checks.

use crate::allowlist::{AllowEntry, Allowlist};
use std::collections::BTreeSet;

/// One architecture tier: a named set of crates plus the other tiers its
/// crates may depend on (its own tier is always allowed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerDef {
    pub name: String,
    /// Crate directory names under `crates/` (`power`, not `soc-power`).
    pub crates: Vec<String>,
    /// Names of other layers this layer's crates may reference.
    pub may_use: Vec<String>,
}

/// The declared (or default) tier structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layers {
    pub layers: Vec<LayerDef>,
}

/// The layer whose crates carry the determinism/unit invariants.
pub const SIM_STATE_LAYER: &str = "sim-state";

impl Layers {
    /// The workspace's standard tiering, used when `lint.toml` declares no
    /// `[layers.*]` sections (e.g. a fresh checkout without the file).
    pub fn builtin_default() -> Layers {
        let layer = |name: &str, crates: &[&str], may_use: &[&str]| LayerDef {
            name: name.to_string(),
            crates: crates.iter().map(|s| s.to_string()).collect(),
            may_use: may_use.iter().map(|s| s.to_string()).collect(),
        };
        Layers {
            layers: vec![
                layer(
                    SIM_STATE_LAYER,
                    &[
                        "simcore",
                        "power",
                        "reliability",
                        "predict",
                        "traces",
                        "workloads",
                        "core",
                        "cluster",
                    ],
                    &["emit"],
                ),
                // telemetry timestamps rows with simcore::time::SimTime, so
                // the emit layer may read sim-state primitives (never the
                // other observability layers).
                layer("emit", &["telemetry"], &["sim-state"]),
                layer(
                    "observation",
                    &["analyze", "prof", "health"],
                    &["emit", "sim-state"],
                ),
                layer(
                    "tooling",
                    &["bench", "lint"],
                    &["observation", "emit", "sim-state"],
                ),
            ],
        }
    }

    /// The layer a crate belongs to, if assigned.
    pub fn layer_of(&self, crate_name: &str) -> Option<&str> {
        self.layers
            .iter()
            .find(|l| l.crates.iter().any(|c| c == crate_name))
            .map(|l| l.name.as_str())
    }

    /// May a crate in `from_layer` reference a crate in `to_layer`?
    pub fn allows(&self, from_layer: &str, to_layer: &str) -> bool {
        if from_layer == to_layer {
            return true;
        }
        self.layers
            .iter()
            .find(|l| l.name == from_layer)
            .is_some_and(|l| l.may_use.iter().any(|m| m == to_layer))
    }

    /// Crates carrying the determinism/unit invariants (the `sim-state`
    /// layer).
    pub fn sim_state_crates(&self) -> BTreeSet<&str> {
        self.layers
            .iter()
            .filter(|l| l.name == SIM_STATE_LAYER)
            .flat_map(|l| l.crates.iter().map(String::as_str))
            .collect()
    }

    /// Every crate assigned to any layer.
    pub fn all_crates(&self) -> BTreeSet<&str> {
        self.layers
            .iter()
            .flat_map(|l| l.crates.iter().map(String::as_str))
            .collect()
    }

    /// Structural checks: no crate in two layers, `may-use` names must refer
    /// to declared layers, layer names unique.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = BTreeSet::new();
        for l in &self.layers {
            if !names.insert(l.name.as_str()) {
                return Err(format!("lint.toml: layer `{}` declared twice", l.name));
            }
        }
        let mut seen_crates = BTreeSet::new();
        for l in &self.layers {
            for c in &l.crates {
                if !seen_crates.insert(c.as_str()) {
                    return Err(format!(
                        "lint.toml: crate `{c}` assigned to more than one layer"
                    ));
                }
            }
            for m in &l.may_use {
                if !names.contains(m.as_str()) {
                    return Err(format!(
                        "lint.toml: layer `{}` may-use unknown layer `{m}`",
                        l.name
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for Layers {
    fn default() -> Layers {
        Layers::builtin_default()
    }
}

/// Everything `lint.toml` configures.
#[derive(Debug, Default)]
pub struct LintConfig {
    pub allowlist: Allowlist,
    pub layers: Layers,
    /// True when the file declared `[layers.*]` sections itself (as opposed
    /// to inheriting the builtin default). Workspace-completeness validation
    /// — every discovered crate must be assigned — applies either way, but
    /// error messages point at the right place.
    pub layers_declared: bool,
    /// `[ratchet] allowlist-baseline`: the committed `[[allow]]` entry count
    /// that `soc-lint ratchet` enforces against.
    pub ratchet_baseline: Option<usize>,
}

/// Which table the line parser is currently inside.
enum Section {
    None,
    Allow(PartialEntry),
    Layer(LayerDef),
    Ratchet,
}

#[derive(Default)]
struct PartialEntry {
    lint: Option<String>,
    path: Option<String>,
    line: Option<u32>,
    justification: Option<String>,
}

impl PartialEntry {
    fn finish(self) -> Result<AllowEntry, String> {
        let lint = self
            .lint
            .ok_or("lint.toml: [[allow]] entry missing `lint`")?;
        let path = self
            .path
            .ok_or("lint.toml: [[allow]] entry missing `path`")?;
        let justification = self.justification.ok_or_else(|| {
            format!("lint.toml: waiver for {lint} at {path} has no justification")
        })?;
        if justification.trim().is_empty() {
            return Err(format!(
                "lint.toml: waiver for {lint} at {path} has an empty justification"
            ));
        }
        Ok(AllowEntry {
            lint,
            path,
            line: self.line,
            justification,
        })
    }
}

impl LintConfig {
    /// Parse the full `lint.toml` text. The grammar is the same deliberately
    /// tiny TOML subset the allowlist has always used — `[[allow]]` tables,
    /// `[layers.<name>]` / `[ratchet]` sections, `key = value` lines with
    /// quoted strings, integers, and `["a", "b"]` string arrays. Unknown
    /// keys and sections are hard errors: a config file that cannot be read
    /// exactly is a config file that silently configures wrong.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut layers: Vec<LayerDef> = Vec::new();
        let mut ratchet_baseline: Option<usize> = None;
        let mut section = Section::None;

        let finish = |section: Section,
                      entries: &mut Vec<AllowEntry>,
                      layers: &mut Vec<LayerDef>|
         -> Result<(), String> {
            match section {
                Section::Allow(partial) => entries.push(partial.finish()?),
                Section::Layer(layer) => layers.push(layer),
                Section::None | Section::Ratchet => {}
            }
            Ok(())
        };

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                finish(
                    std::mem::replace(&mut section, Section::Allow(PartialEntry::default())),
                    &mut entries,
                    &mut layers,
                )?;
                continue;
            }
            if let Some(name) = line
                .strip_prefix("[layers.")
                .and_then(|r| r.strip_suffix(']'))
            {
                if name.is_empty() {
                    return Err(format!("lint.toml:{lineno}: layer section needs a name"));
                }
                finish(
                    std::mem::replace(
                        &mut section,
                        Section::Layer(LayerDef {
                            name: name.to_string(),
                            crates: Vec::new(),
                            may_use: Vec::new(),
                        }),
                    ),
                    &mut entries,
                    &mut layers,
                )?;
                continue;
            }
            if line == "[ratchet]" {
                finish(
                    std::mem::replace(&mut section, Section::Ratchet),
                    &mut entries,
                    &mut layers,
                )?;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("lint.toml:{lineno}: unknown section `{line}`"));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "lint.toml:{lineno}: expected `key = value` or a section header"
                ));
            };
            let key = key.trim();
            let value = value.trim();
            match &mut section {
                Section::None => {
                    return Err(format!("lint.toml:{lineno}: key outside any section"));
                }
                Section::Allow(entry) => match key {
                    "lint" => entry.lint = Some(parse_string(value, lineno)?),
                    "path" => entry.path = Some(parse_string(value, lineno)?),
                    "justification" => entry.justification = Some(parse_string(value, lineno)?),
                    "line" => {
                        let n: u32 = value
                            .parse()
                            .map_err(|_| format!("lint.toml:{lineno}: line must be an integer"))?;
                        entry.line = Some(n);
                    }
                    other => {
                        return Err(format!("lint.toml:{lineno}: unknown key `{other}`"));
                    }
                },
                Section::Layer(layer) => match key {
                    "crates" => layer.crates = parse_string_array(value, lineno)?,
                    "may-use" => layer.may_use = parse_string_array(value, lineno)?,
                    other => {
                        return Err(format!(
                            "lint.toml:{lineno}: unknown key `{other}` in [layers.{}]",
                            layer.name
                        ));
                    }
                },
                Section::Ratchet => match key {
                    "allowlist-baseline" => {
                        let n: usize = value.parse().map_err(|_| {
                            format!("lint.toml:{lineno}: allowlist-baseline must be an integer")
                        })?;
                        ratchet_baseline = Some(n);
                    }
                    other => {
                        return Err(format!(
                            "lint.toml:{lineno}: unknown key `{other}` in [ratchet]"
                        ));
                    }
                },
            }
        }
        finish(section, &mut entries, &mut layers)?;

        let layers_declared = !layers.is_empty();
        let layers = if layers_declared {
            let l = Layers { layers };
            l.validate()?;
            l
        } else {
            Layers::builtin_default()
        };
        Ok(LintConfig {
            allowlist: Allowlist { entries },
            layers,
            layers_declared,
            ratchet_baseline,
        })
    }
}

/// Parse a double-quoted TOML string (no escape support needed for paths,
/// lint ids, and prose; a backslash is taken literally).
pub(crate) fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or(format!(
            "lint.toml:{lineno}: expected a double-quoted string"
        ))?;
    Ok(inner.to_string())
}

/// Parse a `["a", "b"]` array of double-quoted strings (empty `[]` allowed).
fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or(format!("lint.toml:{lineno}: expected a [\"…\"] array"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| parse_string(item.trim(), lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[[allow]]
lint = "R001"
path = "crates/simcore/src/engine.rs"
justification = "heap pop follows a non-empty check"

[layers.sim-state]
crates = ["simcore", "power"]
may-use = ["emit"]

[layers.emit]
crates = ["telemetry"]
may-use = []

[ratchet]
allowlist-baseline = 7
"#;

    #[test]
    fn parses_all_sections() {
        let cfg = LintConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.allowlist.entries.len(), 1);
        assert!(cfg.layers_declared);
        assert_eq!(cfg.layers.layers.len(), 2);
        assert_eq!(cfg.ratchet_baseline, Some(7));
        assert_eq!(cfg.layers.layer_of("power"), Some("sim-state"));
        assert_eq!(cfg.layers.layer_of("unknown"), None);
        assert!(cfg.layers.allows("sim-state", "emit"));
        assert!(cfg.layers.allows("sim-state", "sim-state"));
        assert!(!cfg.layers.allows("emit", "sim-state"));
        assert_eq!(
            cfg.layers
                .sim_state_crates()
                .into_iter()
                .collect::<Vec<_>>(),
            ["power", "simcore"]
        );
    }

    #[test]
    fn no_layers_falls_back_to_builtin() {
        let cfg = LintConfig::parse("# empty\n").unwrap();
        assert!(!cfg.layers_declared);
        assert!(cfg.layers.sim_state_crates().contains("simcore"));
        assert_eq!(cfg.layers.layer_of("health"), Some("observation"));
        assert!(cfg.layers.allows("tooling", "observation"));
        assert!(!cfg.layers.allows("sim-state", "observation"));
        // The builtin default must itself be structurally valid.
        Layers::builtin_default().validate().unwrap();
    }

    #[test]
    fn duplicate_crate_assignment_is_an_error() {
        let bad = "[layers.a]\ncrates = [\"x\"]\nmay-use = []\n\
                   [layers.b]\ncrates = [\"x\"]\nmay-use = []\n";
        assert!(LintConfig::parse(bad)
            .unwrap_err()
            .contains("more than one"));
    }

    #[test]
    fn may_use_must_name_a_declared_layer() {
        let bad = "[layers.a]\ncrates = [\"x\"]\nmay-use = [\"ghost\"]\n";
        assert!(LintConfig::parse(bad).unwrap_err().contains("ghost"));
    }

    #[test]
    fn unknown_section_and_key_are_errors() {
        assert!(LintConfig::parse("[mystery]\nx = 1\n").is_err());
        assert!(LintConfig::parse("[ratchet]\nbudget = 3\n").is_err());
        assert!(LintConfig::parse("[layers.a]\nnames = []\n").is_err());
    }

    #[test]
    fn empty_array_and_spacing_variants() {
        let cfg =
            LintConfig::parse("[layers.a]\ncrates = [ \"x\" , \"y\" ]\nmay-use = []\n").unwrap();
        assert_eq!(cfg.layers.layers[0].crates, ["x", "y"]);
        assert!(cfg.layers.layers[0].may_use.is_empty());
    }
}

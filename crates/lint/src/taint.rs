//! Call-graph taint passes: D006 (determinism) and R004 (panic
//! reachability).
//!
//! The per-file D-lints catch a wall-clock read *written in* a sim-state
//! crate, but not one *laundered through* a helper: a crate in an allowed
//! layer wraps `SystemTime::now()` in `now_ms()` and the sim calls the
//! wrapper — every file lints clean, the run is still non-deterministic.
//! D006 closes that hole by propagating taint from non-deterministic
//! sources backward along the workspace call graph and flagging sim-state
//! call sites whose callee (defined outside the sim-state layer) is
//! tainted.
//!
//! R004 does the same for panics: a sim-state `pub fn` whose call chain
//! reaches an `.unwrap()`, `panic!`, or slice-indexing site can abort a
//! multi-hour simulation from deep inside a helper. Two barriers encode
//! accepted contracts: a `# Panics` doc section on any function on the
//! chain (callers opted in knowingly), and `lint.toml` waivers covering
//! the panic site itself (the invariant is written down). Direct panic
//! sites in the pub fn's own body are R001/R002's job and are not
//! re-flagged here.

use crate::allowlist::Allowlist;
use crate::checks::{is_crate_use, path_prefix, Diagnostic};
use crate::config::Layers;
use crate::graph::CallGraph;
use crate::lexer::TokenKind;
use crate::parser::FileModel;
use crate::source::SourceFile;
use std::collections::{BTreeSet, VecDeque};

/// One analyzed file: the token-level view and the item-level view. The
/// slice passed to the passes must be in the same order the call graph was
/// built from.
pub type TaintFile = (SourceFile, FileModel);

/// Why a call-graph node is tainted.
#[derive(Debug, Clone)]
enum Cause {
    /// The fn's own body contains the source/site described here.
    Direct {
        what: String,
        path: String,
        line: u32,
    },
    /// Taint arrived through a call to this node.
    Via(usize),
}

/// Reverse call edges: for each node, who calls it.
fn reverse_edges(cg: &CallGraph) -> Vec<Vec<usize>> {
    let mut rev = vec![Vec::new(); cg.fns.len()];
    for (caller, edges) in cg.calls.iter().enumerate() {
        for &(callee, _) in edges {
            if callee != caller {
                rev[callee].push(caller);
            }
        }
    }
    rev
}

/// BFS from the seeds along reverse call edges. `barrier(n)` stops
/// propagation *out of* node `n`: the node itself stays tainted but its
/// callers are not tainted through it.
fn propagate(
    cg: &CallGraph,
    seeds: Vec<(usize, Cause)>,
    barrier: impl Fn(usize) -> bool,
) -> Vec<Option<Cause>> {
    let rev = reverse_edges(cg);
    let mut cause: Vec<Option<Cause>> = vec![None; cg.fns.len()];
    let mut queue = VecDeque::new();
    for (n, c) in seeds {
        if cause[n].is_none() {
            cause[n] = Some(c);
            queue.push_back(n);
        }
    }
    while let Some(n) = queue.pop_front() {
        if barrier(n) {
            continue;
        }
        for &caller in &rev[n] {
            if cause[caller].is_none() {
                cause[caller] = Some(Cause::Via(n));
                queue.push_back(caller);
            }
        }
    }
    cause
}

/// Render the taint chain from `start` down to its source:
/// `now_ms → clock → std::time::SystemTime (crates/helper/src/lib.rs:4)`.
fn render_chain(
    files: &[TaintFile],
    cg: &CallGraph,
    cause: &[Option<Cause>],
    start: usize,
) -> String {
    let name_of = |n: usize| {
        let (fi, gi) = cg.fns[n];
        files[fi].1.fns[gi].name.clone()
    };
    let mut parts = vec![name_of(start)];
    let mut cur = start;
    loop {
        match &cause[cur] {
            Some(Cause::Via(next)) => {
                parts.push(name_of(*next));
                cur = *next;
            }
            Some(Cause::Direct { what, path, line }) => {
                parts.push(format!("{what} ({path}:{line})"));
                break;
            }
            None => break,
        }
    }
    parts.join(" -> ")
}

// ------------------------------------------------------------------- D006 --

/// Find the first non-deterministic source in a fn body: wall clock,
/// process environment, or OS-seeded randomness — the same sources
/// D002/D003/D004 flag directly inside sim-state crates.
fn direct_nondet_source(src: &SourceFile, body: (usize, usize)) -> Option<(String, u32)> {
    let toks = &src.tokens;
    for i in body.0 + 1..body.1 {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" => {
                return Some((format!("std::time::{}", t.text), t.line));
            }
            "env" if path_prefix(toks, i, "std") => {
                return Some(("std::env".to_string(), t.line));
            }
            "thread_rng" => return Some(("thread_rng (OS-seeded)".to_string(), t.line)),
            "rand" if is_crate_use(toks, i) => {
                return Some(("the `rand` crate".to_string(), t.line));
            }
            _ => {}
        }
    }
    None
}

/// D006: sim-state call sites whose callee, defined outside the sim-state
/// layer, transitively reaches a non-deterministic source. Sources *inside*
/// sim-state crates are D002/D003/D004's job and are not re-routed here.
pub fn determinism_taint(files: &[TaintFile], cg: &CallGraph, layers: &Layers) -> Vec<Diagnostic> {
    let sim = layers.sim_state_crates();
    let mut seeds = Vec::new();
    for (n, &(fi, gi)) in cg.fns.iter().enumerate() {
        let (src, model) = &files[fi];
        if let Some(body) = model.fns[gi].body {
            if let Some((what, line)) = direct_nondet_source(src, body) {
                seeds.push((
                    n,
                    Cause::Direct {
                        what,
                        path: src.path.clone(),
                        line,
                    },
                ));
            }
        }
    }
    let cause = propagate(cg, seeds, |_| false);

    let mut diags = Vec::new();
    for (n, &(fi, _)) in cg.fns.iter().enumerate() {
        let (src, _) = &files[fi];
        if !sim.contains(src.crate_name.as_str()) {
            continue;
        }
        for &(callee, line) in &cg.calls[n] {
            let (callee_src, callee_model) = &files[cg.fns[callee].0];
            if sim.contains(callee_src.crate_name.as_str()) || cause[callee].is_none() {
                continue;
            }
            let callee_name = &callee_model.fns[cg.fns[callee].1].name;
            diags.push(Diagnostic {
                lint: "D006",
                path: src.path.clone(),
                line,
                message: format!(
                    "call into `{}::{}` reaches a non-deterministic source: {}; \
                     sim-state results must be seed-determined — take SimTime/Pcg32 as inputs instead",
                    callee_src.crate_name,
                    callee_name,
                    render_chain(files, cg, &cause, callee),
                ),
            });
        }
    }
    diags
}

// ------------------------------------------------------------------- R004 --

/// One potential panic site inside a fn body.
struct PanicSite {
    desc: &'static str,
    line: u32,
    /// The lint id a `lint.toml` waiver must carry to stand for this site.
    waiver: &'static str,
}

/// Keywords that may directly precede `[` without it being an indexing
/// expression (`let [a, b] = xs`, `return [x]`, `for v in [..]`).
const NONINDEX_KEYWORDS: &[&str] = &[
    "let", "in", "return", "if", "while", "match", "else", "move", "mut", "ref", "box", "yield",
];

/// Collect the panic sites in one fn body: the R001/R002 patterns plus
/// slice/array indexing (`xs[i]` panics on out-of-bounds).
fn direct_panic_sites(src: &SourceFile, body: (usize, usize)) -> Vec<PanicSite> {
    let toks = &src.tokens;
    let mut sites = Vec::new();
    for i in body.0 + 1..body.1 {
        let t = &toks[i];
        match t.text.as_str() {
            "unwrap"
                if t.kind == TokenKind::Ident
                    && i >= 1
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(")")) =>
            {
                sites.push(PanicSite {
                    desc: ".unwrap()",
                    line: t.line,
                    waiver: "R001",
                });
            }
            "expect"
                if t.kind == TokenKind::Ident
                    && i >= 1
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && toks.get(i + 2).is_some_and(|n| n.text == "\"…\"") =>
            {
                sites.push(PanicSite {
                    desc: ".expect(\"…\")",
                    line: t.line,
                    waiver: "R001",
                });
            }
            "panic" | "todo" | "unimplemented"
                if t.kind == TokenKind::Ident
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                sites.push(PanicSite {
                    desc: "a panic!-family macro",
                    line: t.line,
                    waiver: "R002",
                });
            }
            "[" if t.kind == TokenKind::Punct && i >= 1 => {
                let prev = &toks[i - 1];
                let indexes_a_value = (prev.kind == TokenKind::Ident
                    && !NONINDEX_KEYWORDS.contains(&prev.text.as_str()))
                    || prev.is_punct(")")
                    || prev.is_punct("]");
                if indexes_a_value {
                    sites.push(PanicSite {
                        desc: "slice indexing",
                        line: t.line,
                        waiver: "R004",
                    });
                }
            }
            _ => {}
        }
    }
    sites
}

/// The index of the `lint.toml` waiver (of the right lint id) covering this
/// site, if any.
fn site_waiver(allow: &Allowlist, path: &str, site: &PanicSite) -> Option<usize> {
    allow.entries.iter().position(|e| {
        e.lint == site.waiver && e.path == path && e.line.is_none_or(|l| l == site.line)
    })
}

/// R004: sim-state `pub fn`s whose call chains reach a panic site. Flagged
/// at the pub fn (one diagnostic per fn, first offending call), because the
/// fix belongs to its contract: document `# Panics`, handle the error, or
/// waive the underlying site with a justification.
///
/// Also returns the indices of allowlist entries consumed as site barriers,
/// so the stale-waiver report does not flag entries whose only job is to
/// suppress seeds here (they never match a rendered diagnostic).
pub fn panic_reachability(
    files: &[TaintFile],
    cg: &CallGraph,
    layers: &Layers,
    allow: &Allowlist,
) -> (Vec<Diagnostic>, BTreeSet<usize>) {
    let sim = layers.sim_state_crates();
    let mut seeds = Vec::new();
    let mut used_waivers = BTreeSet::new();
    for (n, &(fi, gi)) in cg.fns.iter().enumerate() {
        let (src, model) = &files[fi];
        let f = &model.fns[gi];
        if src.is_bin || f.in_test {
            continue;
        }
        let Some(body) = f.body else { continue };
        let unwaived = direct_panic_sites(src, body).into_iter().find(|s| {
            match site_waiver(allow, &src.path, s) {
                Some(idx) => {
                    used_waivers.insert(idx);
                    false
                }
                None => true,
            }
        });
        if let Some(site) = unwaived {
            seeds.push((
                n,
                Cause::Direct {
                    what: site.desc.to_string(),
                    path: src.path.clone(),
                    line: site.line,
                },
            ));
        }
    }
    // `# Panics` docs are an accepted contract: the documented fn is still a
    // panic carrier itself, but callers reached it knowingly.
    let documented = |n: usize| {
        let (fi, gi) = cg.fns[n];
        files[fi].1.fns[gi].panics_documented
    };
    let cause = propagate(cg, seeds, documented);

    let mut diags = Vec::new();
    for (n, &(fi, gi)) in cg.fns.iter().enumerate() {
        let (src, model) = &files[fi];
        let f = &model.fns[gi];
        if !sim.contains(src.crate_name.as_str())
            || src.is_bin
            || !f.is_pub
            || f.in_test
            || f.panics_documented
        {
            continue;
        }
        for &(callee, call_line) in &cg.calls[n] {
            if callee == n || documented(callee) || cause[callee].is_none() {
                continue;
            }
            diags.push(Diagnostic {
                lint: "R004",
                path: src.path.clone(),
                line: f.line,
                message: format!(
                    "pub fn `{}` can panic via the call on line {}: {}; \
                     document a `# Panics` contract, handle the error, or waive the site in lint.toml",
                    f.name,
                    call_line,
                    render_chain(files, cg, &cause, callee),
                ),
            });
            break; // one diagnostic per pub fn
        }
    }
    (diags, used_waivers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CrateGraph, FileRef};
    use crate::parser::parse_file;

    const LAYERS: &str = "[layers.sim-state]\ncrates = [\"simx\"]\nmay-use = [\"util\"]\n\
                          [layers.util]\ncrates = [\"helper\"]\nmay-use = []\n";

    fn setup(
        list: &[(&'static str, &'static str, &'static str)],
    ) -> (Vec<TaintFile>, CallGraph, Layers) {
        let files: Vec<TaintFile> = list
            .iter()
            .map(|(krate, path, src)| {
                let sf = SourceFile::parse(path, krate, src);
                let model = parse_file(&sf);
                (sf, model)
            })
            .collect();
        let refs: Vec<FileRef<'_>> = files
            .iter()
            .map(|(sf, m)| FileRef {
                crate_name: &sf.crate_name,
                path: &sf.path,
                model: m,
            })
            .collect();
        let crate_graph = CrateGraph::build(&refs);
        let cg = CallGraph::build(&refs, &crate_graph);
        let layers = crate::config::LintConfig::parse(LAYERS).unwrap().layers;
        (files, cg, layers)
    }

    #[test]
    fn d006_catches_laundered_wall_clock() {
        let (files, cg, layers) = setup(&[
            (
                "simx",
                "crates/simx/src/lib.rs",
                "pub fn step() { let t = helper::now_ms(); }",
            ),
            (
                "helper",
                "crates/helper/src/lib.rs",
                "pub fn now_ms() -> u64 { clock() }\nfn clock() -> u64 { SystemTime::now(); 0 }",
            ),
        ]);
        let diags = determinism_taint(&files, &cg, &layers);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, "D006");
        assert_eq!(diags[0].path, "crates/simx/src/lib.rs");
        assert_eq!(diags[0].line, 1);
        assert!(diags[0]
            .message
            .contains("now_ms -> clock -> std::time::SystemTime"));
    }

    #[test]
    fn d006_quiet_for_clean_helpers_and_internal_sources() {
        // Clean helper: no taint anywhere.
        let (files, cg, layers) = setup(&[
            (
                "simx",
                "crates/simx/src/lib.rs",
                "pub fn step() { helper::pure(); }",
            ),
            (
                "helper",
                "crates/helper/src/lib.rs",
                "pub fn pure() -> u64 { 7 }",
            ),
        ]);
        assert!(determinism_taint(&files, &cg, &layers).is_empty());

        // Source directly inside sim-state: D002's job, not D006's.
        let (files, cg, layers) = setup(&[(
            "simx",
            "crates/simx/src/lib.rs",
            "fn local_clock() { SystemTime::now(); }\npub fn step() { local_clock(); }",
        )]);
        assert!(determinism_taint(&files, &cg, &layers).is_empty());
    }

    #[test]
    fn r004_flags_undocumented_panicky_chain() {
        let (files, cg, layers) = setup(&[
            (
                "simx",
                "crates/simx/src/lib.rs",
                "pub fn admit() { helper::pick(); }",
            ),
            (
                "helper",
                "crates/helper/src/lib.rs",
                "pub fn pick() -> u32 { inner() }\nfn inner() -> u32 { opts.first().unwrap() }",
            ),
        ]);
        let (diags, _) = panic_reachability(&files, &cg, &layers, &Allowlist::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, "R004");
        assert!(diags[0].message.contains("pick -> inner -> .unwrap()"));
    }

    #[test]
    fn r004_honors_panics_doc_contract() {
        let (files, cg, layers) = setup(&[
            (
                "simx",
                "crates/simx/src/lib.rs",
                "/// # Panics\n/// Panics when empty.\npub fn documented() { helper::pick(); }\n\
                 pub fn contract_accepted() { helper::safe_entry(); }",
            ),
            (
                "helper",
                "crates/helper/src/lib.rs",
                "pub fn pick() -> u32 { x.unwrap() }\n\
                 /// # Panics\n/// Panics when empty.\npub fn safe_entry() -> u32 { x.unwrap() }",
            ),
        ]);
        let (diags, _) = panic_reachability(&files, &cg, &layers, &Allowlist::default());
        // `documented` declares its own contract; `contract_accepted` calls a
        // fn whose `# Panics` doc makes the panic an accepted contract.
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn r004_honors_site_waivers() {
        let (files, cg, layers) = setup(&[
            (
                "simx",
                "crates/simx/src/lib.rs",
                "pub fn admit() { helper::pick(); }",
            ),
            (
                "helper",
                "crates/helper/src/lib.rs",
                "pub fn pick() -> u32 { x.unwrap() }",
            ),
        ]);
        let allow = Allowlist::parse(
            "[[allow]]\nlint = \"R001\"\npath = \"crates/helper/src/lib.rs\"\nline = 1\n\
             justification = \"non-empty by construction\"\n",
        )
        .unwrap();
        let (diags, used) = panic_reachability(&files, &cg, &layers, &allow);
        assert!(diags.is_empty());
        assert_eq!(
            used.into_iter().collect::<Vec<_>>(),
            [0],
            "the waiver counts as used"
        );
    }

    #[test]
    fn r004_indexing_counts_as_a_panic_site() {
        let (files, cg, layers) = setup(&[
            (
                "simx",
                "crates/simx/src/lib.rs",
                "pub fn admit() { helper::nth(3); }",
            ),
            (
                "helper",
                "crates/helper/src/lib.rs",
                "pub fn nth(i: usize) -> u32 { TABLE[i] }",
            ),
        ]);
        let (diags, _) = panic_reachability(&files, &cg, &layers, &Allowlist::default());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("slice indexing"));
        // Slice patterns and array literals are not indexing.
        let (files, cg, layers) = setup(&[
            (
                "simx",
                "crates/simx/src/lib.rs",
                "pub fn admit() { helper::first(); }",
            ),
            (
                "helper",
                "crates/helper/src/lib.rs",
                "pub fn first() -> [u32; 2] { let [a, b] = pair(); [a, b] }",
            ),
        ]);
        assert!(
            panic_reachability(&files, &cg, &layers, &Allowlist::default())
                .0
                .is_empty()
        );
    }

    #[test]
    fn r004_own_body_sites_are_not_reflagged() {
        // The pub fn's own unwrap is R001's job.
        let (files, cg, layers) = setup(&[(
            "simx",
            "crates/simx/src/lib.rs",
            "pub fn admit() -> u32 { x.unwrap() }",
        )]);
        assert!(
            panic_reachability(&files, &cg, &layers, &Allowlist::default())
                .0
                .is_empty()
        );
    }
}

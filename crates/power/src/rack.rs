//! Rack-level power monitoring: warning threshold, capping events, and
//! prioritized throttling.
//!
//! The paper's rack manager "sends a warning message to all sOAs when the
//! rack's power draw reaches a warning threshold (e.g., 95% of the rack's
//! power limit)" (§IV-D), and providers use prioritized capping to protect
//! critical workloads when the limit itself is hit (§II, §VII).

use crate::units::Watts;
use serde::{Deserialize, Serialize};

/// Outcome of one rack power observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RackSignal {
    /// Draw below the warning threshold.
    Normal,
    /// Draw at or above the warning threshold but below the limit; sOAs in
    /// the exploration phase must back off.
    Warning,
    /// Draw at or above the rack limit; the capping mechanism engages.
    Capping,
}

/// Monitors a rack's aggregate draw against its provisioned limit.
///
/// ```
/// use soc_power::rack::{RackMonitor, RackSignal};
/// use soc_power::units::Watts;
///
/// let mut rack = RackMonitor::new(Watts::new(1000.0), 0.95);
/// assert_eq!(rack.observe(Watts::new(900.0)), RackSignal::Normal);
/// assert_eq!(rack.observe(Watts::new(960.0)), RackSignal::Warning);
/// assert_eq!(rack.observe(Watts::new(1010.0)), RackSignal::Capping);
/// assert_eq!(rack.capping_events(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackMonitor {
    limit: Watts,
    warning_fraction: f64,
    capping_events: u64,
    warnings: u64,
    observations: u64,
    in_capping: bool,
    peak: Watts,
}

impl RackMonitor {
    /// Create a monitor.
    ///
    /// # Panics
    /// Panics if `limit` is not positive or `warning_fraction` is outside
    /// `(0, 1]`.
    pub fn new(limit: Watts, warning_fraction: f64) -> RackMonitor {
        assert!(limit.get() > 0.0, "rack limit must be positive");
        assert!(
            warning_fraction > 0.0 && warning_fraction <= 1.0,
            "warning fraction must be in (0, 1]"
        );
        RackMonitor {
            limit,
            warning_fraction,
            capping_events: 0,
            warnings: 0,
            observations: 0,
            in_capping: false,
            peak: Watts::ZERO,
        }
    }

    /// The rack power limit.
    pub fn limit(&self) -> Watts {
        self.limit
    }

    /// Replace the limit (used by the power-constrained experiments, §V-A).
    ///
    /// # Panics
    /// Panics if `limit` is not positive.
    pub fn set_limit(&mut self, limit: Watts) {
        assert!(limit.get() > 0.0, "rack limit must be positive");
        self.limit = limit;
    }

    /// The absolute warning threshold.
    pub fn warning_threshold(&self) -> Watts {
        self.limit * self.warning_fraction
    }

    /// Record one aggregate draw observation and classify it.
    ///
    /// Consecutive over-limit observations count as a **single** capping
    /// event; the event ends once the draw falls back below the limit.
    pub fn observe(&mut self, draw: Watts) -> RackSignal {
        self.observations += 1;
        self.peak = self.peak.max(draw);
        if draw >= self.limit {
            if !self.in_capping {
                self.in_capping = true;
                self.capping_events += 1;
            }
            RackSignal::Capping
        } else {
            self.in_capping = false;
            if draw >= self.warning_threshold() {
                self.warnings += 1;
                RackSignal::Warning
            } else {
                RackSignal::Normal
            }
        }
    }

    /// Number of distinct capping events so far.
    pub fn capping_events(&self) -> u64 {
        self.capping_events
    }

    /// Number of warning observations so far.
    pub fn warnings(&self) -> u64 {
        self.warnings
    }

    /// Total observations.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Highest observed draw.
    pub fn peak(&self) -> Watts {
        self.peak
    }

    /// Whether the rack is currently inside a capping event.
    pub fn is_capping(&self) -> bool {
        self.in_capping
    }

    /// Headroom below the limit for the given draw (zero when over).
    pub fn headroom(&self, draw: Watts) -> Watts {
        (self.limit - draw).clamp_non_negative()
    }
}

/// One server's view for the prioritized capping computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapCandidate {
    /// Opaque server index (position in the caller's server list).
    pub index: usize,
    /// Higher value = more important = capped last.
    pub priority: u32,
    /// Current draw.
    pub draw: Watts,
    /// Floor the server can be throttled down to.
    pub min_draw: Watts,
}

/// Compute how much power each server must shed so total draw fits under
/// `limit`, capping low-priority servers first (prioritized capping, §II).
///
/// Returns `(index, shed)` pairs for servers that must reduce power. If even
/// throttling everything to its floor cannot satisfy the limit, all servers
/// are pushed to their floors (best effort).
///
/// # Panics
/// Panics if any candidate has `min_draw > draw`.
pub fn prioritized_shed(candidates: &[CapCandidate], limit: Watts) -> Vec<(usize, Watts)> {
    for c in candidates {
        assert!(
            c.min_draw <= c.draw,
            "candidate {} has min_draw above current draw",
            c.index
        );
    }
    let total: Watts = candidates.iter().map(|c| c.draw).sum();
    let mut excess = total - limit;
    if excess <= Watts::ZERO {
        return Vec::new();
    }
    // Lowest priority first; ties broken by index for determinism.
    let mut order: Vec<&CapCandidate> = candidates.iter().collect();
    order.sort_by_key(|c| (c.priority, c.index));
    let mut sheds = Vec::new();
    for c in order {
        if excess <= Watts::ZERO {
            break;
        }
        let available = c.draw - c.min_draw;
        let shed = available.min(excess);
        if shed > Watts::ZERO {
            sheds.push((c.index, shed));
            excess -= shed;
        }
    }
    sheds
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classification_thresholds() {
        let mut r = RackMonitor::new(Watts::new(100.0), 0.9);
        assert_eq!(r.observe(Watts::new(50.0)), RackSignal::Normal);
        assert_eq!(r.observe(Watts::new(90.0)), RackSignal::Warning);
        assert_eq!(r.observe(Watts::new(100.0)), RackSignal::Capping);
    }

    #[test]
    fn consecutive_overload_is_one_event() {
        let mut r = RackMonitor::new(Watts::new(100.0), 0.95);
        r.observe(Watts::new(120.0));
        r.observe(Watts::new(130.0));
        r.observe(Watts::new(110.0));
        assert_eq!(r.capping_events(), 1);
        r.observe(Watts::new(80.0));
        r.observe(Watts::new(105.0));
        assert_eq!(r.capping_events(), 2);
    }

    #[test]
    fn peak_and_headroom() {
        let mut r = RackMonitor::new(Watts::new(100.0), 0.95);
        r.observe(Watts::new(70.0));
        r.observe(Watts::new(85.0));
        assert_eq!(r.peak(), Watts::new(85.0));
        assert_eq!(r.headroom(Watts::new(85.0)), Watts::new(15.0));
        assert_eq!(r.headroom(Watts::new(120.0)), Watts::ZERO);
    }

    #[test]
    fn shed_nothing_when_under_limit() {
        let cands = [CapCandidate {
            index: 0,
            priority: 1,
            draw: Watts::new(50.0),
            min_draw: Watts::new(20.0),
        }];
        assert!(prioritized_shed(&cands, Watts::new(100.0)).is_empty());
    }

    #[test]
    fn shed_low_priority_first() {
        let cands = [
            CapCandidate {
                index: 0,
                priority: 10,
                draw: Watts::new(60.0),
                min_draw: Watts::new(30.0),
            },
            CapCandidate {
                index: 1,
                priority: 1,
                draw: Watts::new(60.0),
                min_draw: Watts::new(30.0),
            },
        ];
        // Total 120, limit 100 → shed 20, all from server 1 (low priority).
        let sheds = prioritized_shed(&cands, Watts::new(100.0));
        assert_eq!(sheds, vec![(1, Watts::new(20.0))]);
    }

    #[test]
    fn shed_cascades_to_higher_priority() {
        let cands = [
            CapCandidate {
                index: 0,
                priority: 10,
                draw: Watts::new(60.0),
                min_draw: Watts::new(30.0),
            },
            CapCandidate {
                index: 1,
                priority: 1,
                draw: Watts::new(60.0),
                min_draw: Watts::new(50.0),
            },
        ];
        // Shed 20: server 1 can only give 10, server 0 gives the rest.
        let sheds = prioritized_shed(&cands, Watts::new(100.0));
        assert_eq!(sheds, vec![(1, Watts::new(10.0)), (0, Watts::new(10.0))]);
    }

    #[test]
    fn shed_best_effort_when_infeasible() {
        let cands = [CapCandidate {
            index: 0,
            priority: 1,
            draw: Watts::new(60.0),
            min_draw: Watts::new(55.0),
        }];
        let sheds = prioritized_shed(&cands, Watts::new(10.0));
        assert_eq!(sheds, vec![(0, Watts::new(5.0))]);
    }

    proptest! {
        #[test]
        fn shed_never_exceeds_available(
            draws in prop::collection::vec((20.0..100.0f64, 0.0..1.0f64, 0u32..4), 1..10),
            limit in 10.0..500.0f64,
        ) {
            let cands: Vec<CapCandidate> = draws
                .iter()
                .enumerate()
                .map(|(i, &(d, minfrac, pri))| CapCandidate {
                    index: i,
                    priority: pri,
                    draw: Watts::new(d),
                    min_draw: Watts::new(d * minfrac),
                })
                .collect();
            let sheds = prioritized_shed(&cands, Watts::new(limit));
            for (idx, shed) in &sheds {
                let c = cands[*idx];
                prop_assert!(shed.get() <= (c.draw - c.min_draw).get() + 1e-9);
                prop_assert!(shed.get() > 0.0);
            }
            // After shedding, either we are under the limit or every candidate
            // is at its floor.
            let total: f64 = cands.iter().map(|c| c.draw.get()).sum();
            let shed_total: f64 = sheds.iter().map(|(_, s)| s.get()).sum();
            let remaining = total - shed_total;
            let floor: f64 = cands.iter().map(|c| c.min_draw.get()).sum();
            prop_assert!(remaining <= limit + 1e-6 || (remaining - floor).abs() < 1e-6);
        }
    }
}

//! Per-server power state.
//!
//! [`ServerPower`] tracks every core's requested frequency and utilization,
//! applies the RAPL-like frequency cap that power capping imposes, and
//! integrates energy over time. It is the state object both the Server
//! Overclocking Agent and the rack manager manipulate.

use crate::model::{CoreState, PowerModel};
use crate::units::{MegaHertz, Watts};
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;

/// Identifier of a server within a simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ServerId(pub usize);

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

/// Mutable power state of one server.
///
/// ```
/// use soc_power::server::{ServerId, ServerPower};
/// use soc_power::model::PowerModel;
///
/// let model = PowerModel::reference_server();
/// let mut srv = ServerPower::new(ServerId(0), model);
/// srv.set_uniform(0.5, model.plan().turbo());
/// let before = srv.power();
/// srv.apply_cap(model.plan().base());
/// assert!(srv.power() < before); // capping lowers power
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerPower {
    id: ServerId,
    model: PowerModel,
    cores: Vec<CoreState>,
    cap: Option<MegaHertz>,
    energy_joules: f64,
}

impl ServerPower {
    /// Create a server with all cores idle at the base frequency.
    pub fn new(id: ServerId, model: PowerModel) -> ServerPower {
        let base = model.plan().base();
        ServerPower {
            id,
            model,
            cores: vec![CoreState::new(0.0, base); model.cores()],
            cap: None,
            energy_joules: 0.0,
        }
    }

    /// Server identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The power model.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Requested (pre-cap) state of core `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn core(&self, i: usize) -> CoreState {
        self.cores[i]
    }

    /// Set the state of one core.
    ///
    /// # Panics
    /// Panics if `i` is out of range or `utilization` is outside `[0, 1]`.
    pub fn set_core(&mut self, i: usize, utilization: f64, frequency: MegaHertz) {
        let f = self.model.plan().clamp(frequency);
        self.cores[i] = CoreState::new(utilization, f);
    }

    /// Set every core to the same utilization and frequency.
    ///
    /// # Panics
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn set_uniform(&mut self, utilization: f64, frequency: MegaHertz) {
        let f = self.model.plan().clamp(frequency);
        for c in &mut self.cores {
            *c = CoreState::new(utilization, f);
        }
    }

    /// Set the frequency of cores `[0, n)` without touching utilization.
    ///
    /// # Panics
    /// Panics if `n` exceeds the core count.
    pub fn set_frequency_first_n(&mut self, n: usize, frequency: MegaHertz) {
        assert!(n <= self.cores.len(), "n exceeds core count");
        let f = self.model.plan().clamp(frequency);
        for c in &mut self.cores[..n] {
            c.frequency = f;
        }
    }

    /// Impose a frequency cap (power capping). All cores are limited to
    /// `cap` until [`clear_cap`](Self::clear_cap) is called.
    pub fn apply_cap(&mut self, cap: MegaHertz) {
        self.cap = Some(self.model.plan().clamp(cap));
    }

    /// Remove the frequency cap.
    pub fn clear_cap(&mut self) {
        self.cap = None;
    }

    /// The current cap, if any.
    pub fn cap(&self) -> Option<MegaHertz> {
        self.cap
    }

    /// Effective (post-cap) frequency of core `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn effective_frequency(&self, i: usize) -> MegaHertz {
        let f = self.cores[i].frequency;
        match self.cap {
            Some(cap) => f.min(cap),
            None => f,
        }
    }

    /// Number of cores currently *running* overclocked (post-cap).
    pub fn overclocked_cores(&self) -> usize {
        let plan = self.model.plan();
        (0..self.cores.len())
            .filter(|&i| plan.is_overclocked(self.effective_frequency(i)))
            .count()
    }

    /// Mean utilization across cores.
    pub fn mean_utilization(&self) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores.iter().map(|c| c.utilization).sum::<f64>() / self.cores.len() as f64
    }

    /// Current power draw (post-cap).
    pub fn power(&self) -> Watts {
        let states: Vec<CoreState> = (0..self.cores.len())
            .map(|i| CoreState::new(self.cores[i].utilization, self.effective_frequency(i)))
            .collect();
        self.model.server_power(&states)
    }

    /// Power the server *would* draw with the cap removed.
    pub fn uncapped_power(&self) -> Watts {
        self.model.server_power(&self.cores)
    }

    /// Integrate the current draw over `dt`, accumulating energy.
    pub fn accumulate_energy(&mut self, dt: SimDuration) {
        self.energy_joules += self.power().energy_joules(dt.as_secs_f64());
    }

    /// Total accumulated energy in joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy_joules
    }

    /// Reset the energy accumulator (between experiment phases).
    pub fn reset_energy(&mut self) {
        self.energy_joules = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> ServerPower {
        ServerPower::new(ServerId(1), PowerModel::reference_server())
    }

    #[test]
    fn starts_idle_at_base() {
        let s = server();
        assert_eq!(s.power(), s.model().idle());
        assert_eq!(s.overclocked_cores(), 0);
        assert_eq!(s.mean_utilization(), 0.0);
    }

    #[test]
    fn cap_limits_effective_frequency() {
        let mut s = server();
        let plan = s.model().plan();
        s.set_uniform(0.5, plan.max_overclock());
        assert_eq!(s.overclocked_cores(), s.core_count());
        s.apply_cap(plan.turbo());
        assert_eq!(s.overclocked_cores(), 0);
        assert_eq!(s.effective_frequency(0), plan.turbo());
        // Requested state is preserved.
        assert_eq!(s.core(0).frequency, plan.max_overclock());
        s.clear_cap();
        assert_eq!(s.overclocked_cores(), s.core_count());
    }

    #[test]
    fn capped_power_below_uncapped() {
        let mut s = server();
        let plan = s.model().plan();
        s.set_uniform(0.8, plan.max_overclock());
        s.apply_cap(plan.base());
        assert!(s.power() < s.uncapped_power());
    }

    #[test]
    fn partial_frequency_assignment() {
        let mut s = server();
        let plan = s.model().plan();
        s.set_uniform(0.5, plan.turbo());
        s.set_frequency_first_n(10, plan.max_overclock());
        assert_eq!(s.overclocked_cores(), 10);
    }

    #[test]
    fn energy_integrates_power() {
        let mut s = server();
        let plan = s.model().plan();
        s.set_uniform(1.0, plan.turbo());
        let p = s.power().get();
        s.accumulate_energy(SimDuration::from_secs(10));
        assert!((s.energy_joules() - 10.0 * p).abs() < 1e-9);
        s.reset_energy();
        assert_eq!(s.energy_joules(), 0.0);
    }

    #[test]
    fn frequency_requests_clamped_to_plan() {
        let mut s = server();
        s.set_core(0, 0.1, MegaHertz::new(9999));
        assert_eq!(s.core(0).frequency, s.model().plan().max_overclock());
    }

    #[test]
    #[should_panic(expected = "n exceeds core count")]
    fn set_frequency_rejects_overflow() {
        let mut s = server();
        s.set_frequency_first_n(1000, MegaHertz::new(3300));
    }
}

//! The datacenter power-delivery hierarchy.
//!
//! "The power delivery system in a cloud datacenter is organized in a
//! hierarchy; the power budget of each parent node is split equally among its
//! children" (§II). [`PowerNode`] models that tree and exposes both the
//! conventional even split and the heterogeneous split SmartOClock's gOA
//! computes (§IV-C).

use crate::units::Watts;
use serde::{Deserialize, Serialize};

/// A node in the power-delivery tree (datacenter row, PDU, rack, server…).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerNode {
    name: String,
    budget: Watts,
    children: Vec<PowerNode>,
}

impl PowerNode {
    /// Create a leaf node.
    ///
    /// # Panics
    /// Panics if `budget` is negative.
    pub fn leaf(name: impl Into<String>, budget: Watts) -> PowerNode {
        let budget = validate_budget(budget);
        PowerNode {
            name: name.into(),
            budget,
            children: Vec::new(),
        }
    }

    /// Create an interior node with children.
    ///
    /// # Panics
    /// Panics if `budget` is negative.
    pub fn with_children(
        name: impl Into<String>,
        budget: Watts,
        children: Vec<PowerNode>,
    ) -> PowerNode {
        let budget = validate_budget(budget);
        PowerNode {
            name: name.into(),
            budget,
            children,
        }
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Provisioned budget of this node.
    pub fn budget(&self) -> Watts {
        self.budget
    }

    /// Immediate children.
    pub fn children(&self) -> &[PowerNode] {
        &self.children
    }

    /// Sum of children budgets; exceeds `budget()` under oversubscription.
    pub fn children_budget(&self) -> Watts {
        self.children.iter().map(|c| c.budget).sum()
    }

    /// Oversubscription ratio: children budget / own budget (1.0 for leaves
    /// or unoversubscribed nodes).
    pub fn oversubscription(&self) -> f64 {
        if self.children.is_empty() || self.budget.get() == 0.0 {
            return 1.0;
        }
        self.children_budget().ratio(self.budget)
    }

    /// Even split of this node's budget across its children — the
    /// conventional policy the paper contrasts against.
    ///
    /// # Panics
    /// Panics if the node has no children.
    pub fn even_split(&self) -> Vec<Watts> {
        assert!(!self.children.is_empty(), "even split of a leaf node");
        vec![self.budget / self.children.len() as f64; self.children.len()]
    }

    /// Total number of leaves under this node (itself if a leaf).
    pub fn leaf_count(&self) -> usize {
        if self.children.is_empty() {
            1
        } else {
            self.children.iter().map(PowerNode::leaf_count).sum()
        }
    }
}

fn validate_budget(budget: Watts) -> Watts {
    assert!(budget.get() >= 0.0, "budget must be non-negative");
    budget
}

/// One child's demand profile for [`heterogeneous_split`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandProfile {
    /// Predicted regular (non-overclock) power consumption.
    pub regular: Watts,
    /// Predicted *extra* power wanted for overclocking.
    pub overclock_demand: Watts,
}

/// SmartOClock's heterogeneous budget computation (§IV-C).
///
/// Phase 1/2: every child is first granted its regular consumption. Phase 3:
/// the remaining headroom is split **proportionally to overclocking demand**.
/// Reproduces the paper's worked example:
///
/// ```
/// use soc_power::hierarchy::{heterogeneous_split, DemandProfile};
/// use soc_power::units::Watts;
///
/// // Rack limit 1.3kW; X: 400W regular + 50W OC demand; Y: 300W + 100W.
/// let budgets = heterogeneous_split(
///     Watts::new(1300.0),
///     &[
///         DemandProfile { regular: Watts::new(400.0), overclock_demand: Watts::new(50.0) },
///         DemandProfile { regular: Watts::new(300.0), overclock_demand: Watts::new(100.0) },
///     ],
/// );
/// assert_eq!(budgets, vec![Watts::new(600.0), Watts::new(700.0)]);
/// ```
///
/// Children with zero overclocking demand receive an equal share of whatever
/// headroom remains after demand-proportional grants would be zero — i.e.
/// when *no* child wants to overclock, the headroom is split evenly (keeping
/// the assignment safe for non-participating workloads).
///
/// If the regular consumption alone exceeds the budget, each child's regular
/// share is scaled down proportionally and no overclock headroom is granted.
///
/// # Panics
/// Panics if `children` is empty or any demand is negative.
pub fn heterogeneous_split(budget: Watts, children: &[DemandProfile]) -> Vec<Watts> {
    let mut out = Vec::with_capacity(children.len());
    heterogeneous_split_into(budget, children, &mut out);
    out
}

/// Allocation-free [`heterogeneous_split`]: clears `out` and fills it with
/// the same budgets, reusing its capacity. The per-step hot path of the
/// large-scale simulation calls this every budget refresh, so steady-state
/// allocation counts must not scale with simulated steps.
///
/// # Panics
/// Panics if `children` is empty or any demand is negative.
pub fn heterogeneous_split_into(budget: Watts, children: &[DemandProfile], out: &mut Vec<Watts>) {
    assert!(!children.is_empty(), "cannot split across zero children");
    for c in children {
        assert!(
            c.regular.get() >= 0.0 && c.overclock_demand.get() >= 0.0,
            "demands must be non-negative"
        );
    }
    out.clear();
    let regular_total: Watts = children.iter().map(|c| c.regular).sum();
    if regular_total > budget {
        // Infeasible even without overclocking: scale proportionally.
        let scale = budget.ratio(regular_total);
        out.extend(children.iter().map(|c| c.regular * scale));
        return;
    }
    let headroom = budget - regular_total;
    let demand_total: Watts = children.iter().map(|c| c.overclock_demand).sum();
    if demand_total.get() <= 0.0 {
        // No overclocking demand anywhere: split headroom evenly.
        let share = headroom / children.len() as f64;
        out.extend(children.iter().map(|c| c.regular + share));
        return;
    }
    out.extend(
        children
            .iter()
            .map(|c| c.regular + headroom * c.overclock_demand.ratio(demand_total)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rack_with_servers(n: usize, per_server: Watts, rack_budget: Watts) -> PowerNode {
        let children = (0..n)
            .map(|i| PowerNode::leaf(format!("server{i}"), per_server))
            .collect();
        PowerNode::with_children("rack", rack_budget, children)
    }

    #[test]
    fn oversubscription_ratio() {
        let rack = rack_with_servers(4, Watts::new(400.0), Watts::new(1200.0));
        assert!((rack.oversubscription() - 4.0 * 400.0 / 1200.0).abs() < 1e-12);
        let leaf = PowerNode::leaf("s", Watts::new(400.0));
        assert_eq!(leaf.oversubscription(), 1.0);
    }

    #[test]
    fn even_split_divides_equally() {
        let rack = rack_with_servers(4, Watts::new(400.0), Watts::new(1200.0));
        assert_eq!(rack.even_split(), vec![Watts::new(300.0); 4]);
    }

    #[test]
    fn leaf_count_recurses() {
        let rack1 = rack_with_servers(3, Watts::new(1.0), Watts::new(10.0));
        let rack2 = rack_with_servers(2, Watts::new(1.0), Watts::new(10.0));
        let row = PowerNode::with_children("row", Watts::new(15.0), vec![rack1, rack2]);
        assert_eq!(row.leaf_count(), 5);
    }

    #[test]
    fn paper_example_budgets() {
        let budgets = heterogeneous_split(
            Watts::new(1300.0),
            &[
                DemandProfile {
                    regular: Watts::new(400.0),
                    overclock_demand: Watts::new(50.0),
                },
                DemandProfile {
                    regular: Watts::new(300.0),
                    overclock_demand: Watts::new(100.0),
                },
            ],
        );
        assert_eq!(budgets, vec![Watts::new(600.0), Watts::new(700.0)]);
    }

    #[test]
    fn no_demand_splits_headroom_evenly() {
        let budgets = heterogeneous_split(
            Watts::new(1000.0),
            &[
                DemandProfile {
                    regular: Watts::new(300.0),
                    overclock_demand: Watts::ZERO,
                },
                DemandProfile {
                    regular: Watts::new(500.0),
                    overclock_demand: Watts::ZERO,
                },
            ],
        );
        assert_eq!(budgets, vec![Watts::new(400.0), Watts::new(600.0)]);
    }

    #[test]
    fn infeasible_regular_scales_down() {
        let budgets = heterogeneous_split(
            Watts::new(600.0),
            &[
                DemandProfile {
                    regular: Watts::new(400.0),
                    overclock_demand: Watts::new(50.0),
                },
                DemandProfile {
                    regular: Watts::new(800.0),
                    overclock_demand: Watts::ZERO,
                },
            ],
        );
        assert_eq!(budgets, vec![Watts::new(200.0), Watts::new(400.0)]);
    }

    proptest! {
        #[test]
        fn split_conserves_budget(
            budget in 100.0..10_000.0f64,
            profiles in prop::collection::vec((0.0..500.0f64, 0.0..100.0f64), 1..20),
        ) {
            let children: Vec<DemandProfile> = profiles
                .iter()
                .map(|&(r, o)| DemandProfile {
                    regular: Watts::new(r),
                    overclock_demand: Watts::new(o),
                })
                .collect();
            let budgets = heterogeneous_split(Watts::new(budget), &children);
            let total: f64 = budgets.iter().map(|b| b.get()).sum();
            let regular_total: f64 = children.iter().map(|c| c.regular.get()).sum();
            if regular_total <= budget {
                // Entire budget distributed (exactly, modulo fp error).
                prop_assert!((total - budget).abs() < 1e-6);
                // Everyone keeps at least their regular power.
                for (b, c) in budgets.iter().zip(&children) {
                    prop_assert!(b.get() >= c.regular.get() - 1e-9);
                }
            } else {
                prop_assert!((total - budget).abs() < 1e-6);
            }
        }

        #[test]
        fn bigger_demand_never_gets_smaller_extra(
            budget in 1_000.0..5_000.0f64,
            r1 in 0.0..300.0f64, r2 in 0.0..300.0f64,
            d1 in 0.0..100.0f64, d2 in 0.0..100.0f64,
        ) {
            let children = [
                DemandProfile { regular: Watts::new(r1), overclock_demand: Watts::new(d1) },
                DemandProfile { regular: Watts::new(r2), overclock_demand: Watts::new(d2) },
            ];
            let budgets = heterogeneous_split(Watts::new(budget), &children);
            let extra1 = budgets[0].get() - r1;
            let extra2 = budgets[1].get() - r2;
            if d1 > d2 {
                prop_assert!(extra1 >= extra2 - 1e-9);
            }
        }
    }
}

//! Strongly-typed physical quantities.
//!
//! Newtypes keep watts, megahertz, and volts from being mixed up in the
//! budget arithmetic that SmartOClock does constantly (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Electrical power in watts.
///
/// ```
/// use soc_power::units::Watts;
/// let headroom = Watts::new(1300.0) - Watts::new(700.0);
/// assert_eq!(headroom, Watts::new(600.0));
/// assert_eq!(headroom * 0.5, Watts::new(300.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// Construct from a raw value.
    ///
    /// # Panics
    /// Panics if `w` is NaN.
    pub fn new(w: f64) -> Watts {
        assert!(!w.is_nan(), "power must not be NaN");
        Watts(w)
    }

    /// The raw value in watts.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Clamp negative readings to zero (sensor noise guard).
    pub fn clamp_non_negative(self) -> Watts {
        Watts(self.0.max(0.0))
    }

    /// The smaller of two power values.
    pub fn min(self, other: Watts) -> Watts {
        Watts(self.0.min(other.0))
    }

    /// The larger of two power values.
    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }

    /// Ratio of two power values.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn ratio(self, other: Watts) -> f64 {
        assert!(other.0 != 0.0, "division by zero watts");
        self.0 / other.0
    }

    /// Energy accumulated by drawing this power for `seconds`, in joules.
    pub fn energy_joules(self, seconds: f64) -> f64 {
        self.0 * seconds
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl SubAssign for Watts {
    fn sub_assign(&mut self, rhs: Watts) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Div<f64> for Watts {
    type Output = Watts;
    fn div(self, rhs: f64) -> Watts {
        Watts(self.0 / rhs)
    }
}

impl Neg for Watts {
    type Output = Watts;
    fn neg(self) -> Watts {
        Watts(-self.0)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}W", self.0)
    }
}

/// CPU core frequency in megahertz.
///
/// ```
/// use soc_power::units::MegaHertz;
/// let turbo = MegaHertz::new(3300);
/// let oc = turbo + MegaHertz::new(700);
/// assert_eq!(oc, MegaHertz::new(4000));
/// assert!((oc.ratio(turbo) - 1.212).abs() < 0.01);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MegaHertz(u32);

impl MegaHertz {
    /// Zero frequency.
    pub const ZERO: MegaHertz = MegaHertz(0);

    /// Construct from a raw MHz count.
    pub const fn new(mhz: u32) -> MegaHertz {
        MegaHertz(mhz)
    }

    /// Raw MHz count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Frequency in GHz.
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Ratio of two frequencies.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn ratio(self, other: MegaHertz) -> f64 {
        assert!(other.0 > 0, "division by zero frequency");
        self.0 as f64 / other.0 as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: MegaHertz) -> MegaHertz {
        MegaHertz(self.0.saturating_sub(other.0))
    }

    /// The smaller of two frequencies.
    pub fn min(self, other: MegaHertz) -> MegaHertz {
        MegaHertz(self.0.min(other.0))
    }

    /// The larger of two frequencies.
    pub fn max(self, other: MegaHertz) -> MegaHertz {
        MegaHertz(self.0.max(other.0))
    }

    /// Clamp into `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: MegaHertz, hi: MegaHertz) -> MegaHertz {
        assert!(lo <= hi, "invalid clamp range");
        MegaHertz(self.0.clamp(lo.0, hi.0))
    }
}

impl Add for MegaHertz {
    type Output = MegaHertz;
    fn add(self, rhs: MegaHertz) -> MegaHertz {
        MegaHertz(self.0 + rhs.0)
    }
}

impl Sub for MegaHertz {
    type Output = MegaHertz;
    fn sub(self, rhs: MegaHertz) -> MegaHertz {
        MegaHertz(self.0 - rhs.0)
    }
}

impl fmt::Display for MegaHertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.0)
    }
}

/// Core supply voltage in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Volts(f64);

impl Volts {
    /// Construct from a raw value.
    ///
    /// # Panics
    /// Panics if `v` is negative or NaN.
    pub fn new(v: f64) -> Volts {
        assert!(
            v.is_finite() && v >= 0.0,
            "voltage must be finite and non-negative"
        );
        Volts(v)
    }

    /// Raw value in volts.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// `V²` — the factor dynamic power scales with.
    pub fn squared(self) -> f64 {
        self.0 * self.0
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}V", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_arithmetic() {
        let a = Watts::new(100.0);
        let b = Watts::new(40.0);
        assert_eq!(a + b, Watts::new(140.0));
        assert_eq!(a - b, Watts::new(60.0));
        assert_eq!(a * 2.0, Watts::new(200.0));
        assert_eq!(a / 4.0, Watts::new(25.0));
        assert_eq!(-b, Watts::new(-40.0));
    }

    #[test]
    fn watts_sum_and_energy() {
        let total: Watts = vec![Watts::new(1.0), Watts::new(2.5)].into_iter().sum();
        assert_eq!(total, Watts::new(3.5));
        assert_eq!(Watts::new(10.0).energy_joules(3600.0), 36_000.0);
    }

    #[test]
    fn watts_clamp_and_ratio() {
        assert_eq!(Watts::new(-5.0).clamp_non_negative(), Watts::ZERO);
        assert_eq!(Watts::new(50.0).ratio(Watts::new(100.0)), 0.5);
        assert_eq!(Watts::new(10.0).min(Watts::new(5.0)), Watts::new(5.0));
        assert_eq!(Watts::new(10.0).max(Watts::new(5.0)), Watts::new(10.0));
    }

    #[test]
    #[should_panic(expected = "power must not be NaN")]
    fn watts_rejects_nan() {
        let _ = Watts::new(f64::NAN);
    }

    #[test]
    fn mhz_arithmetic() {
        let f = MegaHertz::new(3300);
        assert_eq!(f + MegaHertz::new(100), MegaHertz::new(3400));
        assert_eq!(f - MegaHertz::new(300), MegaHertz::new(3000));
        assert_eq!(f.saturating_sub(MegaHertz::new(5000)), MegaHertz::ZERO);
        assert_eq!(f.as_ghz(), 3.3);
        assert_eq!(
            MegaHertz::new(5000).clamp(MegaHertz::new(2000), MegaHertz::new(4000)),
            MegaHertz::new(4000)
        );
    }

    #[test]
    fn volts_squared() {
        assert!((Volts::new(1.2).squared() - 1.44).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Watts::new(12.34)), "12.3W");
        assert_eq!(format!("{}", MegaHertz::new(4000)), "4000MHz");
        assert_eq!(format!("{}", Volts::new(1.25)), "1.250V");
    }
}

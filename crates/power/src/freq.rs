//! Frequency plans and the voltage curve.
//!
//! The paper's cluster uses AMD CPUs with a 3.3 GHz max turbo and a 4.0 GHz
//! overclocking frequency (§V-A). [`FrequencyPlan`] captures that shape:
//! a base frequency, the vendor-specified turbo ceiling, and an overclocking
//! range above it, quantized into discrete steps ("the sOA changes the
//! frequency of the overclocked VMs ... in discrete steps (e.g., 100 MHz)",
//! §IV-D).
//!
//! [`VoltageCurve`] is piecewise linear with a steeper slope beyond turbo:
//! running past the design point requires disproportionate voltage, which is
//! what makes overclocked cores disproportionately power-hungry and ages them
//! exponentially faster (§II, §III-Q2).

use crate::units::{MegaHertz, Volts};
use serde::{Deserialize, Serialize};

/// The frequency envelope of a CPU: base, turbo, and overclocking range.
///
/// ```
/// use soc_power::freq::FrequencyPlan;
/// use soc_power::units::MegaHertz;
///
/// let plan = FrequencyPlan::amd_reference();
/// assert_eq!(plan.turbo(), MegaHertz::new(3300));
/// assert_eq!(plan.max_overclock(), MegaHertz::new(4000));
/// assert!(plan.is_overclocked(MegaHertz::new(3400)));
/// assert!(!plan.is_overclocked(MegaHertz::new(3300)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyPlan {
    base: MegaHertz,
    turbo: MegaHertz,
    max_overclock: MegaHertz,
    step: MegaHertz,
}

impl FrequencyPlan {
    /// Build a plan.
    ///
    /// # Panics
    /// Panics unless `0 < base <= turbo <= max_overclock` and `step > 0`.
    pub fn new(
        base: MegaHertz,
        turbo: MegaHertz,
        max_overclock: MegaHertz,
        step: MegaHertz,
    ) -> FrequencyPlan {
        assert!(base.get() > 0, "base frequency must be positive");
        assert!(base <= turbo, "turbo must be at least base");
        assert!(
            turbo <= max_overclock,
            "max overclock must be at least turbo"
        );
        assert!(step.get() > 0, "step must be positive");
        FrequencyPlan {
            base,
            turbo,
            max_overclock,
            step,
        }
    }

    /// The reference plan matching the paper's cluster: 2.45 GHz base,
    /// 3.3 GHz max turbo, 4.0 GHz max overclock, 100 MHz steps.
    pub fn amd_reference() -> FrequencyPlan {
        FrequencyPlan::new(
            MegaHertz::new(2450),
            MegaHertz::new(3300),
            MegaHertz::new(4000),
            MegaHertz::new(100),
        )
    }

    /// A plan representing an Intel-generation server in the trace-driven
    /// simulations (datacenters "with either Intel or AMD CPUs", §V-B).
    pub fn intel_reference() -> FrequencyPlan {
        FrequencyPlan::new(
            MegaHertz::new(2600),
            MegaHertz::new(3500),
            MegaHertz::new(4100),
            MegaHertz::new(100),
        )
    }

    /// Guaranteed base frequency.
    pub fn base(self) -> MegaHertz {
        self.base
    }

    /// Vendor max-turbo frequency — the non-overclocked operating point in
    /// performance mode.
    pub fn turbo(self) -> MegaHertz {
        self.turbo
    }

    /// Highest permitted overclocking frequency.
    pub fn max_overclock(self) -> MegaHertz {
        self.max_overclock
    }

    /// Frequency-control step size.
    pub fn step(self) -> MegaHertz {
        self.step
    }

    /// Whether `f` is beyond the vendor turbo ceiling.
    pub fn is_overclocked(self, f: MegaHertz) -> bool {
        f > self.turbo
    }

    /// Overclocking headroom above turbo.
    pub fn overclock_range(self) -> MegaHertz {
        self.max_overclock - self.turbo
    }

    /// Clamp `f` into the operable range `[base, max_overclock]`.
    pub fn clamp(self, f: MegaHertz) -> MegaHertz {
        f.clamp(self.base, self.max_overclock)
    }

    /// One step up from `f`, clamped to the max overclock.
    pub fn step_up(self, f: MegaHertz) -> MegaHertz {
        (f + self.step).min(self.max_overclock)
    }

    /// One step down from `f`, clamped to the base frequency.
    pub fn step_down(self, f: MegaHertz) -> MegaHertz {
        f.saturating_sub(self.step).max(self.base)
    }

    /// All discrete operating points from base to max overclock, inclusive.
    pub fn levels(self) -> Vec<MegaHertz> {
        let mut out = Vec::new();
        let mut f = self.base;
        loop {
            out.push(f);
            if f >= self.max_overclock {
                break;
            }
            f = self.step_up(f);
        }
        out
    }
}

impl Default for FrequencyPlan {
    fn default() -> Self {
        FrequencyPlan::amd_reference()
    }
}

/// Piecewise-linear core voltage as a function of frequency.
///
/// Below turbo the slope is gentle (vendor DVFS curve); beyond turbo every
/// extra MHz costs disproportionately more voltage. Dynamic power scales as
/// `f · V(f)²`, so this curve is what makes a 3.3 → 4.0 GHz overclock roughly
/// double a core's dynamic power — consistent with the paper's example of
/// 10 W of extra power per overclocked core (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageCurve {
    /// Voltage at the base frequency.
    v_base: f64,
    /// Volts per MHz below/at turbo.
    slope_normal: f64,
    /// Volts per MHz beyond turbo.
    slope_overclock: f64,
    plan: FrequencyPlan,
}

impl VoltageCurve {
    /// Build a curve for a plan.
    ///
    /// # Panics
    /// Panics if `v_base <= 0` or either slope is negative.
    pub fn new(
        plan: FrequencyPlan,
        v_base: f64,
        slope_normal: f64,
        slope_overclock: f64,
    ) -> VoltageCurve {
        assert!(v_base > 0.0, "base voltage must be positive");
        assert!(
            slope_normal >= 0.0 && slope_overclock >= 0.0,
            "slopes must be non-negative"
        );
        VoltageCurve {
            v_base,
            slope_normal,
            slope_overclock,
            plan,
        }
    }

    /// Reference curve for [`FrequencyPlan::amd_reference`]: 0.95 V at base,
    /// ~1.15 V at turbo, ~1.68 V-equivalent at 4.0 GHz. The beyond-turbo
    /// slope is calibrated so a fully-utilized overclocked core draws
    /// roughly 7 W of extra power — matching the paper's §IV-C example of
    /// ~10 W per overclocked core (the "voltage" above turbo is an
    /// effective value folding in uncore and current-delivery overheads).
    pub fn reference(plan: FrequencyPlan) -> VoltageCurve {
        VoltageCurve::new(plan, 0.95, 0.000235, 0.000750)
    }

    /// The frequency plan this curve is defined over.
    pub fn plan(&self) -> FrequencyPlan {
        self.plan
    }

    /// Voltage at frequency `f` (clamped into the plan's range).
    pub fn voltage(&self, f: MegaHertz) -> Volts {
        let f = self.plan.clamp(f);
        let base = self.plan.base().get() as f64;
        let turbo = self.plan.turbo().get() as f64;
        let fv = f.get() as f64;
        let v = if fv <= turbo {
            self.v_base + self.slope_normal * (fv - base)
        } else {
            self.v_base + self.slope_normal * (turbo - base) + self.slope_overclock * (fv - turbo)
        };
        Volts::new(v)
    }

    /// Ratio of dynamic power at `f` to dynamic power at turbo:
    /// `(f · V(f)²) / (f_t · V(f_t)²)`.
    pub fn dynamic_power_factor(&self, f: MegaHertz) -> f64 {
        let f = self.plan.clamp(f);
        let turbo = self.plan.turbo();
        let num = f.get() as f64 * self.voltage(f).squared();
        let den = turbo.get() as f64 * self.voltage(turbo).squared();
        num / den
    }
}

impl Default for VoltageCurve {
    fn default() -> Self {
        VoltageCurve::reference(FrequencyPlan::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_plan_matches_paper() {
        let p = FrequencyPlan::amd_reference();
        assert_eq!(p.turbo().as_ghz(), 3.3);
        assert_eq!(p.max_overclock().as_ghz(), 4.0);
        assert_eq!(p.overclock_range(), MegaHertz::new(700));
    }

    #[test]
    fn stepping_is_clamped() {
        let p = FrequencyPlan::amd_reference();
        assert_eq!(p.step_up(MegaHertz::new(3950)), MegaHertz::new(4000));
        assert_eq!(p.step_up(MegaHertz::new(4000)), MegaHertz::new(4000));
        assert_eq!(p.step_down(MegaHertz::new(2500)), MegaHertz::new(2450));
        assert_eq!(p.step_down(MegaHertz::new(2450)), MegaHertz::new(2450));
    }

    #[test]
    fn levels_cover_range() {
        let p = FrequencyPlan::new(
            MegaHertz::new(2000),
            MegaHertz::new(2200),
            MegaHertz::new(2400),
            MegaHertz::new(100),
        );
        let levels = p.levels();
        assert_eq!(levels.first(), Some(&MegaHertz::new(2000)));
        assert_eq!(levels.last(), Some(&MegaHertz::new(2400)));
        assert_eq!(levels.len(), 5);
    }

    #[test]
    fn overclock_detection() {
        let p = FrequencyPlan::amd_reference();
        assert!(!p.is_overclocked(p.base()));
        assert!(!p.is_overclocked(p.turbo()));
        assert!(p.is_overclocked(p.turbo() + p.step()));
    }

    #[test]
    #[should_panic(expected = "turbo must be at least base")]
    fn plan_validates_order() {
        let _ = FrequencyPlan::new(
            MegaHertz::new(3000),
            MegaHertz::new(2000),
            MegaHertz::new(4000),
            MegaHertz::new(100),
        );
    }

    #[test]
    fn voltage_is_monotone_and_kinked() {
        let c = VoltageCurve::default();
        let p = c.plan();
        let v_base = c.voltage(p.base()).get();
        let v_turbo = c.voltage(p.turbo()).get();
        let v_oc = c.voltage(p.max_overclock()).get();
        assert!(v_base < v_turbo && v_turbo < v_oc);
        // Slope beyond turbo is steeper than below.
        let below = (v_turbo - v_base) / (p.turbo().get() - p.base().get()) as f64;
        let above = (v_oc - v_turbo) / (p.max_overclock().get() - p.turbo().get()) as f64;
        assert!(above > below);
    }

    #[test]
    fn full_overclock_multiplies_dynamic_power() {
        let c = VoltageCurve::default();
        let factor = c.dynamic_power_factor(c.plan().max_overclock());
        // The reference calibration gives ~2.4-2.7x at 4.0 GHz vs 3.3 GHz
        // (≈7 W extra per fully-utilized core; paper's example is ~10 W).
        assert!((2.2..=2.9).contains(&factor), "factor = {factor}");
        assert_eq!(c.dynamic_power_factor(c.plan().turbo()), 1.0);
    }

    #[test]
    fn voltage_clamps_out_of_range_frequencies() {
        let c = VoltageCurve::default();
        assert_eq!(c.voltage(MegaHertz::new(100)), c.voltage(c.plan().base()));
        assert_eq!(
            c.voltage(MegaHertz::new(9000)),
            c.voltage(c.plan().max_overclock())
        );
    }
}

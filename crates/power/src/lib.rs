//! # soc-power — power and frequency substrate
//!
//! Models the physical layer the SmartOClock agents control:
//!
//! * [`units`] — strongly-typed [`units::Watts`] and
//!   [`units::MegaHertz`] quantities.
//! * [`freq`] — CPU frequency plans (base / turbo / overclock range) and the
//!   voltage curve, with the steeper beyond-turbo voltage slope that makes
//!   overclocking power-hungry (paper §II).
//! * [`model`] — the CPU power model used by both the cluster harness and the
//!   large-scale simulator: `P = idle + Σ_core dynamic(u, f)` with
//!   `dynamic ∝ u · f · V(f)²`. "Models are used to estimate the power impact
//!   of overclocking; CPU utilization and core frequency are the input"
//!   (paper §V-B).
//! * [`server`] — per-server power state: core frequencies, utilization,
//!   frequency caps (the RAPL-like enforcement hook).
//! * [`rack`] — rack-level accounting: power limit, the 95 % warning
//!   threshold, capping events, and prioritized throttling (§IV-D).
//! * [`hierarchy`] — the datacenter power-delivery tree with even or
//!   heterogeneous budget splits (§II, §IV-C).

#![forbid(unsafe_code)]

pub mod freq;
pub mod hierarchy;
pub mod model;
pub mod rack;
pub mod server;
pub mod units;

pub use freq::{FrequencyPlan, VoltageCurve};
pub use model::PowerModel;
pub use rack::{RackMonitor, RackSignal};
pub use server::ServerPower;
pub use units::{MegaHertz, Watts};

//! The CPU power model.
//!
//! Both evaluation tracks in the paper rely on a model that maps *CPU
//! utilization and core frequency* to power ("Models are used to estimate the
//! power impact of overclocking; CPU utilization and core frequency are the
//! input. We validate the model for each server generation", §V-B).
//!
//! [`PowerModel`] implements the standard decomposition
//!
//! ```text
//! P_server = P_idle + Σ_cores  P_dyn_max · u_core · (f · V(f)²) / (f_t · V(f_t)²)
//! ```
//!
//! where `P_dyn_max` is the per-core dynamic power at max turbo and full
//! utilization, and the voltage curve supplies the beyond-turbo blow-up.

use crate::freq::{FrequencyPlan, VoltageCurve};
use crate::units::{MegaHertz, Watts};
use serde::{Deserialize, Serialize};

/// Per-core operating state: utilization and clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreState {
    /// Core utilization in `[0, 1]`.
    pub utilization: f64,
    /// Core clock.
    pub frequency: MegaHertz,
}

impl CoreState {
    /// Build a core state.
    ///
    /// # Panics
    /// Panics if `utilization` is outside `[0, 1]` or not finite.
    pub fn new(utilization: f64, frequency: MegaHertz) -> CoreState {
        assert!(
            utilization.is_finite() && (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1], got {utilization}"
        );
        CoreState {
            utilization,
            frequency,
        }
    }
}

/// Maps utilization + frequency to server power.
///
/// ```
/// use soc_power::model::PowerModel;
/// use soc_power::units::MegaHertz;
///
/// let model = PowerModel::reference_server();
/// let turbo = model.plan().turbo();
/// let idle = model.server_power_uniform(0.0, turbo);
/// let busy = model.server_power_uniform(1.0, turbo);
/// assert!(busy > idle);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    idle: Watts,
    per_core_dyn_turbo: Watts,
    cores: usize,
    curve: VoltageCurve,
}

impl PowerModel {
    /// Build a model.
    ///
    /// # Panics
    /// Panics if `cores == 0`, or either power figure is negative.
    pub fn new(
        idle: Watts,
        per_core_dyn_turbo: Watts,
        cores: usize,
        curve: VoltageCurve,
    ) -> PowerModel {
        assert!(cores > 0, "a server needs at least one core");
        assert!(
            idle.get() >= 0.0 && per_core_dyn_turbo.get() >= 0.0,
            "power must be non-negative"
        );
        PowerModel {
            idle,
            per_core_dyn_turbo,
            cores,
            curve,
        }
    }

    /// The reference server matching the paper's cluster: 64 cores,
    /// ~100 W idle, ~400 W at full load on turbo, ~2x dynamic power when
    /// overclocked to 4.0 GHz.
    pub fn reference_server() -> PowerModel {
        PowerModel::new(
            Watts::new(100.0),
            Watts::new(4.7),
            64,
            VoltageCurve::default(),
        )
    }

    /// An Intel-generation server for the mixed fleets of §V-B ("servers
    /// with either Intel or AMD CPUs"): 56 cores, slightly higher idle and
    /// per-core power, 3.5 GHz turbo / 4.1 GHz max overclock.
    pub fn intel_reference_server() -> PowerModel {
        let plan = crate::freq::FrequencyPlan::intel_reference();
        PowerModel::new(
            Watts::new(110.0),
            Watts::new(5.3),
            56,
            VoltageCurve::reference(plan),
        )
    }

    /// Idle (static) power.
    pub fn idle(&self) -> Watts {
        self.idle
    }

    /// Number of physical cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The frequency plan the model's voltage curve is defined over.
    pub fn plan(&self) -> FrequencyPlan {
        self.curve.plan()
    }

    /// The voltage curve.
    pub fn curve(&self) -> &VoltageCurve {
        &self.curve
    }

    /// Dynamic power of one core at the given state.
    ///
    /// # Panics
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn core_power(&self, utilization: f64, frequency: MegaHertz) -> Watts {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1], got {utilization}"
        );
        self.per_core_dyn_turbo * (utilization * self.curve.dynamic_power_factor(frequency))
    }

    /// Total server power for an explicit per-core state vector.
    ///
    /// # Panics
    /// Panics if `states.len()` exceeds the core count.
    pub fn server_power(&self, states: &[CoreState]) -> Watts {
        assert!(
            states.len() <= self.cores,
            "more core states than physical cores"
        );
        let dynamic: Watts = states
            .iter()
            .map(|c| self.core_power(c.utilization, c.frequency))
            .sum();
        self.idle + dynamic
    }

    /// Server power with every core at the same utilization and frequency.
    pub fn server_power_uniform(&self, utilization: f64, frequency: MegaHertz) -> Watts {
        self.idle + self.core_power(utilization, frequency) * self.cores as f64
    }

    /// Server power when `oc_cores` cores run overclocked at `oc_freq` and
    /// the rest at turbo, all at `utilization`. This is the shape the gOA's
    /// power-budget computation reasons about (§IV-C).
    ///
    /// # Panics
    /// Panics if `oc_cores` exceeds the core count.
    pub fn server_power_mixed(
        &self,
        utilization: f64,
        oc_cores: usize,
        oc_freq: MegaHertz,
    ) -> Watts {
        assert!(
            oc_cores <= self.cores,
            "cannot overclock more cores than exist"
        );
        let turbo = self.plan().turbo();
        let normal = self.core_power(utilization, turbo) * (self.cores - oc_cores) as f64;
        let oc = self.core_power(utilization, oc_freq) * oc_cores as f64;
        self.idle + normal + oc
    }

    /// Extra power from overclocking `oc_cores` cores from turbo to
    /// `oc_freq` at the given utilization — the quantity the sOA reserves
    /// during admission control (§IV-B).
    pub fn overclock_delta(&self, utilization: f64, oc_cores: usize, oc_freq: MegaHertz) -> Watts {
        let turbo = self.plan().turbo();
        (self.core_power(utilization, oc_freq) - self.core_power(utilization, turbo))
            * oc_cores as f64
    }

    /// Precompute the frequency-dependent factors of [`overclock_delta`]
    /// for one fixed overclock frequency.
    ///
    /// Admission loops evaluate the delta once per requesting server per
    /// step, always at the same `oc_freq`; the two
    /// `dynamic_power_factor` evaluations inside (two divisions each) are
    /// pure functions of the constant plan and frequency, so they can be
    /// hoisted out of the loop. [`OverclockDeltaFn::at`] then performs the
    /// exact floating-point operation sequence of the per-call form on the
    /// hoisted factors, making its results bit-identical (pinned by a
    /// property test below).
    ///
    /// [`overclock_delta`]: PowerModel::overclock_delta
    pub fn overclock_delta_fn(&self, oc_freq: MegaHertz) -> OverclockDeltaFn {
        OverclockDeltaFn {
            per_core_dyn_turbo: self.per_core_dyn_turbo,
            dpf_oc: self.curve.dynamic_power_factor(oc_freq),
            dpf_turbo: self.curve.dynamic_power_factor(self.plan().turbo()),
        }
    }

    /// Invert the uniform model: estimate average utilization from observed
    /// server power at a known frequency. Clamped to `[0, 1]`.
    pub fn utilization_from_power(&self, power: Watts, frequency: MegaHertz) -> f64 {
        let per_core = self.core_power(1.0, frequency) * self.cores as f64;
        if per_core.get() <= 0.0 {
            return 0.0;
        }
        ((power - self.idle).get() / per_core.get()).clamp(0.0, 1.0)
    }

    /// Split an observed server power draw into (regular, overclock) parts
    /// given how many cores were overclocked to `oc_freq` — the gOA's
    /// discrimination step (§IV-C "the number of cores from the server's
    /// overclocking template enable the gOA to discriminate the two
    /// portions").
    pub fn split_regular_overclock(
        &self,
        observed: Watts,
        oc_cores: usize,
        oc_freq: MegaHertz,
    ) -> (Watts, Watts) {
        let oc_cores = oc_cores.min(self.cores);
        // Estimate the utilization consistent with the observation.
        let factor = self.curve.dynamic_power_factor(oc_freq);
        let turbo_equiv_cores = (self.cores - oc_cores) as f64 + oc_cores as f64 * factor;
        let per_core_turbo = self.per_core_dyn_turbo;
        let denom = per_core_turbo.get() * turbo_equiv_cores;
        let util = if denom <= 0.0 {
            0.0
        } else {
            ((observed - self.idle).get() / denom).clamp(0.0, 1.0)
        };
        let oc_extra = self
            .overclock_delta(util, oc_cores, oc_freq)
            .clamp_non_negative();
        let regular = (observed - oc_extra).clamp_non_negative();
        (regular, oc_extra)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::reference_server()
    }
}

/// [`PowerModel::overclock_delta`] with its frequency factors hoisted; see
/// [`PowerModel::overclock_delta_fn`].
#[derive(Debug, Clone, Copy)]
pub struct OverclockDeltaFn {
    per_core_dyn_turbo: Watts,
    dpf_oc: f64,
    dpf_turbo: f64,
}

impl OverclockDeltaFn {
    /// Extra power from overclocking `oc_cores` cores at `utilization`,
    /// bit-identical to `overclock_delta(utilization, oc_cores, oc_freq)`
    /// on the model and frequency this was built from: same values, same
    /// operation order (`per_core · (u · dpf)` per frequency, subtract,
    /// scale by core count).
    ///
    /// # Panics
    /// Panics if `utilization` is outside `[0, 1]`, like the per-call form.
    pub fn at(&self, utilization: f64, oc_cores: usize) -> Watts {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1], got {utilization}"
        );
        (self.per_core_dyn_turbo * (utilization * self.dpf_oc)
            - self.per_core_dyn_turbo * (utilization * self.dpf_turbo))
            * oc_cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> PowerModel {
        PowerModel::reference_server()
    }

    #[test]
    fn idle_power_at_zero_utilization() {
        let m = model();
        assert_eq!(m.server_power_uniform(0.0, m.plan().turbo()), m.idle());
    }

    #[test]
    fn full_load_turbo_near_tdp() {
        let m = model();
        let p = m.server_power_uniform(1.0, m.plan().turbo());
        // 100 + 64 * 4.7 ≈ 400 W.
        assert!((p.get() - 400.0).abs() < 5.0, "p = {p}");
    }

    #[test]
    fn overclocking_increases_power() {
        let m = model();
        let turbo = m.server_power_uniform(0.6, m.plan().turbo());
        let oc = m.server_power_uniform(0.6, m.plan().max_overclock());
        assert!(oc > turbo);
        // Delta should match overclock_delta of all cores.
        let delta = m.overclock_delta(0.6, m.cores(), m.plan().max_overclock());
        assert!((oc - turbo - delta).get().abs() < 1e-9);
    }

    #[test]
    fn mixed_power_between_pure_states() {
        let m = model();
        let all_turbo = m.server_power_uniform(0.8, m.plan().turbo());
        let all_oc = m.server_power_uniform(0.8, m.plan().max_overclock());
        let mixed = m.server_power_mixed(0.8, 32, m.plan().max_overclock());
        assert!(mixed > all_turbo && mixed < all_oc);
    }

    #[test]
    fn utilization_inversion_roundtrip() {
        let m = model();
        for u in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = m.server_power_uniform(u, m.plan().turbo());
            let u2 = m.utilization_from_power(p, m.plan().turbo());
            assert!((u - u2).abs() < 1e-9, "u={u} u2={u2}");
        }
    }

    #[test]
    fn split_recovers_overclock_share() {
        let m = model();
        let oc_freq = m.plan().max_overclock();
        let util = 0.7;
        let observed = m.server_power_mixed(util, 10, oc_freq);
        let (regular, extra) = m.split_regular_overclock(observed, 10, oc_freq);
        let expected_extra = m.overclock_delta(util, 10, oc_freq);
        assert!(
            (extra - expected_extra).get().abs() < 1e-6,
            "extra={extra} expected={expected_extra}"
        );
        assert!((regular + extra - observed).get().abs() < 1e-9);
    }

    #[test]
    fn split_with_no_oc_cores_is_all_regular() {
        let m = model();
        let observed = m.server_power_uniform(0.5, m.plan().turbo());
        let (regular, extra) = m.split_regular_overclock(observed, 0, m.plan().max_overclock());
        assert_eq!(extra, Watts::ZERO);
        assert_eq!(regular, observed);
    }

    #[test]
    fn per_oc_core_delta_is_several_watts() {
        // Sanity-check against the paper's §IV-C example (≈10 W per
        // overclocked core at high utilization): our calibration gives
        // ~4-6 W at full utilization, same order of magnitude.
        let m = model();
        let delta = m.overclock_delta(1.0, 1, m.plan().max_overclock());
        assert!((3.0..=12.0).contains(&delta.get()), "delta = {delta}");
    }

    #[test]
    #[should_panic(expected = "utilization must be in")]
    fn rejects_bad_utilization() {
        let m = model();
        let _ = m.core_power(1.5, m.plan().turbo());
    }

    proptest! {
        #[test]
        fn power_monotone_in_utilization(u1 in 0.0..1.0f64, u2 in 0.0..1.0f64) {
            let m = model();
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            prop_assert!(
                m.server_power_uniform(lo, m.plan().turbo())
                    <= m.server_power_uniform(hi, m.plan().turbo())
            );
        }

        #[test]
        fn power_monotone_in_frequency(f in 2450u32..=4000) {
            let m = model();
            let lower = m.server_power_uniform(0.5, MegaHertz::new(f));
            let higher = m.server_power_uniform(0.5, MegaHertz::new(f + 50));
            prop_assert!(lower <= higher + Watts::new(1e-9));
        }

        #[test]
        fn split_parts_sum_to_observed(util in 0.0..1.0f64, oc in 0usize..64) {
            let m = model();
            let observed = m.server_power_mixed(util, oc, m.plan().max_overclock());
            let (r, e) = m.split_regular_overclock(observed, oc, m.plan().max_overclock());
            prop_assert!(((r + e) - observed).get().abs() < 1e-6);
            prop_assert!(r.get() >= 0.0 && e.get() >= 0.0);
        }

        #[test]
        fn hoisted_overclock_delta_is_bit_identical(
            util in 0.0..=1.0f64,
            cores in 0usize..64,
            f in 2450u32..=4000,
        ) {
            // The columnar engine hoists the frequency factors out of the
            // admission loop; bit equality (not approximate equality) is
            // what keeps that engine byte-identical to the reference.
            let m = model();
            let freq = MegaHertz::new(f);
            let hoisted = m.overclock_delta_fn(freq);
            prop_assert_eq!(
                hoisted.at(util, cores).get().to_bits(),
                m.overclock_delta(util, cores, freq).get().to_bits()
            );
        }
    }
}

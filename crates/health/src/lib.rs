//! # soc-health — fleet health observability for SmartOClock runs
//!
//! The operational layer the paper's production deployment lives on: "which
//! racks are unhealthy right now, when did the incident start, and what
//! caused it?" Three pieces:
//!
//! * **Series store** ([`series`]) — fixed-capacity, hierarchically
//!   downsampled sim-time series per `(metric, entity)`.
//! * **Alert rules** ([`rules`]) — declarative threshold / rate-of-change /
//!   absent-data / event / window rules with firing-resolved state machines,
//!   for-durations, and cooldowns, evaluated deterministically over the
//!   complete recorded run.
//! * **Incidents** ([`incident`]) — overlapping alerts grouped into
//!   operator-facing incidents, each joined to its root cause through
//!   `soc-analyze` causal chains.
//!
//! Like `soc-prof`, this crate lives strictly *outside* the deterministic
//! simulation core. Sim-state crates never link it (soc-lint D002 enforces
//! the direction); instead the sharded engine exposes pure no-op observation
//! hooks (`soc_cluster::probe::ShardProbe::{gauge, event}`) and bench
//! binaries attach a [`Recorder`] behind them. A run with the recorder
//! attached is byte-identical — traces, metrics, outcomes — to a run
//! without it, at every thread count (`tests/health.rs` pins this).
//!
//! All outputs are deterministic: the same run produces byte-identical
//! health reports, renders, and JSON ([`json`]), so incident timelines can
//! be golden-tested and CI-gated like any other simulation output.

#![forbid(unsafe_code)]

pub mod incident;
pub mod json;
pub mod render;
pub mod rules;
pub mod series;

pub use incident::{build_incidents, Incident};
pub use rules::{default_rules, evaluate, Alert, Rule, RuleKind};
pub use series::{Bucket, Series, SeriesStore, DEFAULT_CAPACITY};

use soc_analyze::Trace;
use soc_telemetry::json::event_to_json;
use soc_telemetry::Event;
use std::sync::{Arc, Mutex};

/// The complete health picture of one run: series, alerts, incidents.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Run name (usually the bench binary), shown in reports.
    pub name: String,
    /// Every recorded `(metric, entity)` series.
    pub store: SeriesStore,
    /// All alerts, in `(rule, entity, start)` order.
    pub alerts: Vec<Alert>,
    /// Incident timeline in start order.
    pub incidents: Vec<Incident>,
}

impl HealthReport {
    /// Incidents whose last member alert resolved before run end.
    pub fn resolved_incidents(&self) -> usize {
        self.incidents.iter().filter(|i| i.end_us.is_some()).count()
    }

    /// Incidents still open at run end.
    pub fn open_incidents(&self) -> usize {
        self.incidents.len() - self.resolved_incidents()
    }
}

struct State {
    name: String,
    store: SeriesStore,
    /// Telemetry events, re-serialized to JSONL so `soc_analyze::Trace` can
    /// canonicalize and causally index them at finalize time.
    event_lines: Vec<String>,
}

/// Cheap cloneable recorder fed through the `ShardProbe` observation seam.
///
/// A disabled recorder (the default) is `None` internally: every call is one
/// branch and never locks or allocates, mirroring `Telemetry::disabled`.
/// The mutex makes `sample` safe to call from concurrent simulation workers;
/// determinism does not depend on lock acquisition order because each series
/// receives its samples from exactly one worker in time order, and all
/// cross-series output ordering is canonical (see [`series::SeriesStore`]).
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<State>>>,
}

impl Recorder {
    /// An enabled recorder with the default per-series capacity.
    pub fn new(name: &str) -> Recorder {
        Recorder::with_capacity(name, 0)
    }

    /// An enabled recorder; `capacity` bounds buckets per series (0 means
    /// [`DEFAULT_CAPACITY`]).
    pub fn with_capacity(name: &str, capacity: usize) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Mutex::new(State {
                name: name.to_string(),
                store: SeriesStore::new(capacity),
                event_lines: Vec::new(),
            }))),
        }
    }

    /// A disabled recorder: every call is a no-op.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// `true` when the recorder is collecting.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one gauge sample into the `(metric, entity)` series.
    pub fn sample(&self, t_us: u64, metric: &str, entity: u64, value: f64) {
        if let Some(inner) = &self.inner {
            if let Ok(mut state) = inner.lock() {
                state.store.record(metric, entity, t_us, value);
            }
        }
    }

    /// Record one telemetry event for alert rules and root-cause joins.
    ///
    /// Callers must feed events in a deterministic order (the sharded
    /// engine's serial merge loop does); the trace is canonically re-sorted
    /// at finalize time anyway, so only the *set* of events matters.
    pub fn observe(&self, event: &Event) {
        if let Some(inner) = &self.inner {
            let line = event_to_json(event);
            if let Ok(mut state) = inner.lock() {
                state.event_lines.push(line);
            }
        }
    }

    /// Number of samples recorded so far, across all series (0 when
    /// disabled). Used by tests to assert the recorder actually saw data.
    pub fn samples(&self) -> u64 {
        match &self.inner {
            Some(inner) => match inner.lock() {
                Ok(state) => state.store.iter().map(|(_, s)| s.samples()).sum(),
                Err(_) => 0,
            },
            None => 0,
        }
    }

    /// Evaluate `rules` over everything recorded and build the incident
    /// timeline. Returns `None` when the recorder is disabled.
    pub fn finalize(&self, rules: &[Rule]) -> Option<HealthReport> {
        let inner = self.inner.as_ref()?;
        let state = inner.lock().ok()?;
        // Lines come from `event_to_json`, which always emits one valid JSON
        // object per event; a parse failure is unreachable, but degrade to
        // an empty trace rather than panicking inside observability code.
        let trace =
            Trace::parse(&state.event_lines.join("\n")).unwrap_or_else(|_| Trace::default());
        let alerts = evaluate(rules, &state.store, &trace);
        let incidents = build_incidents(&alerts, &trace);
        Some(HealthReport {
            name: state.name.clone(),
            store: state.store.clone(),
            alerts,
            incidents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use soc_telemetry::{Component, Severity};

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.sample(1, "draw", 0, 5.0);
        assert_eq!(r.samples(), 0);
        assert!(r.finalize(&default_rules(1)).is_none());
    }

    #[test]
    fn recorder_clones_share_state() {
        let r = Recorder::new("test");
        let r2 = r.clone();
        r.sample(1, "draw", 0, 5.0);
        r2.sample(2, "draw", 0, 6.0);
        assert_eq!(r.samples(), 2);
    }

    #[test]
    fn finalize_joins_events_and_series_into_incidents() {
        let r = Recorder::new("test");
        r.observe(
            &Event::new(
                SimTime::from_secs(10),
                Component::Sim,
                Severity::Warn,
                "degraded_enter",
            )
            .field("rack", 0usize)
            .field("decision_id", 42usize),
        );
        r.observe(
            &Event::new(
                SimTime::from_secs(20),
                Component::Sim,
                Severity::Info,
                "degraded_exit",
            )
            .field("rack", 0usize)
            .field("cause_id", 42usize),
        );
        let report = r.finalize(&default_rules(1_000_000)).expect("enabled");
        assert_eq!(report.alerts.len(), 1);
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.resolved_incidents(), 1);
        assert_eq!(report.open_incidents(), 0);
        let incident = &report.incidents[0];
        assert_eq!(incident.start_us, 10_000_000);
        assert_eq!(incident.end_us, Some(20_000_000));
        assert_eq!(incident.root_decision, 42);
    }
}

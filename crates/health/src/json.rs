//! Canonical byte-stable JSON for health reports.
//!
//! Same contract as `soc-prof` snapshots: the writer emits fields in a fixed
//! order with series in canonical `BTreeMap` key order and numbers in Rust's
//! shortest round-trip `Display` form, so the same run always serializes to
//! the same bytes — the CI fault-tolerance gate greps the output directly.
//! Reading goes through `soc-analyze`'s hand-rolled JSON parser (this crate
//! already links it for causal chains), keeping soc-health dependency-free.

use crate::incident::Incident;
use crate::rules::Alert;
use crate::series::{Bucket, Series, SeriesStore};
use crate::HealthReport;
use soc_analyze::json::{parse, JsonValue};
use std::fmt::Write as _;

/// Health report schema version.
pub const SCHEMA: u64 = 1;

/// The `kind` discriminator every health report carries.
pub const KIND: &str = "soc-health-report";

/// Escape `s` into a JSON string literal (including the quotes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float canonically: Rust's `Display` is the shortest decimal
/// that round-trips to the same bits. JSON has no Inf/NaN; the store drops
/// non-finite samples, but the writer must still emit valid JSON.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    format!("{v}")
}

fn fmt_opt(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn alert_json(a: &Alert) -> String {
    format!(
        "{{\"rule\":{},\"entity\":{},\"start_us\":{},\"end_us\":{},\"peak\":{},\"decision_id\":{}}}",
        escape(&a.rule),
        a.entity,
        a.start_us,
        fmt_opt(a.end_us),
        fmt_num(a.peak),
        a.decision_id
    )
}

fn incident_json(i: &Incident) -> String {
    let alerts: Vec<String> = i.alerts.iter().map(alert_json).collect();
    format!(
        "{{\"id\":{},\"start_us\":{},\"end_us\":{},\"duration_us\":{},\"root_decision\":{},\"cause\":{},\"alerts\":[{}]}}",
        i.id,
        i.start_us,
        fmt_opt(i.end_us),
        fmt_opt(i.duration_us()),
        i.root_decision,
        escape(&i.cause),
        alerts.join(",")
    )
}

fn series_json(s: &Series) -> String {
    let buckets: Vec<String> = s
        .buckets()
        .iter()
        .map(|b| {
            format!(
                "[{},{},{},{},{},{},{}]",
                b.t0_us,
                fmt_num(b.min),
                fmt_num(b.max),
                fmt_num(b.sum),
                b.count,
                fmt_num(b.last),
                b.last_t_us
            )
        })
        .collect();
    format!(
        "{{\"width_us\":{},\"buckets\":[{}]}}",
        s.width_us(),
        buckets.join(",")
    )
}

/// Serialize a report to canonical JSON bytes.
pub fn to_json(report: &HealthReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {SCHEMA},");
    let _ = writeln!(out, "  \"kind\": {},", escape(KIND));
    let _ = writeln!(out, "  \"name\": {},", escape(&report.name));
    // One line each so CI can grep the counts without a JSON parser.
    let _ = writeln!(
        out,
        "  \"resolved_incidents\": {},",
        report.resolved_incidents()
    );
    let _ = writeln!(out, "  \"open_incidents\": {},", report.open_incidents());
    out.push_str("  \"alerts\": [");
    for (n, a) in report.alerts.iter().enumerate() {
        let sep = if n == 0 { "\n    " } else { ",\n    " };
        out.push_str(sep);
        out.push_str(&alert_json(a));
    }
    out.push_str(if report.alerts.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"incidents\": [");
    for (n, i) in report.incidents.iter().enumerate() {
        let sep = if n == 0 { "\n    " } else { ",\n    " };
        out.push_str(sep);
        out.push_str(&incident_json(i));
    }
    out.push_str(if report.incidents.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"series\": {");
    for (n, ((metric, entity), series)) in report.store.iter().enumerate() {
        let sep = if n == 0 { "\n    " } else { ",\n    " };
        out.push_str(sep);
        let _ = write!(
            out,
            "{}: {}",
            escape(&format!("{metric}{{entity={entity}}}")),
            series_json(series)
        );
    }
    out.push_str(if report.store.is_empty() {
        "}\n"
    } else {
        "\n  }\n"
    });
    out.push_str("}\n");
    out
}

fn need_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or invalid \"{key}\""))
}

fn need_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or invalid \"{key}\""))
}

fn need_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or invalid \"{key}\""))
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(other) => other
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("invalid \"{key}\"")),
    }
}

fn alert_from(v: &JsonValue) -> Result<Alert, String> {
    Ok(Alert {
        rule: need_str(v, "rule")?.to_string(),
        entity: need_u64(v, "entity")?,
        start_us: need_u64(v, "start_us")?,
        end_us: opt_u64(v, "end_us")?,
        peak: need_f64(v, "peak")?,
        decision_id: need_u64(v, "decision_id")?,
    })
}

fn incident_from(v: &JsonValue) -> Result<Incident, String> {
    let JsonValue::Arr(alert_values) = v
        .get("alerts")
        .ok_or_else(|| "incident is missing \"alerts\"".to_string())?
    else {
        return Err("incident \"alerts\" is not an array".to_string());
    };
    let alerts = alert_values
        .iter()
        .map(alert_from)
        .collect::<Result<Vec<Alert>, String>>()?;
    Ok(Incident {
        id: need_u64(v, "id")?,
        start_us: need_u64(v, "start_us")?,
        end_us: opt_u64(v, "end_us")?,
        alerts,
        root_decision: need_u64(v, "root_decision")?,
        cause: need_str(v, "cause")?.to_string(),
    })
}

/// Split a `metric{entity=N}` series key back into its parts.
fn split_series_key(key: &str) -> Result<(String, u64), String> {
    let open = key
        .rfind("{entity=")
        .ok_or_else(|| format!("malformed series key `{key}`"))?;
    let entity = key[open + "{entity=".len()..]
        .strip_suffix('}')
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| format!("malformed series key `{key}`"))?;
    Ok((key[..open].to_string(), entity))
}

fn series_from(v: &JsonValue) -> Result<Series, String> {
    let width_us = need_u64(v, "width_us")?;
    let JsonValue::Arr(rows) = v
        .get("buckets")
        .ok_or_else(|| "series is missing \"buckets\"".to_string())?
    else {
        return Err("series \"buckets\" is not an array".to_string());
    };
    let mut buckets = Vec::with_capacity(rows.len());
    for row in rows {
        let JsonValue::Arr(cells) = row else {
            return Err("bucket row is not an array".to_string());
        };
        if cells.len() != 7 {
            return Err(format!("bucket row has {} cells, expected 7", cells.len()));
        }
        let num = |i: usize| -> Result<f64, String> {
            cells[i]
                .as_f64()
                .ok_or_else(|| format!("bucket cell {i} is not a number"))
        };
        let int = |i: usize| -> Result<u64, String> {
            cells[i]
                .as_u64()
                .ok_or_else(|| format!("bucket cell {i} is not an integer"))
        };
        buckets.push(Bucket {
            t0_us: int(0)?,
            min: num(1)?,
            max: num(2)?,
            sum: num(3)?,
            count: int(4)?,
            last: num(5)?,
            last_t_us: int(6)?,
        });
    }
    Ok(Series::from_parts(width_us, buckets))
}

/// Parse a report back from its canonical JSON.
///
/// # Errors
/// Returns a message on malformed JSON, a wrong `schema`/`kind`, or missing
/// fields.
pub fn from_json(text: &str) -> Result<HealthReport, String> {
    let root = parse(text).map_err(|e| e.to_string())?;
    let schema = need_u64(&root, "schema")?;
    if schema != SCHEMA {
        return Err(format!("unsupported schema {schema} (expected {SCHEMA})"));
    }
    let kind = need_str(&root, "kind")?;
    if kind != KIND {
        return Err(format!("not a health report (kind `{kind}`)"));
    }
    let name = need_str(&root, "name")?.to_string();

    let JsonValue::Arr(alert_values) = root
        .get("alerts")
        .ok_or_else(|| "missing \"alerts\"".to_string())?
    else {
        return Err("\"alerts\" is not an array".to_string());
    };
    let alerts = alert_values
        .iter()
        .map(alert_from)
        .collect::<Result<Vec<Alert>, String>>()?;

    let JsonValue::Arr(incident_values) = root
        .get("incidents")
        .ok_or_else(|| "missing \"incidents\"".to_string())?
    else {
        return Err("\"incidents\" is not an array".to_string());
    };
    let incidents = incident_values
        .iter()
        .map(incident_from)
        .collect::<Result<Vec<Incident>, String>>()?;

    let JsonValue::Obj(series_members) = root
        .get("series")
        .ok_or_else(|| "missing \"series\"".to_string())?
    else {
        return Err("\"series\" is not an object".to_string());
    };
    let mut store = SeriesStore::new(0);
    for (key, value) in series_members {
        let (metric, entity) = split_series_key(key)?;
        store.insert(metric, entity, series_from(value)?);
    }

    Ok(HealthReport {
        name,
        store,
        alerts,
        incidents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleKind;
    use crate::{build_incidents, evaluate, Rule};
    use soc_analyze::Trace;

    fn sample_report() -> HealthReport {
        let mut store = SeriesStore::new(8);
        for t in 0..20u64 {
            store.record("rack_draw_w", 0, t * 100, 10.0 + (t % 5) as f64);
            store.record("rack_draw_w", 1, t * 100, 95.0 + (t % 3) as f64);
        }
        store.record("rack_limit_w", 0, 0, 100.0);
        store.record("rack_limit_w", 1, 0, 96.0);
        let text = [
            r#"{"t_us":300,"component":"fault","severity":"warn","name":"degraded_enter","fields":{"rack":1,"decision_id":9}}"#,
            r#"{"t_us":900,"component":"fault","severity":"info","name":"degraded_exit","fields":{"rack":1,"cause_id":9}}"#,
        ]
        .join("\n");
        let trace = Trace::parse(&text).expect("trace parses");
        let rules = vec![
            Rule::new(
                "degraded",
                RuleKind::Window {
                    enter: "degraded_enter".to_string(),
                    exit: "degraded_exit".to_string(),
                },
            ),
            Rule::new(
                "headroom",
                RuleKind::Threshold {
                    metric: "rack_draw_w".to_string(),
                    ratio_of: Some("rack_limit_w".to_string()),
                    above: 0.99,
                },
            ),
        ];
        let alerts = evaluate(&rules, &store, &trace);
        let incidents = build_incidents(&alerts, &trace);
        HealthReport {
            name: "sample".to_string(),
            store,
            alerts,
            incidents,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let report = sample_report();
        let text = to_json(&report);
        let back = from_json(&text).expect("parses back");
        assert_eq!(back.name, report.name);
        assert_eq!(back.alerts, report.alerts);
        assert_eq!(back.incidents, report.incidents);
        assert_eq!(back.store.len(), report.store.len());
        for ((key, series), (bkey, bseries)) in report.store.iter().zip(back.store.iter()) {
            assert_eq!(key, bkey);
            assert_eq!(series.buckets(), bseries.buckets());
            assert_eq!(series.width_us(), bseries.width_us());
        }
    }

    #[test]
    fn serialization_is_byte_stable() {
        let a = to_json(&sample_report());
        let b = to_json(&sample_report());
        assert_eq!(a, b);
        // Re-serializing a parsed report is also byte-identical.
        let c = to_json(&from_json(&a).expect("parses"));
        assert_eq!(a, c);
    }

    #[test]
    fn counts_are_grepable_lines() {
        let text = to_json(&sample_report());
        assert!(
            text.lines()
                .any(|l| l.trim_start().starts_with("\"resolved_incidents\": ")),
            "no grepable resolved_incidents line in:\n{text}"
        );
    }

    #[test]
    fn rejects_wrong_schema_and_kind() {
        assert!(from_json("{\"schema\": 99, \"kind\": \"soc-health-report\"}").is_err());
        assert!(from_json("{\"schema\": 1, \"kind\": \"soc-prof-snapshot\"}").is_err());
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn series_keys_round_trip() {
        assert_eq!(
            split_series_key("rack_draw_w{entity=3}").expect("parses"),
            ("rack_draw_w".to_string(), 3)
        );
        assert!(split_series_key("no_entity").is_err());
        assert!(split_series_key("bad{entity=x}").is_err());
    }

    #[test]
    fn empty_report_serializes_cleanly() {
        let report = HealthReport {
            name: "empty".to_string(),
            store: SeriesStore::new(0),
            alerts: Vec::new(),
            incidents: Vec::new(),
        };
        let text = to_json(&report);
        let back = from_json(&text).expect("parses back");
        assert!(back.alerts.is_empty());
        assert!(back.incidents.is_empty());
        assert!(back.store.is_empty());
    }
}

//! Deterministic alert-rule engine.
//!
//! Rules are declarative descriptions of unhealthy conditions; the engine
//! evaluates them *after* the run, over the complete recorded series store
//! and event log, on sim-time boundaries only. Evaluation is a pure function
//! of `(rules, store, trace)` — no wall clock, no sampling jitter — so the
//! alert set for a given seed is byte-stable and can be golden-tested like
//! any other simulation output. Each `(rule, entity)` pair runs a
//! firing/resolved state machine with a `for`-duration (the condition must
//! hold that long before an alert opens) and a cooldown (a re-fire within
//! the cooldown merges into silence instead of flapping).

use crate::series::{Series, SeriesStore};
use soc_analyze::{Trace, TraceEvent};

/// What a rule watches.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Fires while a series' bucket max exceeds `above`. With `ratio_of`
    /// set, the tested value is `metric / ratio_of` (same entity), e.g.
    /// rack draw as a fraction of the rack limit.
    Threshold {
        metric: String,
        ratio_of: Option<String>,
        above: f64,
    },
    /// Fires when the absolute slope between consecutive buckets exceeds
    /// `max_per_s` (units of the metric per simulated second).
    RateOfChange { metric: String, max_per_s: f64 },
    /// Fires when a series that has started reporting goes silent for more
    /// than `max_gap_us` between consecutive samples.
    AbsentData { metric: String, max_gap_us: u64 },
    /// Fires on telemetry events with this name; events closer together
    /// than `merge_gap_us` merge into one alert.
    Event { name: String, merge_gap_us: u64 },
    /// Fires between an `enter` and an `exit` telemetry event (degraded
    /// windows); an unmatched `enter` leaves the alert firing at run end.
    Window { enter: String, exit: String },
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Stable identifier, used in reports and incident grouping.
    pub id: String,
    pub kind: RuleKind,
    /// How long the condition must hold before the alert opens.
    pub for_us: u64,
    /// Suppress re-firing for this long after an alert resolves.
    pub cooldown_us: u64,
}

impl Rule {
    /// A rule with zero `for`-duration and cooldown.
    pub fn new(id: &str, kind: RuleKind) -> Rule {
        Rule {
            id: id.to_string(),
            kind,
            for_us: 0,
            cooldown_us: 0,
        }
    }

    /// Builder: require the condition to hold `for_us` before firing.
    pub fn for_duration(mut self, for_us: u64) -> Rule {
        self.for_us = for_us;
        self
    }

    /// Builder: suppress re-fires for `cooldown_us` after resolving.
    pub fn cooldown(mut self, cooldown_us: u64) -> Rule {
        self.cooldown_us = cooldown_us;
        self
    }
}

/// One firing or resolved alert instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Id of the rule that produced the alert.
    pub rule: String,
    /// Entity the alert is about (rack index; 0 for fleet-level signals).
    pub entity: u64,
    /// Sim time the alert opened.
    pub start_us: u64,
    /// Sim time the alert resolved; `None` = still firing at run end.
    pub end_us: Option<u64>,
    /// Worst observed value (threshold/rate), event count (event rules), or
    /// window length in microseconds (window rules).
    pub peak: f64,
    /// Decision id of the telemetry event that opened the alert (0 when the
    /// alert came from a series, which carries no causal ids).
    pub decision_id: u64,
}

/// The default rule set covering the signals the simulation already emits.
///
/// `step_us` is the simulation step: event merging and absence detection are
/// scaled to it so the rules work at any experiment cadence.
pub fn default_rules(step_us: u64) -> Vec<Rule> {
    let step = step_us.max(1);
    vec![
        // Post-enforcement draw above the contracted limit: always an
        // incident, merge per-step repeats within one outage.
        Rule::new(
            "budget_violation",
            RuleKind::Event {
                name: "budget_violation".to_string(),
                merge_gap_us: 2 * step,
            },
        ),
        // SLO misses from the harness experiments.
        Rule::new(
            "slo_miss",
            RuleKind::Event {
                name: "slo_miss".to_string(),
                merge_gap_us: 2 * step,
            },
        ),
        // Stale-budget degraded windows (gOA unreachable).
        Rule::new(
            "degraded",
            RuleKind::Window {
                enter: "degraded_enter".to_string(),
                exit: "degraded_exit".to_string(),
            },
        ),
        // Rack draw eating the last percent of headroom. Post-enforcement
        // draw is clamped to 98 % of the limit except on true violations,
        // so 99 % only trips when enforcement failed.
        Rule::new(
            "headroom",
            RuleKind::Threshold {
                metric: "rack_draw_w".to_string(),
                ratio_of: Some("rack_limit_w".to_string()),
                above: 0.99,
            },
        ),
        // A rack that stops reporting draw entirely.
        Rule::new(
            "absent_data",
            RuleKind::AbsentData {
                metric: "rack_draw_w".to_string(),
                max_gap_us: 8 * step,
            },
        ),
    ]
}

/// Evaluate every rule against the recorded series and events; alerts come
/// out ordered by `(rule id, entity, start)`.
pub fn evaluate(rules: &[Rule], store: &SeriesStore, trace: &Trace) -> Vec<Alert> {
    let mut alerts = Vec::new();
    for rule in rules {
        match &rule.kind {
            RuleKind::Threshold {
                metric, ratio_of, ..
            } => {
                for entity in store.entities(metric) {
                    if let Some(series) = store.get(metric, entity) {
                        let reference = ratio_of.as_ref().and_then(|r| store.get(r, entity));
                        alerts.extend(threshold_alerts(rule, entity, series, reference));
                    }
                }
            }
            RuleKind::RateOfChange { metric, max_per_s } => {
                for entity in store.entities(metric) {
                    if let Some(series) = store.get(metric, entity) {
                        alerts.extend(rate_alerts(rule, entity, series, *max_per_s));
                    }
                }
            }
            RuleKind::AbsentData { metric, max_gap_us } => {
                for entity in store.entities(metric) {
                    if let Some(series) = store.get(metric, entity) {
                        alerts.extend(absent_alerts(rule, entity, series, *max_gap_us));
                    }
                }
            }
            RuleKind::Event { name, merge_gap_us } => {
                alerts.extend(event_alerts(rule, trace, name, *merge_gap_us));
            }
            RuleKind::Window { enter, exit } => {
                alerts.extend(window_alerts(rule, trace, enter, exit));
            }
        }
    }
    alerts.sort_by(|a, b| (&a.rule, a.entity, a.start_us).cmp(&(&b.rule, b.entity, b.start_us)));
    alerts
}

/// The entity a telemetry event is about: its `rack` field, or 0.
fn event_entity(e: &TraceEvent) -> u64 {
    e.field_u64("rack").unwrap_or(0)
}

/// The causal id an alert inherits from its trigger event.
fn event_decision(e: &TraceEvent) -> u64 {
    let d = e.decision_id();
    if d != 0 {
        d
    } else {
        e.cause_id()
    }
}

/// Shared firing/resolved state machine over a (time, value) condition walk.
struct FiringState<'r> {
    rule: &'r Rule,
    entity: u64,
    pending_since: Option<u64>,
    firing_since: Option<u64>,
    peak: f64,
    cooldown_until: u64,
    out: Vec<Alert>,
}

impl<'r> FiringState<'r> {
    fn new(rule: &'r Rule, entity: u64) -> FiringState<'r> {
        FiringState {
            rule,
            entity,
            pending_since: None,
            firing_since: None,
            peak: f64::MIN,
            cooldown_until: 0,
            out: Vec::new(),
        }
    }

    fn observe(&mut self, t_us: u64, value: f64, condition: bool) {
        if condition {
            if self.firing_since.is_some() {
                self.peak = self.peak.max(value);
                return;
            }
            if t_us < self.cooldown_until {
                return;
            }
            let since = *self.pending_since.get_or_insert(t_us);
            self.peak = self.peak.max(value);
            if t_us - since >= self.rule.for_us {
                self.firing_since = Some(since);
            }
        } else {
            self.resolve_at(t_us);
            self.pending_since = None;
            self.peak = f64::MIN;
        }
    }

    fn resolve_at(&mut self, t_us: u64) {
        if let Some(start) = self.firing_since.take() {
            self.out.push(Alert {
                rule: self.rule.id.clone(),
                entity: self.entity,
                start_us: start,
                end_us: Some(t_us),
                peak: self.peak,
                decision_id: 0,
            });
            self.cooldown_until = t_us + self.rule.cooldown_us;
        }
    }

    fn finish(mut self) -> Vec<Alert> {
        if let Some(start) = self.firing_since.take() {
            self.out.push(Alert {
                rule: self.rule.id.clone(),
                entity: self.entity,
                start_us: start,
                end_us: None,
                peak: self.peak,
                decision_id: 0,
            });
        }
        self.out
    }
}

fn threshold_alerts(
    rule: &Rule,
    entity: u64,
    series: &Series,
    reference: Option<&Series>,
) -> Vec<Alert> {
    let RuleKind::Threshold {
        above, ratio_of, ..
    } = &rule.kind
    else {
        return Vec::new();
    };
    let mut state = FiringState::new(rule, entity);
    for b in series.buckets() {
        let value = match (ratio_of, reference) {
            (Some(_), Some(r)) => match r.value_at(b.t0_us) {
                Some(denominator) if denominator != 0.0 => b.max / denominator,
                // No reference yet (or zero): the ratio is undefined, not
                // unhealthy.
                _ => continue,
            },
            (Some(_), None) => continue,
            (None, _) => b.max,
        };
        state.observe(b.t0_us, value, value > *above);
    }
    state.finish()
}

fn rate_alerts(rule: &Rule, entity: u64, series: &Series, max_per_s: f64) -> Vec<Alert> {
    let mut state = FiringState::new(rule, entity);
    let buckets = series.buckets();
    for pair in buckets.windows(2) {
        let dt_us = pair[1].last_t_us.saturating_sub(pair[0].last_t_us);
        if dt_us == 0 {
            continue;
        }
        let slope = (pair[1].last - pair[0].last).abs() / (dt_us as f64 / 1_000_000.0);
        state.observe(pair[1].t0_us, slope, slope > max_per_s);
    }
    state.finish()
}

fn absent_alerts(rule: &Rule, entity: u64, series: &Series, max_gap_us: u64) -> Vec<Alert> {
    let mut out = Vec::new();
    for pair in series.buckets().windows(2) {
        // Bucket boundaries under-resolve intra-bucket gaps, so compare the
        // last sample of one bucket to the start of the next.
        let gap = pair[1].t0_us.saturating_sub(pair[0].last_t_us);
        if gap > max_gap_us {
            out.push(Alert {
                rule: rule.id.clone(),
                entity,
                start_us: pair[0].last_t_us,
                end_us: Some(pair[1].t0_us),
                peak: gap as f64,
                decision_id: 0,
            });
        }
    }
    out
}

fn event_alerts(rule: &Rule, trace: &Trace, name: &str, merge_gap_us: u64) -> Vec<Alert> {
    // Trace events are already in canonical (t, raw) order; walk them per
    // entity and merge bursts into one alert.
    let mut open: std::collections::BTreeMap<u64, Alert> = std::collections::BTreeMap::new();
    let mut out = Vec::new();
    for e in trace.control_events().filter(|e| e.name == name) {
        let entity = event_entity(e);
        let merged = match open.get_mut(&entity) {
            Some(alert)
                if e.t_us
                    .saturating_sub(alert.end_us.unwrap_or(alert.start_us))
                    <= merge_gap_us =>
            {
                alert.end_us = Some(e.t_us);
                alert.peak += 1.0;
                true
            }
            _ => false,
        };
        if !merged {
            if let Some(done) = open.remove(&entity) {
                out.push(done);
            }
            open.insert(
                entity,
                Alert {
                    rule: rule.id.clone(),
                    entity,
                    start_us: e.t_us,
                    end_us: Some(e.t_us),
                    peak: 1.0,
                    decision_id: event_decision(e),
                },
            );
        }
    }
    out.extend(open.into_values());
    out
}

fn window_alerts(rule: &Rule, trace: &Trace, enter: &str, exit: &str) -> Vec<Alert> {
    let mut open: std::collections::BTreeMap<u64, Alert> = std::collections::BTreeMap::new();
    let mut out = Vec::new();
    for e in trace.control_events() {
        let entity = event_entity(e);
        if e.name == enter {
            // Nested enters extend the open window rather than stacking.
            open.entry(entity).or_insert(Alert {
                rule: rule.id.clone(),
                entity,
                start_us: e.t_us,
                end_us: None,
                peak: 0.0,
                decision_id: event_decision(e),
            });
        } else if e.name == exit {
            if let Some(mut alert) = open.remove(&entity) {
                alert.end_us = Some(e.t_us);
                alert.peak = e.t_us.saturating_sub(alert.start_us) as f64;
                out.push(alert);
            }
        }
    }
    // Unmatched enters are still firing at run end.
    out.extend(open.into_values());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(metric: &str, entity: u64, samples: &[(u64, f64)]) -> SeriesStore {
        let mut store = SeriesStore::new(0);
        for (t, v) in samples {
            store.record(metric, entity, *t, *v);
        }
        store
    }

    fn empty_trace() -> Trace {
        Trace::parse("").expect("empty trace parses")
    }

    #[test]
    fn threshold_fires_and_resolves() {
        let store = store_with(
            "draw",
            3,
            &[(0, 10.0), (10, 95.0), (20, 97.0), (30, 40.0), (40, 41.0)],
        );
        let rule = Rule::new(
            "hot",
            RuleKind::Threshold {
                metric: "draw".to_string(),
                ratio_of: None,
                above: 90.0,
            },
        );
        let alerts = evaluate(&[rule], &store, &empty_trace());
        assert_eq!(alerts.len(), 1);
        let a = &alerts[0];
        assert_eq!((a.entity, a.start_us, a.end_us), (3, 10, Some(30)));
        assert_eq!(a.peak, 97.0);
    }

    #[test]
    fn threshold_for_duration_filters_blips() {
        let mut samples = Vec::new();
        // One-step blip at t=10, sustained excursion from t=50..=90.
        for t in (0..=100u64).step_by(10) {
            let v = if t == 10 || (50..=90).contains(&t) {
                99.0
            } else {
                10.0
            };
            samples.push((t, v));
        }
        let store = store_with("draw", 0, &samples);
        let rule = Rule::new(
            "hot",
            RuleKind::Threshold {
                metric: "draw".to_string(),
                ratio_of: None,
                above: 90.0,
            },
        )
        .for_duration(20);
        let alerts = evaluate(&[rule], &store, &empty_trace());
        assert_eq!(alerts.len(), 1, "the blip must not fire: {alerts:?}");
        assert_eq!(alerts[0].start_us, 50);
        assert_eq!(alerts[0].end_us, Some(100));
    }

    #[test]
    fn threshold_cooldown_suppresses_flapping() {
        let mut samples = Vec::new();
        for t in (0..200u64).step_by(10) {
            // Alternate high/low every 10us.
            samples.push((t, if (t / 10) % 2 == 0 { 99.0 } else { 1.0 }));
        }
        let store = store_with("draw", 0, &samples);
        let flappy = Rule::new(
            "hot",
            RuleKind::Threshold {
                metric: "draw".to_string(),
                ratio_of: None,
                above: 90.0,
            },
        );
        let calmed = flappy.clone().cooldown(1000);
        let noisy = evaluate(&[flappy], &store, &empty_trace());
        let calm = evaluate(&[calmed], &store, &empty_trace());
        assert!(noisy.len() > 1);
        assert_eq!(calm.len(), 1, "cooldown must merge flaps: {calm:?}");
    }

    #[test]
    fn ratio_threshold_uses_reference_series() {
        let mut store = SeriesStore::new(0);
        store.record("limit", 1, 0, 100.0);
        for (t, v) in [(0u64, 50.0), (10, 99.5), (20, 50.0)] {
            store.record("draw", 1, t, v);
        }
        let rule = Rule::new(
            "headroom",
            RuleKind::Threshold {
                metric: "draw".to_string(),
                ratio_of: Some("limit".to_string()),
                above: 0.99,
            },
        );
        let alerts = evaluate(&[rule], &store, &empty_trace());
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].start_us, 10);
        assert!((alerts[0].peak - 0.995).abs() < 1e-12);
    }

    #[test]
    fn rate_of_change_detects_steps() {
        let store = store_with(
            "draw",
            0,
            &[
                (0, 100.0),
                (1_000_000, 101.0),
                (2_000_000, 500.0),
                (3_000_000, 501.0),
            ],
        );
        let rule = Rule::new(
            "spike",
            RuleKind::RateOfChange {
                metric: "draw".to_string(),
                max_per_s: 10.0,
            },
        );
        let alerts = evaluate(&[rule], &store, &empty_trace());
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].start_us, 2_000_000);
        assert!((alerts[0].peak - 399.0).abs() < 1e-9);
    }

    #[test]
    fn absent_data_flags_silent_gaps() {
        let store = store_with("draw", 2, &[(0, 1.0), (10, 1.0), (500, 1.0), (510, 1.0)]);
        let rule = Rule::new(
            "absent",
            RuleKind::AbsentData {
                metric: "draw".to_string(),
                max_gap_us: 100,
            },
        );
        let alerts = evaluate(&[rule], &store, &empty_trace());
        assert_eq!(alerts.len(), 1);
        let a = &alerts[0];
        assert_eq!((a.start_us, a.end_us, a.peak), (10, Some(500), 490.0));
    }

    #[test]
    fn event_rule_merges_bursts_per_entity() {
        let text = [
            r#"{"t_us":100,"component":"fault","severity":"error","name":"budget_violation","fields":{"rack":1,"decision_id":11}}"#,
            r#"{"t_us":150,"component":"fault","severity":"error","name":"budget_violation","fields":{"rack":1,"decision_id":12}}"#,
            r#"{"t_us":150,"component":"fault","severity":"error","name":"budget_violation","fields":{"rack":2,"decision_id":13}}"#,
            r#"{"t_us":900,"component":"fault","severity":"error","name":"budget_violation","fields":{"rack":1,"decision_id":14}}"#,
        ]
        .join("\n");
        let trace = Trace::parse(&text).expect("trace parses");
        let rule = Rule::new(
            "violation",
            RuleKind::Event {
                name: "budget_violation".to_string(),
                merge_gap_us: 100,
            },
        );
        let alerts = evaluate(&[rule], &SeriesStore::new(0), &trace);
        // rack 1: burst (100..150) + separate at 900; rack 2: one.
        assert_eq!(alerts.len(), 3);
        assert_eq!(alerts[0].entity, 1);
        assert_eq!(alerts[0].peak, 2.0);
        assert_eq!(alerts[0].decision_id, 11);
        assert_eq!(alerts[1].entity, 1);
        assert_eq!(alerts[1].start_us, 900);
        assert_eq!(alerts[2].entity, 2);
    }

    #[test]
    fn window_rule_pairs_enter_and_exit() {
        let text = [
            r#"{"t_us":100,"component":"fault","severity":"warn","name":"degraded_enter","fields":{"rack":0,"decision_id":7}}"#,
            r#"{"t_us":400,"component":"fault","severity":"info","name":"degraded_exit","fields":{"rack":0,"cause_id":7}}"#,
            r#"{"t_us":500,"component":"fault","severity":"warn","name":"degraded_enter","fields":{"rack":3,"decision_id":9}}"#,
        ]
        .join("\n");
        let trace = Trace::parse(&text).expect("trace parses");
        let rule = Rule::new(
            "degraded",
            RuleKind::Window {
                enter: "degraded_enter".to_string(),
                exit: "degraded_exit".to_string(),
            },
        );
        let alerts = evaluate(&[rule], &SeriesStore::new(0), &trace);
        assert_eq!(alerts.len(), 2);
        let closed = &alerts[0];
        assert_eq!(
            (closed.entity, closed.start_us, closed.end_us, closed.peak),
            (0, 100, Some(400), 300.0)
        );
        assert_eq!(closed.decision_id, 7);
        let open = &alerts[1];
        assert_eq!((open.entity, open.end_us), (3, None));
    }

    #[test]
    fn default_rules_cover_the_documented_signals() {
        let rules = default_rules(900_000_000);
        let ids: Vec<&str> = rules.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "budget_violation",
                "slo_miss",
                "degraded",
                "headroom",
                "absent_data"
            ]
        );
    }
}

//! `soc-health` — command-line fleet health reports.
//!
//! ```text
//! soc-health report <health.json> [--out report.txt]
//! soc-health alerts <health.json>
//! soc-health query  <health.json> <metric> [--entity N]
//! ```
//!
//! Health files come from any bench binary run with `--health-out` (e.g.
//! `exp_fault_tolerance --health-out ft.health.json`).

use soc_health::{json, render, HealthReport};
use std::process::ExitCode;

const USAGE: &str = "usage: soc-health <command> [args]

commands:
  report <health.json> [--out FILE]   sparklines per series + incident table
  alerts <health.json>                one row per alert (firing and resolved)
  query  <health.json> <metric> [--entity N]
                                      bucket-level dump of one series

Health files are produced by the soc-bench binaries via --health-out.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("soc-health: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `--flag value` pairs pulled out of the argument list.
type Flags<'a> = Vec<(&'a str, &'a str)>;

/// Split off every `--flag value` pair; returns (positional, flags).
fn split_flags(args: &[String]) -> Result<(Vec<&str>, Flags<'_>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(name) = arg.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(arg);
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| *v)
}

fn load(path: &str) -> Result<HealthReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// Print to stdout, or write to `--out FILE` when given.
fn deliver(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text)
            .map_err(|e| format!("writing {path}: {e}"))
            .map(|()| eprintln!("soc-health: report written to {path}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first().map(String::as_str) else {
        return Err(USAGE.to_string());
    };
    let (positional, flags) = split_flags(&args[1..])?;
    match command {
        "report" => {
            let [path] = positional[..] else {
                return Err(format!("report takes one health file\n\n{USAGE}"));
            };
            deliver(&render::render_report(&load(path)?), flag(&flags, "out"))
        }
        "alerts" => {
            let [path] = positional[..] else {
                return Err(format!("alerts takes one health file\n\n{USAGE}"));
            };
            print!("{}", render::render_alerts(&load(path)?));
            Ok(())
        }
        "query" => {
            let [path, metric] = positional[..] else {
                return Err(format!("query takes a health file and a metric\n\n{USAGE}"));
            };
            let entity = match flag(&flags, "entity") {
                Some(v) => Some(v.parse::<u64>().map_err(|_| format!("bad --entity {v}"))?),
                None => None,
            };
            print!("{}", render::render_query(&load(path)?, metric, entity));
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

//! Deterministic ASCII rendering: sparklines, alert and incident tables.
//!
//! Everything here is a pure function of a [`HealthReport`], so rendered
//! reports are byte-stable per seed and safe to golden-test.

use crate::series::Series;
use crate::HealthReport;
use std::fmt::Write as _;

/// Density ramp for sparklines, lowest to highest.
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Default sparkline width in columns.
const SPARK_WIDTH: usize = 60;

/// Render `values` as a fixed-width sparkline, normalizing into the density
/// ramp. More values than columns merge by mean; fewer stretch.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let width = width.max(1);
    if values.is_empty() {
        return " ".repeat(width);
    }
    // Resample onto `width` columns: column i covers an equal slice of the
    // value index range.
    let mut columns = Vec::with_capacity(width);
    for i in 0..width {
        let lo = i * values.len() / width;
        let hi = (((i + 1) * values.len()).div_ceil(width)).min(values.len());
        let slice = &values[lo..hi.max(lo + 1).min(values.len())];
        let mean = if slice.is_empty() {
            0.0
        } else {
            slice.iter().sum::<f64>() / slice.len() as f64
        };
        columns.push(mean);
    }
    let min = columns.iter().copied().fold(f64::MAX, f64::min);
    let max = columns.iter().copied().fold(f64::MIN, f64::max);
    let span = max - min;
    columns
        .iter()
        .map(|v| {
            let norm = if span > 0.0 { (v - min) / span } else { 0.5 };
            let idx = (norm * (RAMP.len() - 1) as f64).round() as usize;
            RAMP[idx.min(RAMP.len() - 1)]
        })
        .collect()
}

/// Human-friendly sim duration: `90s` → `1m30s`, `7200000000us` → `2h`.
pub fn fmt_dur(us: u64) -> String {
    let secs = us / 1_000_000;
    if secs == 0 {
        return format!("{us}us");
    }
    let (d, h, m, s) = (
        secs / 86_400,
        (secs % 86_400) / 3_600,
        (secs % 3_600) / 60,
        secs % 60,
    );
    let mut out = String::new();
    if d > 0 {
        let _ = write!(out, "{d}d");
    }
    if h > 0 {
        let _ = write!(out, "{h}h");
    }
    if m > 0 {
        let _ = write!(out, "{m}m");
    }
    if s > 0 || out.is_empty() {
        let _ = write!(out, "{s}s");
    }
    out
}

/// A sim timestamp formatted as a duration since run start.
pub fn fmt_time(us: u64) -> String {
    format!("+{}", fmt_dur(us))
}

fn fmt_end(end_us: Option<u64>) -> String {
    match end_us {
        Some(t) => fmt_time(t),
        None => "open".to_string(),
    }
}

fn series_means(series: &Series) -> Vec<f64> {
    series.buckets().iter().map(|b| b.mean()).collect()
}

/// One `metric{entity=N}` sparkline row.
fn series_row(out: &mut String, label: &str, series: &Series) {
    let values = series_means(series);
    let min = series
        .buckets()
        .iter()
        .map(|b| b.min)
        .fold(f64::MAX, f64::min);
    let max = series
        .buckets()
        .iter()
        .map(|b| b.max)
        .fold(f64::MIN, f64::max);
    let last = series.buckets().last().map(|b| b.last).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "  {label:<28} |{}| min={min:.1} max={max:.1} last={last:.1} n={}",
        sparkline(&values, SPARK_WIDTH),
        series.samples()
    );
}

/// The full `report` view: sparklines per series, fleet rollups, incident
/// table.
pub fn render_report(report: &HealthReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== fleet health: {} ==", report.name);

    if !report.store.is_empty() {
        out.push_str("\n-- Series --\n");
        for ((metric, entity), series) in report.store.iter() {
            series_row(&mut out, &format!("{metric}{{entity={entity}}}"), series);
        }
        // Fleet rollup per metric with more than one entity: the per-bucket
        // sum across entities, sampled on the union of bucket starts.
        let mut metrics: Vec<&str> = Vec::new();
        for ((metric, _), _) in report.store.iter() {
            if !metrics.contains(&metric.as_str()) {
                metrics.push(metric);
            }
        }
        for metric in metrics {
            let entities = report.store.entities(metric);
            if entities.len() < 2 {
                continue;
            }
            let mut t0s: Vec<u64> = Vec::new();
            for &e in &entities {
                if let Some(series) = report.store.get(metric, e) {
                    t0s.extend(series.buckets().iter().map(|b| b.t0_us));
                }
            }
            t0s.sort_unstable();
            t0s.dedup();
            let values: Vec<f64> = t0s
                .iter()
                .map(|&t| {
                    entities
                        .iter()
                        .filter_map(|&e| report.store.get(metric, e).and_then(|s| s.value_at(t)))
                        .sum()
                })
                .collect();
            if let (Some(&min), Some(&max)) = (
                values.iter().min_by(|a, b| a.total_cmp(b)),
                values.iter().max_by(|a, b| a.total_cmp(b)),
            ) {
                let _ = writeln!(
                    out,
                    "  {:<28} |{}| min={min:.1} max={max:.1} racks={}",
                    format!("{metric}{{fleet}}"),
                    sparkline(&values, SPARK_WIDTH),
                    entities.len()
                );
            }
        }
    }

    out.push_str("\n-- Incidents --\n");
    if report.incidents.is_empty() {
        out.push_str("  none\n");
    } else {
        let _ = writeln!(
            out,
            "  {:<4} {:<12} {:<12} {:<10} {:<9} {:<24} cause",
            "id", "start", "end", "duration", "decision", "rules"
        );
        for i in &report.incidents {
            let duration = match i.duration_us() {
                Some(d) => fmt_dur(d),
                None => "open".to_string(),
            };
            let cause = if i.cause.is_empty() {
                "unattributed".to_string()
            } else {
                i.cause.clone()
            };
            let _ = writeln!(
                out,
                "  {:<4} {:<12} {:<12} {:<10} {:<9} {:<24} {}",
                i.id,
                fmt_time(i.start_us),
                fmt_end(i.end_us),
                duration,
                i.root_decision,
                i.rules().join(","),
                cause
            );
        }
    }
    let _ = writeln!(
        out,
        "\n{} alerts, {} incidents ({} resolved, {} open)",
        report.alerts.len(),
        report.incidents.len(),
        report.resolved_incidents(),
        report.open_incidents()
    );
    out
}

/// The `alerts` view: one table row per alert.
pub fn render_alerts(report: &HealthReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== alerts: {} ==", report.name);
    if report.alerts.is_empty() {
        out.push_str("  none\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  {:<18} {:<8} {:<12} {:<12} {:<12} decision",
        "rule", "entity", "start", "end", "peak"
    );
    for a in &report.alerts {
        let _ = writeln!(
            out,
            "  {:<18} {:<8} {:<12} {:<12} {:<12.3} {}",
            a.rule,
            a.entity,
            fmt_time(a.start_us),
            fmt_end(a.end_us),
            a.peak,
            a.decision_id
        );
    }
    out
}

/// The `query` view: bucket-level dump of one metric (optionally one
/// entity).
pub fn render_query(report: &HealthReport, metric: &str, entity: Option<u64>) -> String {
    let mut out = String::new();
    let mut found = false;
    for ((m, e), series) in report.store.iter() {
        if m != metric || entity.is_some_and(|want| want != *e) {
            continue;
        }
        found = true;
        let _ = writeln!(
            out,
            "{m}{{entity={e}}} width={}us buckets={} samples={}",
            series.width_us(),
            series.buckets().len(),
            series.samples()
        );
        for b in series.buckets() {
            let _ = writeln!(
                out,
                "  t0={:<14} min={:<12.3} max={:<12.3} mean={:<12.3} last={:.3}",
                b.t0_us,
                b.min,
                b.max,
                b.mean(),
                b.last
            );
        }
    }
    if !found {
        let _ = writeln!(out, "no series for metric `{metric}`");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesStore;

    fn report_with_series() -> HealthReport {
        let mut store = SeriesStore::new(16);
        for t in 0..32u64 {
            store.record("rack_draw_w", 0, t * 1_000_000, (t % 8) as f64);
            store.record("rack_draw_w", 1, t * 1_000_000, 1.0);
        }
        HealthReport {
            name: "render-test".to_string(),
            store,
            alerts: Vec::new(),
            incidents: Vec::new(),
        }
    }

    #[test]
    fn sparkline_is_fixed_width_and_normalized() {
        let flat = sparkline(&[5.0, 5.0, 5.0], 10);
        assert_eq!(flat.chars().count(), 10);
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(ramp.chars().count(), 4);
        assert_eq!(ramp.chars().next(), Some(' '));
        assert_eq!(ramp.chars().last(), Some('@'));
        assert_eq!(sparkline(&[], 5), "     ");
    }

    #[test]
    fn durations_format_humanely() {
        assert_eq!(fmt_dur(500), "500us");
        assert_eq!(fmt_dur(90_000_000), "1m30s");
        assert_eq!(fmt_dur(7_200_000_000), "2h");
        assert_eq!(fmt_dur(90_000_000_000), "1d1h");
        assert_eq!(fmt_time(60_000_000), "+1m");
    }

    #[test]
    fn report_renders_series_fleet_and_incident_sections() {
        let text = render_report(&report_with_series());
        assert!(text.contains("== fleet health: render-test =="));
        assert!(text.contains("rack_draw_w{entity=0}"));
        assert!(text.contains("rack_draw_w{fleet}"));
        assert!(text.contains("-- Incidents --"));
        assert!(text.contains("  none"));
        assert!(text.contains("0 alerts, 0 incidents (0 resolved, 0 open)"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_report(&report_with_series());
        let b = render_report(&report_with_series());
        assert_eq!(a, b);
    }

    #[test]
    fn query_dumps_buckets_or_reports_absence() {
        let report = report_with_series();
        let text = render_query(&report, "rack_draw_w", Some(0));
        assert!(text.contains("rack_draw_w{entity=0}"));
        assert!(text.contains("t0="));
        let missing = render_query(&report, "nope", None);
        assert!(missing.contains("no series for metric `nope`"));
    }
}

//! Incident timelines: overlapping alerts grouped into operator-facing
//! incidents, each joined to its root cause through `soc-analyze` causal
//! chains.
//!
//! An *incident* is a maximal set of alerts whose firing windows overlap in
//! sim time — the operator view of "one thing went wrong here", even when it
//! tripped several rules across several racks (a gOA outage degrades every
//! rack at once and may surface budget violations while stale budgets are in
//! force). The root cause is recovered from the earliest alert that carries a
//! causal decision id: walking `cause_id` links backwards through the trace
//! yields the decision that started the story.

use crate::rules::Alert;
use soc_analyze::chains::{chain_ending_at, decision_index};
use soc_analyze::Trace;

/// One incident: a group of overlapping alerts with a causal explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// 1-based incident number in start order.
    pub id: u64,
    /// Sim time the first member alert opened.
    pub start_us: u64,
    /// Sim time the last member alert resolved; `None` = still open at run
    /// end.
    pub end_us: Option<u64>,
    /// Member alerts, in `(start, rule, entity)` order.
    pub alerts: Vec<Alert>,
    /// Root decision id from the causal chain of the earliest attributable
    /// alert, falling back to the decision in force for the entity when the
    /// incident opened (0 = nothing in the trace explains it).
    pub root_decision: u64,
    /// The causal chain as `" -> "`-joined event names (empty when
    /// unattributed).
    pub cause: String,
}

impl Incident {
    /// Incident length in sim microseconds (`None` while still open).
    pub fn duration_us(&self) -> Option<u64> {
        self.end_us.map(|e| e.saturating_sub(self.start_us))
    }

    /// Distinct rule ids involved, in first-seen order.
    pub fn rules(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for a in &self.alerts {
            if !out.contains(&a.rule.as_str()) {
                out.push(&a.rule);
            }
        }
        out
    }
}

/// Group alerts into incidents by sim-time overlap and attribute each via the
/// trace's causal chains. Alerts with an open end (`end_us == None`) extend
/// their incident to run end, so everything starting after them merges in.
pub fn build_incidents(alerts: &[Alert], trace: &Trace) -> Vec<Incident> {
    let mut sorted: Vec<Alert> = alerts.to_vec();
    sorted.sort_by(|a, b| (a.start_us, &a.rule, a.entity).cmp(&(b.start_us, &b.rule, b.entity)));

    let mut groups: Vec<Vec<Alert>> = Vec::new();
    // Sweep in start order; `horizon` is the current group's furthest end
    // (None = open, reaches run end).
    let mut horizon: Option<u64> = Some(0);
    for alert in sorted {
        let overlaps = match (groups.last(), horizon) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(_), Some(h)) => alert.start_us <= h,
        };
        if overlaps {
            if let Some(group) = groups.last_mut() {
                horizon = match (horizon, alert.end_us) {
                    (None, _) | (_, None) => None,
                    (Some(h), Some(e)) => Some(h.max(e)),
                };
                group.push(alert);
                continue;
            }
        }
        horizon = alert.end_us;
        groups.push(vec![alert]);
    }

    let index = decision_index(trace);
    groups
        .into_iter()
        .enumerate()
        .map(|(n, group)| {
            let start_us = group.iter().map(|a| a.start_us).min().unwrap_or(0);
            let end_us = group
                .iter()
                .map(|a| a.end_us)
                .reduce(|acc, e| match (acc, e) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                })
                .flatten();
            // Root cause: the earliest member alert that carries a decision
            // id (sweep order = start order, so the first hit wins). Alerts
            // from pure series rules (threshold/rate/absent) carry none —
            // for those, fall back to the latest control event for the same
            // entity at or before the incident start, the decision in force
            // when the window opened.
            let (mut root_decision, mut cause) = (0, String::new());
            let seed_decision = group
                .iter()
                .find(|a| a.decision_id != 0)
                .map(|a| a.decision_id)
                .or_else(|| {
                    let entity = group.first().map(|a| a.entity)?;
                    trace
                        .control_events()
                        .filter(|e| {
                            e.t_us <= start_us
                                && e.decision_id() != 0
                                && e.field_u64("rack") == Some(entity)
                        })
                        .last()
                        .map(|e| e.decision_id())
                });
            if let Some(seed) = seed_decision {
                if let Some(&terminal) = index.get(&seed) {
                    let chain = chain_ending_at(trace, &index, terminal);
                    let events = trace.events();
                    root_decision = chain
                        .path
                        .first()
                        .map(|&i| events[i].decision_id())
                        .unwrap_or(seed);
                    cause = chain
                        .path
                        .iter()
                        .map(|&i| events[i].name.as_str())
                        .collect::<Vec<_>>()
                        .join(" -> ");
                } else {
                    // Decision id known but its event is missing from the
                    // recorded lines (truncated feed): keep the id.
                    root_decision = seed;
                }
            }
            Incident {
                id: (n + 1) as u64,
                start_us,
                end_us,
                alerts: group,
                root_decision,
                cause,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(rule: &str, entity: u64, start: u64, end: Option<u64>, decision: u64) -> Alert {
        Alert {
            rule: rule.to_string(),
            entity,
            start_us: start,
            end_us: end,
            peak: 1.0,
            decision_id: decision,
        }
    }

    fn empty_trace() -> Trace {
        Trace::parse("").expect("empty trace parses")
    }

    #[test]
    fn overlapping_alerts_group_into_one_incident() {
        let alerts = vec![
            alert("degraded", 0, 100, Some(500), 0),
            alert("degraded", 1, 120, Some(480), 0),
            alert("headroom", 0, 400, Some(600), 0),
            alert("degraded", 2, 900, Some(950), 0),
        ];
        let incidents = build_incidents(&alerts, &empty_trace());
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].alerts.len(), 3);
        assert_eq!(incidents[0].start_us, 100);
        assert_eq!(incidents[0].end_us, Some(600));
        assert_eq!(incidents[0].duration_us(), Some(500));
        assert_eq!(incidents[0].rules(), vec!["degraded", "headroom"]);
        assert_eq!(incidents[1].id, 2);
        assert_eq!(incidents[1].start_us, 900);
    }

    #[test]
    fn open_alert_extends_the_incident_to_run_end() {
        let alerts = vec![
            alert("degraded", 0, 100, None, 0),
            alert("headroom", 1, 5000, Some(6000), 0),
        ];
        let incidents = build_incidents(&alerts, &empty_trace());
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].end_us, None);
        assert_eq!(incidents[0].duration_us(), None);
    }

    #[test]
    fn root_cause_joins_through_causal_chains() {
        let text = [
            r#"{"t_us":50,"component":"sim","severity":"info","name":"rack_sim_start","fields":{"rack":0,"decision_id":3}}"#,
            r#"{"t_us":100,"component":"fault","severity":"warn","name":"degraded_enter","fields":{"rack":0,"decision_id":7,"cause_id":3}}"#,
        ]
        .join("\n");
        let trace = Trace::parse(&text).expect("trace parses");
        let alerts = vec![
            alert("absent_data", 2, 90, Some(600), 0),
            alert("degraded", 0, 100, Some(500), 7),
        ];
        let incidents = build_incidents(&alerts, &trace);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].root_decision, 3);
        assert_eq!(incidents[0].cause, "rack_sim_start -> degraded_enter");
    }

    #[test]
    fn unattributed_incident_has_zero_root() {
        let incidents = build_incidents(&[alert("x", 0, 1, Some(2), 0)], &empty_trace());
        assert_eq!(incidents[0].root_decision, 0);
        assert!(incidents[0].cause.is_empty());
    }

    #[test]
    fn series_only_incident_joins_to_the_entitys_standing_decision() {
        // A headroom (threshold) alert carries no decision id; the incident
        // still attributes to the latest control event for rack 1 at or
        // before its start — not to rack 0's, and not to later events.
        let text = [
            r#"{"t_us":50,"component":"sim","severity":"info","name":"rack_sim_start","fields":{"rack":1,"decision_id":4}}"#,
            r#"{"t_us":60,"component":"sim","severity":"info","name":"rack_sim_start","fields":{"rack":0,"decision_id":5}}"#,
            r#"{"t_us":200,"component":"sim","severity":"warn","name":"rack_capping","fields":{"rack":1,"decision_id":9,"cause_id":4}}"#,
        ]
        .join("\n");
        let trace = Trace::parse(&text).expect("trace parses");
        let incidents = build_incidents(&[alert("headroom", 1, 100, Some(150), 0)], &trace);
        assert_eq!(incidents[0].root_decision, 4);
        assert_eq!(incidents[0].cause, "rack_sim_start");
    }

    #[test]
    fn empty_alerts_produce_no_incidents() {
        assert!(build_incidents(&[], &empty_trace()).is_empty());
    }
}

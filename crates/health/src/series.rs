//! Sim-time time-series store: fixed-capacity per-`(metric, entity)` series
//! with hierarchical downsampling.
//!
//! Every series holds at most `capacity` buckets. Buckets start one sim-time
//! microsecond wide (i.e. one bucket per distinct sample timestamp); when a
//! series would exceed its capacity the bucket width doubles and existing
//! buckets re-align onto the coarser grid, merging neighbours. Width doubling
//! is a pure function of the sample sequence, so a series' final state
//! depends only on the samples it received — never on when other series
//! received theirs. That is what lets the recorder be fed concurrently from
//! sharded simulation workers (each series receives its samples from exactly
//! one worker, in time order) and still finalize byte-identically at every
//! thread count.
//!
//! Each bucket keeps min/max/sum/count/last, so downsampling preserves the
//! extremes alert rules care about (a one-step budget excursion survives any
//! amount of coarsening as the bucket max).

use std::collections::BTreeMap;

/// Default per-series bucket capacity.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One downsampled bucket of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Bucket start (inclusive), aligned to the series' current width.
    pub t0_us: u64,
    /// Smallest sample in the bucket.
    pub min: f64,
    /// Largest sample in the bucket.
    pub max: f64,
    /// Sum of samples (for the mean).
    pub sum: f64,
    /// Number of samples merged into the bucket.
    pub count: u64,
    /// Most recent sample value.
    pub last: f64,
    /// Timestamp of the most recent sample.
    pub last_t_us: u64,
}

impl Bucket {
    fn seed(t0_us: u64, t_us: u64, value: f64) -> Bucket {
        Bucket {
            t0_us,
            min: value,
            max: value,
            sum: value,
            count: 1,
            last: value,
            last_t_us: t_us,
        }
    }

    /// Mean of the samples in the bucket.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn absorb_sample(&mut self, t_us: u64, value: f64) {
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
        self.count += 1;
        if t_us >= self.last_t_us {
            self.last = value;
            self.last_t_us = t_us;
        }
    }

    fn absorb_bucket(&mut self, other: &Bucket) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
        if other.last_t_us >= self.last_t_us {
            self.last = other.last;
            self.last_t_us = other.last_t_us;
        }
    }
}

/// One `(metric, entity)` series: a capacity-bounded, time-ordered bucket
/// vector plus the current bucket width.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    width_us: u64,
    capacity: usize,
    buckets: Vec<Bucket>,
}

impl Series {
    /// An empty series with the given bucket capacity (min 2).
    pub fn new(capacity: usize) -> Series {
        Series {
            width_us: 1,
            capacity: capacity.max(2),
            buckets: Vec::new(),
        }
    }

    /// Current bucket width in sim-time microseconds.
    pub fn width_us(&self) -> u64 {
        self.width_us
    }

    /// The buckets in time order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Record one sample. Non-finite values are dropped (they carry no
    /// health signal and would poison min/max).
    pub fn record(&mut self, t_us: u64, value: f64) {
        if !value.is_finite() {
            return;
        }
        let t0 = t_us - t_us % self.width_us;
        // Samples arrive in time order per series (one simulation worker per
        // entity), so the common case is "extends or lands in the last
        // bucket"; a binary search keeps out-of-order input correct anyway.
        match self.buckets.binary_search_by(|b| b.t0_us.cmp(&t0)) {
            Ok(i) => self.buckets[i].absorb_sample(t_us, value),
            Err(i) => {
                self.buckets.insert(i, Bucket::seed(t0, t_us, value));
                if self.buckets.len() > self.capacity {
                    self.compact();
                }
            }
        }
    }

    /// Double the bucket width and merge buckets onto the coarser grid.
    fn compact(&mut self) {
        self.width_us *= 2;
        let mut merged: Vec<Bucket> = Vec::with_capacity(self.buckets.len() / 2 + 1);
        for b in &self.buckets {
            let t0 = b.t0_us - b.t0_us % self.width_us;
            match merged.last_mut() {
                Some(prev) if prev.t0_us == t0 => prev.absorb_bucket(b),
                _ => {
                    let mut nb = *b;
                    nb.t0_us = t0;
                    merged.push(nb);
                }
            }
        }
        self.buckets = merged;
    }

    /// The last recorded value at or before `t_us`, if any.
    pub fn value_at(&self, t_us: u64) -> Option<f64> {
        let i = self.buckets.partition_point(|b| b.t0_us <= t_us);
        i.checked_sub(1).map(|i| self.buckets[i].last)
    }

    /// Number of samples recorded into the series.
    pub fn samples(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// Rebuild a series from stored parts (the JSON reader). The capacity is
    /// restored to at least the bucket count so further recording behaves.
    pub(crate) fn from_parts(width_us: u64, buckets: Vec<Bucket>) -> Series {
        Series {
            width_us: width_us.max(1),
            capacity: DEFAULT_CAPACITY.max(buckets.len()),
            buckets,
        }
    }
}

/// All series of one run, keyed by `(metric, entity)`.
///
/// The `BTreeMap` key order is the canonical iteration order everywhere —
/// reports, JSON, rendering — so cross-series arrival order (which is
/// scheduler-dependent under sharded execution) never shows in any output.
#[derive(Debug, Clone, Default)]
pub struct SeriesStore {
    series: BTreeMap<(String, u64), Series>,
    capacity: usize,
}

impl SeriesStore {
    /// An empty store; each series is capped at `capacity` buckets (0 means
    /// [`DEFAULT_CAPACITY`]).
    pub fn new(capacity: usize) -> SeriesStore {
        SeriesStore {
            series: BTreeMap::new(),
            capacity: if capacity == 0 {
                DEFAULT_CAPACITY
            } else {
                capacity
            },
        }
    }

    /// Record one sample into the `(metric, entity)` series.
    pub fn record(&mut self, metric: &str, entity: u64, t_us: u64, value: f64) {
        self.series
            .entry((metric.to_string(), entity))
            .or_insert_with(|| Series::new(self.capacity))
            .record(t_us, value);
    }

    /// Look up one series.
    pub fn get(&self, metric: &str, entity: u64) -> Option<&Series> {
        self.series.get(&(metric.to_string(), entity))
    }

    /// Iterate `((metric, entity), series)` in canonical key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, u64), &Series)> {
        self.series.iter()
    }

    /// All entities that have a series for `metric`, in ascending order.
    pub fn entities(&self, metric: &str) -> Vec<u64> {
        self.series
            .keys()
            .filter(|(m, _)| m == metric)
            .map(|(_, e)| *e)
            .collect()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` when no series exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Insert a fully built series (the JSON reader).
    pub(crate) fn insert(&mut self, metric: String, entity: u64, series: Series) {
        self.series.insert((metric, entity), series);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_buckets_by_timestamp_until_capacity() {
        let mut s = Series::new(4);
        for t in 0..4u64 {
            s.record(t, t as f64);
        }
        assert_eq!(s.width_us(), 1);
        assert_eq!(s.buckets().len(), 4);
        assert_eq!(s.buckets()[2].last, 2.0);
    }

    #[test]
    fn exceeding_capacity_doubles_width_and_merges() {
        let mut s = Series::new(4);
        for t in 0..8u64 {
            s.record(t, t as f64);
        }
        // 8 distinct timestamps in a 4-bucket series: width doubled to 2.
        assert_eq!(s.width_us(), 2);
        assert_eq!(s.buckets().len(), 4);
        let b0 = s.buckets()[0];
        assert_eq!(b0.t0_us, 0);
        assert_eq!((b0.min, b0.max, b0.count, b0.last), (0.0, 1.0, 2, 1.0));
    }

    #[test]
    fn downsampling_preserves_extremes_and_mean() {
        let mut s = Series::new(2);
        let values = [5.0, 100.0, -3.0, 7.0, 7.0, 7.0, 7.0, 2.0];
        for (t, v) in values.iter().enumerate() {
            s.record(t as u64, *v);
        }
        let min = s.buckets().iter().map(|b| b.min).fold(f64::MAX, f64::min);
        let max = s.buckets().iter().map(|b| b.max).fold(f64::MIN, f64::max);
        assert_eq!(min, -3.0);
        assert_eq!(max, 100.0);
        let total: f64 = s.buckets().iter().map(|b| b.sum).sum();
        let count: u64 = s.buckets().iter().map(|b| b.count).sum();
        assert_eq!(count, values.len() as u64);
        assert!((total - values.iter().sum::<f64>()).abs() < 1e-12);
        assert_eq!(s.samples(), 8);
    }

    #[test]
    fn final_state_is_a_function_of_the_sample_sequence() {
        // Two identical sample sequences produce identical series even when
        // recorded into stores holding other series in between — the
        // determinism claim the sharded recorder relies on.
        let feed = |s: &mut SeriesStore, extra: bool| {
            for t in 0..100u64 {
                if extra {
                    s.record("other", 9, t * 7, 1.0);
                }
                s.record("draw", 1, t * 1000, (t % 13) as f64);
            }
        };
        let mut a = SeriesStore::new(16);
        let mut b = SeriesStore::new(16);
        feed(&mut a, false);
        feed(&mut b, true);
        assert_eq!(a.get("draw", 1), b.get("draw", 1));
    }

    #[test]
    fn value_at_returns_last_at_or_before() {
        let mut s = Series::new(8);
        s.record(10, 1.0);
        s.record(20, 2.0);
        assert_eq!(s.value_at(5), None);
        assert_eq!(s.value_at(10), Some(1.0));
        assert_eq!(s.value_at(15), Some(1.0));
        assert_eq!(s.value_at(25), Some(2.0));
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut s = Series::new(8);
        s.record(1, f64::NAN);
        s.record(2, f64::INFINITY);
        assert!(s.buckets().is_empty());
    }

    #[test]
    fn store_keys_are_canonically_ordered() {
        let mut store = SeriesStore::new(0);
        store.record("z_metric", 0, 1, 1.0);
        store.record("a_metric", 2, 1, 1.0);
        store.record("a_metric", 1, 1, 1.0);
        let keys: Vec<_> = store.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(
            keys,
            vec![
                ("a_metric".to_string(), 1),
                ("a_metric".to_string(), 2),
                ("z_metric".to_string(), 0)
            ]
        );
        assert_eq!(store.entities("a_metric"), vec![1, 2]);
    }
}

//! The service catalog.
//!
//! Three headline services mirror Fig. 1 of the paper (a communication and
//! collaboration workload): Service A peaks between 10 am and noon; Services
//! B and C spike for five minutes at the top/bottom of each hour. The
//! background catalog populates racks with the ">100 distinct power-hungry
//! services" (§III-Q2) whose statistical multiplexing makes rack power
//! predictable.

use crate::shape::LoadShape;
use serde::{Deserialize, Serialize};

/// A named service profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Service name.
    pub name: String,
    /// Deterministic base load shape.
    pub shape: LoadShape,
    /// Multiplicative noise sigma applied per sample by the generator.
    pub noise_sigma: f64,
    /// Whether this service's owners request overclocking during peaks.
    pub wants_overclock: bool,
}

impl ServiceProfile {
    /// Build a profile.
    ///
    /// # Panics
    /// Panics if `noise_sigma` is negative.
    pub fn new(
        name: impl Into<String>,
        shape: LoadShape,
        noise_sigma: f64,
        wants_overclock: bool,
    ) -> ServiceProfile {
        assert!(noise_sigma >= 0.0, "noise sigma must be non-negative");
        ServiceProfile {
            name: name.into(),
            shape,
            noise_sigma,
            wants_overclock,
        }
    }
}

/// Service A: morning-peak collaboration service, "10 am to noon" (Fig. 1).
pub fn service_a() -> ServiceProfile {
    ServiceProfile::new(
        "ServiceA",
        LoadShape::Diurnal {
            base: 0.18,
            peak: 0.85,
            peak_start_hour: 10.0,
            peak_end_hour: 12.0,
            weekend_scale: 0.35,
        },
        0.04,
        true,
    )
}

/// Service B: top/bottom-of-the-hour conferencing spikes (Fig. 1).
pub fn service_b() -> ServiceProfile {
    ServiceProfile::new(
        "ServiceB",
        LoadShape::Composite {
            parts: vec![
                (
                    1.0,
                    LoadShape::HourlySpike {
                        base: 0.15,
                        peak: 0.9,
                        spike_minutes: 5.0,
                        at_top: true,
                        at_bottom: true,
                        weekend_scale: 0.4,
                    },
                ),
                (
                    0.25,
                    LoadShape::Diurnal {
                        base: 0.0,
                        peak: 0.4,
                        peak_start_hour: 9.0,
                        peak_end_hour: 17.0,
                        weekend_scale: 0.4,
                    },
                ),
            ],
        },
        0.05,
        true,
    )
}

/// Service C: top/bottom-of-hour spikes whose height follows the working
/// day (Fig. 1; Fig. 17 plots its varying 5-minute peaks).
pub fn service_c() -> ServiceProfile {
    ServiceProfile::new(
        "ServiceC",
        LoadShape::Composite {
            parts: vec![
                (
                    1.0,
                    LoadShape::HourlySpike {
                        base: 0.05,
                        peak: 0.60,
                        spike_minutes: 5.0,
                        at_top: true,
                        at_bottom: true,
                        weekend_scale: 0.35,
                    },
                ),
                (
                    1.0,
                    LoadShape::Diurnal {
                        base: 0.0,
                        peak: 0.35,
                        peak_start_hour: 8.0,
                        peak_end_hour: 18.0,
                        weekend_scale: 0.35,
                    },
                ),
            ],
        },
        0.05,
        true,
    )
}

/// The background-service catalog: a population of heterogeneous profiles
/// used to fill multi-tenant racks. Index `i` deterministically selects a
/// profile; the population cycles after [`background_catalog_len`] entries.
pub fn background_service(i: usize) -> ServiceProfile {
    let variants: Vec<ServiceProfile> = vec![
        ServiceProfile::new(
            "web-frontend",
            LoadShape::office_hours(0.15, 0.7, 9.0, 18.0),
            0.05,
            false,
        ),
        ServiceProfile::new(
            "batch-analytics",
            LoadShape::Diurnal {
                base: 0.6,
                peak: 0.85,
                peak_start_hour: 22.0,
                peak_end_hour: 4.0,
                weekend_scale: 1.0,
            },
            0.03,
            false,
        ),
        ServiceProfile::new(
            "ml-training",
            LoadShape::Constant { level: 0.82 },
            0.02,
            false,
        ),
        ServiceProfile::new(
            "search-index",
            LoadShape::office_hours(0.25, 0.6, 8.0, 20.0),
            0.06,
            false,
        ),
        ServiceProfile::new(
            "video-stream",
            LoadShape::Diurnal {
                base: 0.2,
                peak: 0.75,
                peak_start_hour: 18.0,
                peak_end_hour: 23.0,
                weekend_scale: 1.2,
            },
            0.05,
            false,
        ),
        ServiceProfile::new(
            "kv-store",
            LoadShape::office_hours(0.3, 0.55, 7.0, 22.0),
            0.04,
            false,
        ),
        ServiceProfile::new(
            "report-gen",
            LoadShape::HourlySpike {
                base: 0.1,
                peak: 0.6,
                spike_minutes: 10.0,
                at_top: true,
                at_bottom: false,
                weekend_scale: 0.2,
            },
            0.05,
            false,
        ),
        ServiceProfile::new(
            "ci-runners",
            LoadShape::office_hours(0.1, 0.65, 8.0, 19.0),
            0.09,
            false,
        ),
        ServiceProfile::new("low-idle", LoadShape::Constant { level: 0.12 }, 0.03, false),
        ServiceProfile::new(
            "apac-frontend",
            LoadShape::Diurnal {
                base: 0.15,
                peak: 0.7,
                peak_start_hour: 1.0,
                peak_end_hour: 9.0,
                weekend_scale: 0.5,
            },
            0.05,
            false,
        ),
    ];
    variants[i % variants.len()].clone()
}

/// Number of distinct background profiles before the catalog repeats.
pub fn background_catalog_len() -> usize {
    10
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::{SimDuration, SimTime};

    #[test]
    fn service_a_peaks_mid_morning() {
        let p = service_a();
        let t_peak = SimTime::ZERO + SimDuration::from_days(1) + SimDuration::from_hours(11);
        let t_night = SimTime::ZERO + SimDuration::from_days(1) + SimDuration::from_hours(3);
        assert!(p.shape.utilization(t_peak) > 0.8);
        assert!(p.shape.utilization(t_night) < 0.25);
    }

    #[test]
    fn services_b_c_spike_on_the_hour() {
        for p in [service_b(), service_c()] {
            let on_hour = SimTime::ZERO + SimDuration::from_days(1) + SimDuration::from_hours(14);
            let off_peak = on_hour + SimDuration::from_minutes(15);
            assert!(
                p.shape.utilization(on_hour) > 2.0 * p.shape.utilization(off_peak),
                "{} should spike at the top of the hour",
                p.name
            );
        }
    }

    #[test]
    fn headline_services_want_overclock() {
        assert!(service_a().wants_overclock);
        assert!(service_b().wants_overclock);
        assert!(service_c().wants_overclock);
    }

    #[test]
    fn background_catalog_cycles_deterministically() {
        let a = background_service(3);
        let b = background_service(3 + background_catalog_len());
        assert_eq!(a, b);
        // Distinct entries differ.
        assert_ne!(background_service(0).name, background_service(1).name);
    }

    #[test]
    fn background_services_do_not_overclock() {
        for i in 0..background_catalog_len() {
            assert!(!background_service(i).wants_overclock);
        }
    }

    #[test]
    fn catalog_has_heterogeneous_peak_times() {
        // At 3am, night-batch services are busy while office services are not —
        // the heterogeneity that creates statistical multiplexing (§III-Q2).
        let night = SimTime::ZERO + SimDuration::from_days(1) + SimDuration::from_hours(3);
        let batch = background_service(1); // batch-analytics
        let office = background_service(0); // web-frontend
        assert!(batch.shape.utilization(night) > 0.5);
        assert!(office.shape.utilization(night) < 0.3);
    }
}

//! The synthetic fleet generator.
//!
//! Generates per-server CPU-utilization and baseline power traces with the
//! statistical structure the paper's analysis depends on:
//!
//! * **Multi-tenancy** — "Each server hosts many small VMs (2-8 cores)"
//!   belonging to different services with different peak times (§III-Q2).
//! * **Diurnal repeatability** — "due to statistical multiplexing, the
//!   combined power consumption of the rack with heterogeneous services shows
//!   a repeatable pattern" (§III-Q3), perturbed by per-sample noise and
//!   occasional outlier days (holidays) that stress the *Weekly* template.
//! * **Server heterogeneity** — servers in the same rack differ by tens of
//!   percent and the power-dominant server changes over time (§III-Q4,
//!   Fig. 9).
//! * **Oversubscribed limits** — rack limits are provisioned below the sum
//!   of server peaks (§II), drawn per rack so the fleet reproduces the
//!   utilization spread of Fig. 5.

use crate::fleet::{CpuGeneration, FleetTrace, RackTrace, ServerTrace};
use crate::services::{background_service, service_a, service_b, service_c, ServiceProfile};
use serde::{Deserialize, Serialize};
use simcore::rng::Pcg32;
use simcore::series::TimeSeries;
use simcore::time::{SimDuration, SimTime};
use soc_power::model::PowerModel;
use soc_power::units::Watts;

/// Configuration for fleet generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Region label.
    pub region: String,
    /// Number of racks to generate.
    pub racks: usize,
    /// Minimum servers per rack (inclusive). Paper: "each rack has 24-32
    /// servers".
    pub servers_per_rack_min: usize,
    /// Maximum servers per rack (inclusive).
    pub servers_per_rack_max: usize,
    /// Trace span.
    pub span: SimDuration,
    /// Sampling step (paper: 5 minutes).
    pub step: SimDuration,
    /// Fraction of VM cores belonging to overclock-requesting services
    /// (paper: "45% of deployed cores" for the first-party customer).
    pub oc_core_fraction: f64,
    /// Nameplate oversubscription range `(lo, hi)`: the rack limit is the
    /// servers' combined full-load (nameplate) power divided by a ratio
    /// drawn uniformly from this range — how providers actually size rack
    /// budgets (§II). The default range reproduces the Fig. 5 spread
    /// (paper: 50 %/90 % of racks have P99 utilization below 0.73/0.89).
    pub oversubscription: (f64, f64),
    /// Probability that any given day is an outlier (holiday) for a rack,
    /// scaling that day's utilization down.
    pub outlier_day_prob: f64,
    /// Fraction of racks with Intel-generation servers (§V-B: datacenters
    /// hold "servers with either Intel or AMD CPUs").
    pub intel_fraction: f64,
    /// Weekly probability that a VM is retired and replaced by a fresh VM of
    /// a (possibly different) service — the "dynamicity of cloud platforms
    /// (e.g., VM churn)" the paper's dataset reflects (§III-Q3). Long-lived
    /// VMs dominate in production ("long-lived VMs account for >95% of
    /// allocated resources"), so the default is low.
    pub vm_churn_weekly: f64,
    /// Whether to retain per-server series (memory heavy for large fleets).
    pub keep_server_series: bool,
}

impl FleetConfig {
    /// A small config suitable for unit tests: 2 racks, 1 week, 15-minute
    /// sampling.
    pub fn small_test() -> FleetConfig {
        FleetConfig {
            region: "test".into(),
            racks: 2,
            servers_per_rack_min: 4,
            servers_per_rack_max: 6,
            span: SimDuration::WEEK,
            step: SimDuration::from_minutes(15),
            oc_core_fraction: 0.45,
            oversubscription: (1.30, 1.80),
            outlier_day_prob: 0.05,
            intel_fraction: 0.4,
            vm_churn_weekly: 0.05,
            keep_server_series: true,
        }
    }

    /// The paper-shaped config: 24-32 servers per rack, 5-minute sampling,
    /// six weeks. Rack count is a parameter because the experiments scale it.
    pub fn paper_reference(racks: usize) -> FleetConfig {
        FleetConfig {
            region: "region-1".into(),
            racks,
            servers_per_rack_min: 24,
            servers_per_rack_max: 32,
            span: SimDuration::WEEK * 6,
            step: SimDuration::from_minutes(5),
            oc_core_fraction: 0.45,
            oversubscription: (1.30, 1.80),
            outlier_day_prob: 0.04,
            intel_fraction: 0.4,
            vm_churn_weekly: 0.05,
            keep_server_series: false,
        }
    }

    fn validate(&self) {
        assert!(self.racks > 0, "need at least one rack");
        assert!(
            self.servers_per_rack_min >= 1
                && self.servers_per_rack_min <= self.servers_per_rack_max,
            "invalid servers-per-rack range"
        );
        assert!(
            !self.span.is_zero() && !self.step.is_zero(),
            "span and step must be non-zero"
        );
        assert!(
            (0.0..=1.0).contains(&self.oc_core_fraction),
            "oc core fraction must be in [0, 1]"
        );
        assert!(
            self.oversubscription.0 >= 1.0 && self.oversubscription.0 <= self.oversubscription.1,
            "invalid oversubscription range"
        );
        assert!(
            (0.0..=1.0).contains(&self.outlier_day_prob),
            "outlier probability must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.vm_churn_weekly),
            "churn probability must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.intel_fraction),
            "intel fraction must be in [0, 1]"
        );
    }
}

/// One VM placed on a generated server.
#[derive(Debug, Clone)]
struct VmSpec {
    cores: usize,
    profile: ServiceProfile,
    /// Per-VM load multiplier (instances of the same service differ).
    load_scale: f64,
    /// Phase offset applied to the shape (minutes) — different tenants of the
    /// same service are not perfectly synchronized.
    phase: SimDuration,
    /// Trigger utilization above which this VM requests overclocking.
    oc_trigger: f64,
    /// When this VM is retired and replaced (churn), if ever.
    replaced_at: Option<SimTime>,
    /// The replacement VM's behaviour after churn (boxed to keep the spec
    /// small; at most one replacement per slot per trace).
    replacement: Option<Box<VmSpec>>,
}

/// Deterministic synthetic trace generator.
///
/// ```
/// use soc_traces::gen::{FleetConfig, TraceGenerator};
///
/// let fleet = TraceGenerator::new(42).generate(&FleetConfig::small_test());
/// assert_eq!(fleet.racks.len(), 2);
/// let rack = &fleet.racks[0];
/// assert!(rack.mean_utilization() > 0.2 && rack.mean_utilization() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    seed: u64,
    model: PowerModel,
}

impl TraceGenerator {
    /// Create a generator with the reference server power model (used for
    /// AMD-generation racks; Intel racks use
    /// [`PowerModel::intel_reference_server`]).
    pub fn new(seed: u64) -> TraceGenerator {
        TraceGenerator {
            seed,
            model: PowerModel::reference_server(),
        }
    }

    /// Create a generator with a custom power model for AMD-generation
    /// racks.
    pub fn with_model(seed: u64, model: PowerModel) -> TraceGenerator {
        TraceGenerator { seed, model }
    }

    /// The power model AMD-generation servers are generated with.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The power model used for racks of the given generation.
    pub fn model_for(&self, generation: CpuGeneration) -> PowerModel {
        match generation {
            CpuGeneration::Amd => self.model,
            CpuGeneration::Intel => PowerModel::intel_reference_server(),
        }
    }

    /// Generate a whole fleet.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn generate(&self, config: &FleetConfig) -> FleetTrace {
        config.validate();
        let mut rng = Pcg32::new(self.seed, region_stream(&config.region));
        let racks = (0..config.racks)
            .map(|rack_idx| self.generate_rack_inner(config, rack_idx, &mut rng))
            .collect();
        FleetTrace {
            region: config.region.clone(),
            racks,
        }
    }

    /// Generate a single rack (rack `rack_idx` of the fleet `config`
    /// describes). Deterministic: the same `(seed, region, rack_idx)` always
    /// produces the same rack regardless of which other racks are generated.
    pub fn generate_rack(&self, config: &FleetConfig, rack_idx: usize) -> RackTrace {
        config.validate();
        let mut rng = Pcg32::new(
            self.seed ^ (rack_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            region_stream(&config.region),
        );
        self.generate_rack_inner(config, rack_idx, &mut rng)
    }

    fn generate_rack_inner(
        &self,
        config: &FleetConfig,
        rack_idx: usize,
        rng: &mut Pcg32,
    ) -> RackTrace {
        let mut rack_rng = rng.fork(rack_idx as u64 + 1);
        let generation = if rack_rng.gen_bool(config.intel_fraction) {
            CpuGeneration::Intel
        } else {
            CpuGeneration::Amd
        };
        let model = self.model_for(generation);
        let n_servers = rack_rng.gen_range_u64(
            config.servers_per_rack_min as u64,
            config.servers_per_rack_max as u64 + 1,
        ) as usize;

        // Pick this rack's outlier (holiday) days up front.
        let days = (config.span.as_days_f64().ceil() as u64).max(1);
        let outlier_days: Vec<bool> = (0..days)
            .map(|_| rack_rng.gen_bool(config.outlier_day_prob))
            .collect();

        let mut server_traces = Vec::with_capacity(n_servers);
        let mut rack_power: Option<Vec<f64>> = None;
        let mut peak_sum = Watts::ZERO;

        for server_idx in 0..n_servers {
            let mut srv_rng = rack_rng.fork(server_idx as u64 + 101);
            let vms = self.place_vms(&model, config, &mut srv_rng);
            let (util, power, oc_cores) =
                self.simulate_server(&model, config, &vms, &outlier_days, &mut srv_rng);

            peak_sum += Watts::new(power.max());
            match &mut rack_power {
                None => rack_power = Some(power.values().to_vec()),
                Some(acc) => {
                    for (a, p) in acc.iter_mut().zip(power.values()) {
                        *a += p;
                    }
                }
            }
            if config.keep_server_series {
                server_traces.push(ServerTrace {
                    index: server_idx,
                    utilization: util,
                    power,
                    oc_demand_cores: oc_cores,
                });
            }
        }

        let oversub = rack_rng.gen_range_f64(config.oversubscription.0, config.oversubscription.1);
        let power = TimeSeries::from_values(
            SimTime::ZERO,
            config.step,
            rack_power.expect("rack has at least one server"),
        );
        // The limit is the nameplate (full-load) capacity divided by the
        // oversubscription ratio, floored a hair above the observed baseline
        // peak: the baseline (non-overclocked) rack never caps on its own —
        // in the paper capping only appears once overclocking is added
        // (Fig. 6).
        let nameplate = model.server_power_uniform(1.0, model.plan().turbo()) * n_servers as f64;
        let limit = (nameplate / oversub).max(Watts::new(power.max() * 1.02));
        let _ = peak_sum;
        RackTrace {
            index: rack_idx,
            generation,
            limit,
            power,
            servers: server_traces,
        }
    }

    /// Fill a server with VMs (2-8 cores each) up to 55-95 % of its cores.
    fn place_vms(&self, model: &PowerModel, config: &FleetConfig, rng: &mut Pcg32) -> Vec<VmSpec> {
        let total_cores = model.cores();
        let fill_target = (total_cores as f64 * rng.gen_range_f64(0.55, 0.95)) as usize;
        let mut allocated = 0;
        let mut vms = Vec::new();
        while allocated < fill_target {
            let cores = rng.gen_range_u64(2, 9) as usize;
            let cores = cores.min(total_cores - allocated);
            let wants_oc = rng.gen_bool(config.oc_core_fraction);
            let profile = if wants_oc {
                match rng.gen_index(3) {
                    0 => service_a(),
                    1 => service_b(),
                    _ => service_c(),
                }
            } else {
                background_service(rng.gen_index(crate::services::background_catalog_len()))
            };
            let spec = self.make_vm(config, cores, profile, rng);
            vms.push(spec);
            allocated += cores;
        }
        vms
    }

    fn make_vm(
        &self,
        config: &FleetConfig,
        cores: usize,
        profile: ServiceProfile,
        rng: &mut Pcg32,
    ) -> VmSpec {
        let peak = profile.shape.weekday_peak().max(1e-6);
        let load_scale = rng.gen_range_f64(0.55, 1.15);
        // VM churn: with the configured weekly probability, this VM is
        // retired at a uniformly random instant and replaced by a fresh VM
        // running a background service.
        let weeks = config.span.as_days_f64() / 7.0;
        let churns = rng.gen_bool(1.0 - (1.0 - config.vm_churn_weekly).powf(weeks));
        let (replaced_at, replacement) = if churns {
            let at = SimTime::from_micros(rng.gen_range_u64(1, config.span.as_micros().max(2)));
            let new_profile =
                background_service(rng.gen_index(crate::services::background_catalog_len()));
            let new_peak = new_profile.shape.weekday_peak().max(1e-6);
            let new_scale = rng.gen_range_f64(0.55, 1.15);
            let repl = VmSpec {
                cores,
                oc_trigger: 0.75 * new_peak * new_scale.min(1.0),
                profile: new_profile,
                load_scale: new_scale,
                phase: SimDuration::from_minutes(rng.gen_range_u64(0, 30)),
                replaced_at: None,
                replacement: None,
            };
            (Some(at), Some(Box::new(repl)))
        } else {
            (None, None)
        };
        VmSpec {
            cores,
            // Request overclocking once above ~75% of this VM's own peak
            // (trigger thresholds are tuned per deployment, §IV-A).
            oc_trigger: 0.75 * peak * load_scale.min(1.0),
            profile,
            load_scale,
            phase: SimDuration::from_minutes(rng.gen_range_u64(0, 30)),
            replaced_at,
            replacement,
        }
    }

    fn simulate_server(
        &self,
        model: &PowerModel,
        config: &FleetConfig,
        vms: &[VmSpec],
        outlier_days: &[bool],
        rng: &mut Pcg32,
    ) -> (TimeSeries, TimeSeries, TimeSeries) {
        let total_cores = model.cores() as f64;
        let turbo = model.plan().turbo();
        let end = SimTime::ZERO + config.span;
        let mut util = TimeSeries::new(SimTime::ZERO, config.step);
        let mut power = TimeSeries::new(SimTime::ZERO, config.step);
        let mut oc_cores = TimeSeries::new(SimTime::ZERO, config.step);

        for t in simcore::time::ticks(SimTime::ZERO, end, config.step) {
            let day = t.day_index() as usize;
            let outlier_scale = if outlier_days.get(day).copied().unwrap_or(false) {
                0.5
            } else {
                1.0
            };
            let mut busy_cores = 0.0;
            let mut oc_demand = 0.0;
            for slot in vms {
                let vm: &VmSpec = match (slot.replaced_at, &slot.replacement) {
                    (Some(at), Some(repl)) if t >= at => repl,
                    _ => slot,
                };
                let base = vm.profile.shape.utilization(t + vm.phase);
                let noise = 1.0 + vm.profile.noise_sigma * rng.sample_standard_normal();
                let u = (base * vm.load_scale * noise * outlier_scale).clamp(0.0, 1.0);
                busy_cores += u * vm.cores as f64;
                if vm.profile.wants_overclock && u >= vm.oc_trigger {
                    oc_demand += vm.cores as f64;
                }
            }
            let server_util = (busy_cores / total_cores).clamp(0.0, 1.0);
            util.push(server_util);
            power.push(model.server_power_uniform(server_util, turbo).get());
            oc_cores.push(oc_demand);
        }
        (util, power, oc_cores)
    }
}

fn region_stream(region: &str) -> u64 {
    // FNV-1a over the region name: regions get independent RNG streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in region.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::stats::rmse;

    fn small_fleet(seed: u64) -> FleetTrace {
        TraceGenerator::new(seed).generate(&FleetConfig::small_test())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_fleet(7);
        let b = small_fleet(7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_fleet(1);
        let b = small_fleet(2);
        assert_ne!(a.racks[0].power.values(), b.racks[0].power.values());
    }

    #[test]
    fn rack_power_is_sum_of_servers() {
        let fleet = small_fleet(3);
        let rack = &fleet.racks[0];
        let sum: Vec<f64> = (0..rack.power.len())
            .map(|i| rack.servers.iter().map(|s| s.power.values()[i]).sum())
            .collect();
        for (a, b) in rack.power.values().iter().zip(&sum) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn limits_are_oversubscribed_but_never_cap_baseline() {
        let fleet = small_fleet(4);
        let model = soc_power::model::PowerModel::reference_server();
        for rack in &fleet.racks {
            // The baseline never exceeds the limit.
            assert!(rack.power.max() <= rack.limit.get() + 1e-6);
            // The limit never exceeds the nameplate of the rack (otherwise
            // there would be no oversubscription at all).
            let nameplate = model.server_power_uniform(1.0, model.plan().turbo()).get()
                * rack.servers.len() as f64;
            assert!(
                rack.limit.get() <= nameplate / 1.30 + 1e-6
                    || (rack.limit.get() - rack.power.max() * 1.02).abs() < 1e-6,
                "limit {} vs nameplate {nameplate}",
                rack.limit.get()
            );
        }
    }

    #[test]
    fn utilizations_are_plausible() {
        let fleet = small_fleet(5);
        for rack in &fleet.racks {
            let mean = rack.mean_utilization();
            assert!(mean > 0.2 && mean < 1.0, "rack mean utilization {mean}");
            for s in &rack.servers {
                let u = s.utilization.mean();
                assert!(u > 0.0 && u < 1.0, "server mean utilization {u}");
            }
        }
    }

    #[test]
    fn some_servers_request_overclocking() {
        let fleet = small_fleet(6);
        let wanting: usize = fleet
            .racks
            .iter()
            .flat_map(|r| &r.servers)
            .filter(|s| s.wants_overclock())
            .count();
        assert!(wanting > 0, "no server ever requested overclocking");
    }

    #[test]
    fn weekday_pattern_repeats() {
        // The same weekday a week apart should look similar (modulo noise) —
        // the predictability the paper's Q3 establishes.
        let mut cfg = FleetConfig::small_test();
        cfg.span = SimDuration::WEEK * 2;
        cfg.outlier_day_prob = 0.0;
        let fleet = TraceGenerator::new(11).generate(&cfg);
        let rack = &fleet.racks[0];
        let samples_per_week = (SimDuration::WEEK.as_micros() / cfg.step.as_micros()) as usize;
        let week1 = &rack.power.values()[..samples_per_week];
        let week2 = &rack.power.values()[samples_per_week..2 * samples_per_week];
        let err = rmse(week1, week2);
        let mean_power = rack.power.mean();
        assert!(
            err / mean_power < 0.12,
            "week-over-week RMSE {err:.1}W is too large vs mean {mean_power:.1}W"
        );
    }

    #[test]
    fn servers_within_rack_are_heterogeneous() {
        // Fig. 9: servers in a rack differ substantially in power.
        let fleet = small_fleet(12);
        let rack = &fleet.racks[0];
        let means: Vec<f64> = rack.servers.iter().map(|s| s.power.mean()).collect();
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max / min > 1.05,
            "servers too homogeneous: {min:.1}..{max:.1}"
        );
    }

    #[test]
    fn generate_rack_matches_fleet_shape() {
        let cfg = FleetConfig::small_test();
        let generator = TraceGenerator::new(9);
        let rack = generator.generate_rack(&cfg, 0);
        assert_eq!(rack.index, 0);
        assert!(!rack.power.is_empty());
        assert!(rack.limit.get() > 0.0);
    }

    #[test]
    fn fleet_mixes_cpu_generations() {
        use crate::fleet::CpuGeneration;
        let mut cfg = FleetConfig::small_test();
        cfg.racks = 12;
        let fleet = TraceGenerator::new(21).generate(&cfg);
        let intel = fleet
            .racks
            .iter()
            .filter(|r| r.generation == CpuGeneration::Intel)
            .count();
        assert!(intel > 0, "some racks should be Intel");
        assert!(intel < fleet.racks.len(), "some racks should be AMD");
    }

    #[test]
    fn dropping_server_series_keeps_rack_power() {
        let mut cfg = FleetConfig::small_test();
        cfg.keep_server_series = false;
        let fleet = TraceGenerator::new(13).generate(&cfg);
        assert!(fleet.racks[0].servers.is_empty());
        assert!(!fleet.racks[0].power.is_empty());
    }

    #[test]
    #[should_panic(expected = "need at least one rack")]
    fn rejects_empty_config() {
        let mut cfg = FleetConfig::small_test();
        cfg.racks = 0;
        let _ = TraceGenerator::new(1).generate(&cfg);
    }
}

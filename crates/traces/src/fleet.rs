//! Trace containers: server, rack, and fleet.
//!
//! Mirrors the data the paper collects in production: "The traces include
//! rack and server power, and VM-level CPU utilization. All data is collected
//! for 6 weeks, at a 5-minute granularity" (§V-B).

use serde::{Deserialize, Serialize};
use simcore::series::TimeSeries;
use simcore::stats::Ecdf;
use soc_power::model::PowerModel;
use soc_power::units::Watts;

/// CPU generation of a rack's servers (the §V-B fleets mix Intel and AMD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuGeneration {
    /// AMD-generation servers (the paper's cluster hardware).
    Amd,
    /// Intel-generation servers.
    Intel,
}

impl CpuGeneration {
    /// The power model for this generation.
    pub fn power_model(self) -> PowerModel {
        match self {
            CpuGeneration::Amd => PowerModel::reference_server(),
            CpuGeneration::Intel => PowerModel::intel_reference_server(),
        }
    }
}

impl std::fmt::Display for CpuGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CpuGeneration::Amd => "AMD",
            CpuGeneration::Intel => "Intel",
        })
    }
}

/// Telemetry for one server over the trace span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerTrace {
    /// Server index within its rack.
    pub index: usize,
    /// Mean CPU utilization per sample, in `[0, 1]`.
    pub utilization: TimeSeries,
    /// Baseline (non-overclocked) power draw per sample, watts.
    pub power: TimeSeries,
    /// Number of cores requesting overclocking per sample.
    pub oc_demand_cores: TimeSeries,
}

/// Borrowed raw-sample view of one server's trace, for columnar consumers.
///
/// All three slices are aligned: built by [`ServerTrace::view`], they share
/// the trace's start, step, and length, so one slot index (computed once per
/// simulation step via `TimeSeries::index_at`) addresses all of them.
#[derive(Debug, Clone, Copy)]
pub struct ServerSeriesView<'a> {
    /// Mean CPU utilization samples, in `[0, 1]`.
    pub utilization: &'a [f64],
    /// Baseline power samples, watts.
    pub power: &'a [f64],
    /// Overclock-demanding core counts per sample.
    pub oc_demand_cores: &'a [f64],
}

impl ServerTrace {
    /// Borrowed raw-sample slices of all three per-server series.
    pub fn view(&self) -> ServerSeriesView<'_> {
        ServerSeriesView {
            utilization: self.utilization.values(),
            power: self.power.values(),
            oc_demand_cores: self.oc_demand_cores.values(),
        }
    }

    /// Peak baseline power over the span.
    ///
    /// # Panics
    /// Panics if the trace is empty.
    pub fn peak_power(&self) -> Watts {
        Watts::new(self.power.max())
    }

    /// Mean baseline power over the span.
    ///
    /// # Panics
    /// Panics if the trace is empty.
    pub fn mean_power(&self) -> Watts {
        Watts::new(self.power.mean())
    }

    /// Whether the server ever requests overclocking.
    pub fn wants_overclock(&self) -> bool {
        !self.oc_demand_cores.is_empty() && self.oc_demand_cores.max() > 0.0
    }
}

/// Telemetry for one rack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackTrace {
    /// Rack index within the fleet.
    pub index: usize,
    /// CPU generation of the rack's servers.
    pub generation: CpuGeneration,
    /// Provisioned rack power limit.
    pub limit: Watts,
    /// Aggregate baseline rack power per sample, watts.
    pub power: TimeSeries,
    /// Per-server traces (may be empty when the generator was asked to keep
    /// only rack-level aggregates to bound memory).
    pub servers: Vec<ServerTrace>,
}

impl RackTrace {
    /// Rack power utilization series (power / limit).
    pub fn utilization(&self) -> TimeSeries {
        let limit = self.limit.get();
        self.power.map(|p| p / limit)
    }

    /// Mean power utilization.
    ///
    /// # Panics
    /// Panics if the trace is empty.
    pub fn mean_utilization(&self) -> f64 {
        self.power.mean() / self.limit.get()
    }

    /// Percentile of power utilization.
    ///
    /// # Panics
    /// Panics if the trace is empty or `p` outside `[0, 100]`.
    pub fn utilization_percentile(&self, p: f64) -> f64 {
        self.power.percentile(p) / self.limit.get()
    }

    /// Headroom series: limit minus draw (clamped at zero).
    pub fn headroom(&self) -> TimeSeries {
        let limit = self.limit.get();
        self.power.map(|p| (limit - p).max(0.0))
    }

    /// Fraction of samples where draw is below `fraction` of the limit.
    ///
    /// # Panics
    /// Panics if the trace is empty.
    pub fn fraction_below(&self, fraction: f64) -> f64 {
        let threshold = self.limit.get() * fraction;
        let below = self
            .power
            .values()
            .iter()
            .filter(|&&p| p < threshold)
            .count();
        below as f64 / self.power.len() as f64
    }
}

/// A complete fleet trace: many racks, one region tag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTrace {
    /// Region label (for Fig. 5 / Fig. 8 style multi-region comparisons).
    pub region: String,
    /// All racks.
    pub racks: Vec<RackTrace>,
}

impl FleetTrace {
    /// ECDF of per-rack *mean* power utilization (Fig. 5 "Average").
    ///
    /// # Panics
    /// Panics if the fleet is empty.
    pub fn mean_utilization_cdf(&self) -> Ecdf {
        assert!(!self.racks.is_empty(), "empty fleet");
        Ecdf::from_samples(
            &self
                .racks
                .iter()
                .map(RackTrace::mean_utilization)
                .collect::<Vec<_>>(),
        )
    }

    /// ECDF of per-rack utilization percentile `p` (Fig. 5 "P50"/"P99").
    ///
    /// # Panics
    /// Panics if the fleet is empty.
    pub fn utilization_percentile_cdf(&self, p: f64) -> Ecdf {
        assert!(!self.racks.is_empty(), "empty fleet");
        Ecdf::from_samples(
            &self
                .racks
                .iter()
                .map(|r| r.utilization_percentile(p))
                .collect::<Vec<_>>(),
        )
    }

    /// Total number of servers with retained per-server traces.
    pub fn server_count(&self) -> usize {
        self.racks.iter().map(|r| r.servers.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::{SimDuration, SimTime};

    fn series(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(SimTime::ZERO, SimDuration::from_minutes(5), values)
    }

    fn rack() -> RackTrace {
        RackTrace {
            index: 0,
            generation: CpuGeneration::Amd,
            limit: Watts::new(1000.0),
            power: series(vec![500.0, 700.0, 900.0, 600.0]),
            servers: Vec::new(),
        }
    }

    #[test]
    fn utilization_divides_by_limit() {
        let r = rack();
        assert_eq!(r.utilization().values(), &[0.5, 0.7, 0.9, 0.6]);
        assert!((r.mean_utilization() - 0.675).abs() < 1e-12);
    }

    #[test]
    fn headroom_and_fraction_below() {
        let r = rack();
        assert_eq!(r.headroom().values(), &[500.0, 300.0, 100.0, 400.0]);
        assert_eq!(r.fraction_below(0.8), 0.75);
        assert_eq!(r.fraction_below(0.2), 0.0);
    }

    #[test]
    fn server_trace_helpers() {
        let s = ServerTrace {
            index: 0,
            utilization: series(vec![0.2, 0.4]),
            power: series(vec![150.0, 250.0]),
            oc_demand_cores: series(vec![0.0, 8.0]),
        };
        assert_eq!(s.peak_power(), Watts::new(250.0));
        assert_eq!(s.mean_power(), Watts::new(200.0));
        assert!(s.wants_overclock());
    }

    #[test]
    fn fleet_cdfs() {
        let mut r1 = rack();
        r1.index = 0;
        let mut r2 = rack();
        r2.index = 1;
        r2.power = series(vec![100.0, 100.0, 100.0, 100.0]);
        let fleet = FleetTrace {
            region: "test".into(),
            racks: vec![r1, r2],
        };
        let cdf = fleet.mean_utilization_cdf();
        assert_eq!(cdf.len(), 2);
        // Rack 2 has mean utilization 0.1.
        assert_eq!(cdf.quantile(0.0), 0.1);
        let p99_cdf = fleet.utilization_percentile_cdf(99.0);
        assert!(p99_cdf.quantile(1.0) <= 0.9 + 1e-9);
    }
}

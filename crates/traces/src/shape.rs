//! Parametric load shapes.
//!
//! A [`LoadShape`] maps a simulated instant to a deterministic *base*
//! utilization in `[0, 1]`; the trace generator adds noise and outlier days
//! on top. The variants cover the patterns the paper describes:
//!
//! * [`LoadShape::Diurnal`] — a daily plateau such as Service A's
//!   "10 am to noon" peak (Fig. 1), with optional weekend attenuation.
//! * [`LoadShape::HourlySpike`] — "5 minutes at the top and bottom of the
//!   hour" load, like Services B and C (Fig. 1).
//! * [`LoadShape::Constant`] — throughput-oriented batch load (MLTrain).
//! * [`LoadShape::Composite`] — weighted mixture of shapes, used when one
//!   VM's activity blends several patterns.

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};

/// A deterministic utilization pattern over simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadShape {
    /// Daily plateau between `peak_start_hour` and `peak_end_hour` (fractional
    /// hours, local time), with smooth half-hour ramps on each side.
    Diurnal {
        /// Utilization away from the peak window.
        base: f64,
        /// Utilization at the top of the plateau.
        peak: f64,
        /// Peak window start, in hours from midnight.
        peak_start_hour: f64,
        /// Peak window end, in hours from midnight.
        peak_end_hour: f64,
        /// Multiplier applied on weekends (1.0 = no weekend effect).
        weekend_scale: f64,
    },
    /// Short spikes at fixed offsets within each hour.
    HourlySpike {
        /// Utilization between spikes.
        base: f64,
        /// Utilization during a spike.
        peak: f64,
        /// Spike length in minutes.
        spike_minutes: f64,
        /// Whether a spike fires at the top of the hour (minute 0).
        at_top: bool,
        /// Whether a spike fires at the bottom of the hour (minute 30).
        at_bottom: bool,
        /// Multiplier applied on weekends.
        weekend_scale: f64,
    },
    /// Constant utilization (batch/ML training).
    Constant {
        /// The constant level.
        level: f64,
    },
    /// Weighted mixture of other shapes (weights need not sum to 1; the
    /// result is clamped to `[0, 1]`).
    Composite {
        /// `(weight, shape)` pairs.
        parts: Vec<(f64, LoadShape)>,
    },
}

impl LoadShape {
    /// Base utilization at instant `t`, in `[0, 1]`.
    pub fn utilization(&self, t: SimTime) -> f64 {
        match self {
            LoadShape::Diurnal {
                base,
                peak,
                peak_start_hour,
                peak_end_hour,
                weekend_scale,
            } => {
                let h = t.time_of_day().as_hours_f64();
                let ramp = 0.5; // half-hour ramps
                let level = plateau(h, *peak_start_hour, *peak_end_hour, ramp);
                let u = base + (peak - base) * level;
                scale_weekend(u, t, *weekend_scale)
            }
            LoadShape::HourlySpike {
                base,
                peak,
                spike_minutes,
                at_top,
                at_bottom,
                weekend_scale,
            } => {
                let minute_in_hour = (t.time_of_day().as_micros() % SimDuration::HOUR.as_micros())
                    as f64
                    / SimDuration::MINUTE.as_micros() as f64;
                let in_top = *at_top && minute_in_hour < *spike_minutes;
                let in_bottom =
                    *at_bottom && minute_in_hour >= 30.0 && minute_in_hour < 30.0 + *spike_minutes;
                let u = if in_top || in_bottom { *peak } else { *base };
                scale_weekend(u, t, *weekend_scale)
            }
            LoadShape::Constant { level } => level.clamp(0.0, 1.0),
            LoadShape::Composite { parts } => {
                let u: f64 = parts.iter().map(|(w, s)| w * s.utilization(t)).sum();
                u.clamp(0.0, 1.0)
            }
        }
    }

    /// Convenience constructor: an office-hours diurnal shape with a plateau
    /// between `start` and `end` hours.
    pub fn office_hours(base: f64, peak: f64, start: f64, end: f64) -> LoadShape {
        LoadShape::Diurnal {
            base,
            peak,
            peak_start_hour: start,
            peak_end_hour: end,
            weekend_scale: 0.5,
        }
    }

    /// Peak (maximum over a representative weekday) of the shape, found by
    /// dense sampling. Useful for normalization and SLO sizing.
    pub fn weekday_peak(&self) -> f64 {
        // Tuesday avoids any epoch edge effects.
        let day_start = SimTime::ZERO + SimDuration::from_days(1);
        simcore::time::ticks(
            day_start,
            day_start + SimDuration::from_days(1),
            SimDuration::from_minutes(1),
        )
        .map(|t| self.utilization(t))
        .fold(0.0, f64::max)
    }
}

/// Smooth plateau membership: 0 away from `[start, end]`, 1 inside, linear
/// ramps of width `ramp` hours on each side. Handles `start > end` (window
/// wrapping midnight).
fn plateau(h: f64, start: f64, end: f64, ramp: f64) -> f64 {
    let inside = if start <= end {
        h >= start && h <= end
    } else {
        h >= start || h <= end
    };
    if inside {
        return 1.0;
    }
    // Distance to the window, accounting for the 24h wrap.
    let dist_to = |edge: f64| -> f64 {
        let d = (h - edge).abs();
        d.min(24.0 - d)
    };
    let d = dist_to(start).min(dist_to(end));
    (1.0 - d / ramp).max(0.0)
}

fn scale_weekend(u: f64, t: SimTime, weekend_scale: f64) -> f64 {
    let u = if t.weekday().is_weekend() {
        u * weekend_scale
    } else {
        u
    };
    u.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(day: u64, hour: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_days(day) + SimDuration::from_secs_f64(hour * 3600.0)
    }

    #[test]
    fn diurnal_peaks_inside_window() {
        let s = LoadShape::office_hours(0.2, 0.8, 10.0, 12.0);
        assert!((s.utilization(at(1, 11.0)) - 0.8).abs() < 1e-9);
        assert!((s.utilization(at(1, 3.0)) - 0.2).abs() < 1e-9);
        // Ramp region between base and peak.
        let ramp_u = s.utilization(at(1, 9.75));
        assert!(ramp_u > 0.2 && ramp_u < 0.8, "ramp_u = {ramp_u}");
    }

    #[test]
    fn diurnal_weekend_attenuation() {
        let s = LoadShape::office_hours(0.2, 0.8, 10.0, 12.0);
        // Day 5 = Saturday.
        assert!((s.utilization(at(5, 11.0)) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn diurnal_window_wrapping_midnight() {
        let s = LoadShape::Diurnal {
            base: 0.1,
            peak: 0.9,
            peak_start_hour: 22.0,
            peak_end_hour: 2.0,
            weekend_scale: 1.0,
        };
        assert!((s.utilization(at(1, 23.0)) - 0.9).abs() < 1e-9);
        assert!((s.utilization(at(1, 1.0)) - 0.9).abs() < 1e-9);
        assert!((s.utilization(at(1, 12.0)) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn hourly_spike_at_top_and_bottom() {
        let s = LoadShape::HourlySpike {
            base: 0.2,
            peak: 0.9,
            spike_minutes: 5.0,
            at_top: true,
            at_bottom: true,
            weekend_scale: 1.0,
        };
        assert_eq!(s.utilization(at(1, 9.0 + 2.0 / 60.0)), 0.9); // 9:02
        assert_eq!(s.utilization(at(1, 9.0 + 31.0 / 60.0)), 0.9); // 9:31
        assert_eq!(s.utilization(at(1, 9.0 + 15.0 / 60.0)), 0.2); // 9:15
    }

    #[test]
    fn hourly_spike_top_only() {
        let s = LoadShape::HourlySpike {
            base: 0.1,
            peak: 0.7,
            spike_minutes: 5.0,
            at_top: true,
            at_bottom: false,
            weekend_scale: 1.0,
        };
        assert_eq!(s.utilization(at(1, 9.0 + 31.0 / 60.0)), 0.1);
        assert_eq!(s.utilization(at(1, 9.0)), 0.7);
    }

    #[test]
    fn constant_is_flat_and_clamped() {
        assert_eq!(
            LoadShape::Constant { level: 0.5 }.utilization(at(1, 1.0)),
            0.5
        );
        assert_eq!(
            LoadShape::Constant { level: 1.5 }.utilization(at(1, 1.0)),
            1.0
        );
    }

    #[test]
    fn composite_mixes_and_clamps() {
        let s = LoadShape::Composite {
            parts: vec![
                (0.5, LoadShape::Constant { level: 0.4 }),
                (0.5, LoadShape::Constant { level: 0.8 }),
            ],
        };
        assert!((s.utilization(at(1, 0.0)) - 0.6).abs() < 1e-9);
        let over = LoadShape::Composite {
            parts: vec![(2.0, LoadShape::Constant { level: 0.9 })],
        };
        assert_eq!(over.utilization(at(1, 0.0)), 1.0);
    }

    #[test]
    fn weekday_peak_finds_plateau() {
        let s = LoadShape::office_hours(0.2, 0.8, 10.0, 12.0);
        assert!((s.weekday_peak() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn utilization_always_in_unit_interval() {
        let shapes = [
            LoadShape::office_hours(0.0, 1.0, 9.0, 17.0),
            LoadShape::Constant { level: 0.33 },
            LoadShape::HourlySpike {
                base: 0.05,
                peak: 0.95,
                spike_minutes: 5.0,
                at_top: true,
                at_bottom: true,
                weekend_scale: 0.3,
            },
        ];
        for s in &shapes {
            for step in 0..(7 * 24 * 4) {
                let t = SimTime::ZERO + SimDuration::from_minutes(15 * step);
                let u = s.utilization(t);
                assert!((0.0..=1.0).contains(&u), "u = {u} at {t}");
            }
        }
    }
}

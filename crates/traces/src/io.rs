//! CSV import/export for trace containers.
//!
//! The format is deliberately simple (one header line, one row per sample)
//! so traces can be inspected with standard tooling or re-plotted outside
//! Rust. Only the workspace-approved dependencies are used; parsing is
//! hand-rolled.

use simcore::series::TimeSeries;
use simcore::time::{SimDuration, SimTime};
use std::fmt;
use std::str::FromStr;

/// Errors from parsing a CSV trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// The input had no header line.
    MissingHeader,
    /// A row had the wrong number of fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// Rows are not evenly spaced in time.
    IrregularStep {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::MissingHeader => write!(f, "missing header line"),
            ParseTraceError::BadFieldCount { line } => {
                write!(f, "wrong field count on line {line}")
            }
            ParseTraceError::BadNumber { line } => write!(f, "unparseable number on line {line}"),
            ParseTraceError::IrregularStep { line } => {
                write!(f, "irregular sampling step on line {line}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// Serialize a time series to CSV with columns `time_us,value`.
///
/// ```
/// use soc_traces::io::{series_to_csv, series_from_csv};
/// use simcore::series::TimeSeries;
/// use simcore::time::{SimDuration, SimTime};
///
/// let ts = TimeSeries::from_values(SimTime::ZERO, SimDuration::from_secs(1), vec![1.0, 2.0]);
/// let csv = series_to_csv(&ts);
/// let back = series_from_csv(&csv).unwrap();
/// assert_eq!(ts, back);
/// ```
pub fn series_to_csv(series: &TimeSeries) -> String {
    let mut out = String::from("time_us,value\n");
    for (t, v) in series.iter() {
        out.push_str(&format!("{},{}\n", t.as_micros(), v));
    }
    out
}

/// Parse a time series from the CSV produced by [`series_to_csv`].
///
/// # Errors
/// Returns a [`ParseTraceError`] describing the first malformed line. An
/// empty body yields an empty series with a 1-second step.
pub fn series_from_csv(csv: &str) -> Result<TimeSeries, ParseTraceError> {
    let mut lines = csv.lines();
    let _header = lines.next().ok_or(ParseTraceError::MissingHeader)?;
    let mut rows: Vec<(u64, f64)> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let (t, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(t), Some(v), None) => (t, v),
            _ => return Err(ParseTraceError::BadFieldCount { line: line_no }),
        };
        let t =
            u64::from_str(t.trim()).map_err(|_| ParseTraceError::BadNumber { line: line_no })?;
        let v =
            f64::from_str(v.trim()).map_err(|_| ParseTraceError::BadNumber { line: line_no })?;
        rows.push((t, v));
    }
    if rows.is_empty() {
        return Ok(TimeSeries::new(SimTime::ZERO, SimDuration::SECOND));
    }
    if rows.len() == 1 {
        return Ok(TimeSeries::from_values(
            SimTime::from_micros(rows[0].0),
            SimDuration::SECOND,
            vec![rows[0].1],
        ));
    }
    let step = rows[1].0 - rows[0].0;
    if step == 0 {
        return Err(ParseTraceError::IrregularStep { line: 3 });
    }
    for (i, w) in rows.windows(2).enumerate() {
        if w[1].0 - w[0].0 != step {
            return Err(ParseTraceError::IrregularStep { line: i + 3 });
        }
    }
    Ok(TimeSeries::from_values(
        SimTime::from_micros(rows[0].0),
        SimDuration::from_micros(step),
        rows.into_iter().map(|(_, v)| v).collect(),
    ))
}

/// Serialize several aligned series as one CSV with a shared time column.
///
/// # Panics
/// Panics if the series do not share start/step/length, or if
/// `names.len() != series.len()`.
pub fn multi_series_to_csv(names: &[&str], series: &[&TimeSeries]) -> String {
    assert_eq!(names.len(), series.len(), "one name per series");
    assert!(!series.is_empty(), "need at least one series");
    let first = series[0];
    for s in series {
        assert_eq!(s.start(), first.start(), "mismatched start");
        assert_eq!(s.step(), first.step(), "mismatched step");
        assert_eq!(s.len(), first.len(), "mismatched length");
    }
    let mut out = String::from("time_us");
    for name in names {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for i in 0..first.len() {
        out.push_str(&first.time_at_index(i).as_micros().to_string());
        for s in series {
            out.push_str(&format!(",{}", s.values()[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_series() {
        let ts = TimeSeries::from_values(
            SimTime::from_secs(60),
            SimDuration::from_secs(30),
            vec![1.5, 2.5, 3.5],
        );
        let back = series_from_csv(&series_to_csv(&ts)).unwrap();
        assert_eq!(ts, back);
    }

    #[test]
    fn empty_body_gives_empty_series() {
        let ts = series_from_csv("time_us,value\n").unwrap();
        assert!(ts.is_empty());
    }

    #[test]
    fn single_row_parses() {
        let ts = series_from_csv("time_us,value\n1000000,7.5\n").unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.values(), &[7.5]);
        assert_eq!(ts.start(), SimTime::from_secs(1));
    }

    #[test]
    fn rejects_bad_field_count() {
        let err = series_from_csv("h\n1,2,3\n").unwrap_err();
        assert_eq!(err, ParseTraceError::BadFieldCount { line: 2 });
    }

    #[test]
    fn rejects_bad_number() {
        let err = series_from_csv("h\nxyz,1.0\n").unwrap_err();
        assert_eq!(err, ParseTraceError::BadNumber { line: 2 });
    }

    #[test]
    fn rejects_irregular_step() {
        let err = series_from_csv("h\n0,1.0\n10,2.0\n25,3.0\n").unwrap_err();
        assert_eq!(err, ParseTraceError::IrregularStep { line: 4 });
    }

    #[test]
    fn skips_blank_lines() {
        let ts = series_from_csv("h\n0,1.0\n\n10,2.0\n").unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn multi_series_layout() {
        let a = TimeSeries::from_values(SimTime::ZERO, SimDuration::SECOND, vec![1.0, 2.0]);
        let b = TimeSeries::from_values(SimTime::ZERO, SimDuration::SECOND, vec![3.0, 4.0]);
        let csv = multi_series_to_csv(&["a", "b"], &[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_us,a,b");
        assert_eq!(lines[1], "0,1,3");
        assert_eq!(lines[2], "1000000,2,4");
    }

    #[test]
    #[should_panic(expected = "one name per series")]
    fn multi_series_validates_names() {
        let a = TimeSeries::from_values(SimTime::ZERO, SimDuration::SECOND, vec![1.0]);
        let _ = multi_series_to_csv(&["a", "b"], &[&a]);
    }
}

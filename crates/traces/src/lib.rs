//! # soc-traces — synthetic production traces
//!
//! The paper's characterization and large-scale evaluation are driven by six
//! weeks of production telemetry: rack and server power plus VM-level CPU
//! utilization at 5-minute granularity across 7.1k dedicated racks (§III,
//! §V-B). That data is proprietary, so this crate generates the closest
//! synthetic equivalent:
//!
//! * [`shape`] — parametric load shapes: diurnal plateaus (Service A),
//!   top/bottom-of-the-hour spikes (Services B/C), constant batch load,
//!   night-shifted and office-hours patterns.
//! * [`services`] — a catalog of named service profiles, including the three
//!   services of Fig. 1 and a population of background services used to fill
//!   racks with heterogeneous multi-tenant mixes.
//! * [`gen`] — the fleet generator: VMs (2–8 cores) are placed on servers,
//!   servers into racks, each VM driven by its service's shape plus noise
//!   and occasional outlier days; power comes from `soc-power`'s model. The
//!   generator reproduces the statistical properties the paper's findings
//!   rest on: diurnal repeatability (Q3), server heterogeneity within a rack
//!   (Q4), and headroom distributions (Q2).
//! * [`fleet`] — trace containers ([`fleet::ServerTrace`],
//!   [`fleet::RackTrace`], [`fleet::FleetTrace`]) with the aggregate
//!   statistics the figures plot.
//! * [`io`] — CSV import/export for all containers.

#![forbid(unsafe_code)]

pub mod fleet;
pub mod gen;
pub mod io;
pub mod services;
pub mod shape;

pub use fleet::{FleetTrace, RackTrace, ServerTrace};
pub use gen::{FleetConfig, TraceGenerator};
pub use shape::LoadShape;

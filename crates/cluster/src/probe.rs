//! Pure observation hooks for performance instrumentation.
//!
//! `soc_cluster` is a sim-state crate: wall-clock reads are forbidden here
//! (soc-lint D002), because a clock read inside simulation code is one
//! accidental `if elapsed > ..` away from scheduler-dependent behaviour.
//! Performance observability still wants to know how long the shard phases
//! take — so the sharded engine accepts a [`ShardProbe`], a trait of *pure
//! hooks*: the sim announces "a named phase starts here" and "this counter
//! advanced", and an implementation living in a bench binary (where clocks
//! are allowed) attaches wall-clock timing on the other side of the trait.
//!
//! Nothing observable by the simulation flows back through the probe: the
//! hooks return opaque drop tokens and `()`, so a probed run and a
//! [`NoopProbe`] run execute byte-identical simulation work by construction.

/// Opaque token ending a probe span when dropped.
///
/// Implementations carry whatever state they need (a start instant, a
/// profiler handle); the simulation only holds the box and drops it.
pub trait SpanToken: Send {}

/// Observation hooks called by the sharded engine.
///
/// Span names are flat literals (`"shard/sim"`, `"merge"`), not nested:
/// workers run the same code whether the pool is inline (`threads <= 1`)
/// or fanned out, and flat names keep the recorded keys identical across
/// every thread count.
pub trait ShardProbe: Sync {
    /// Begin the named span. `None` means "not observing" and costs nothing;
    /// a `Some` token ends the span when dropped.
    fn span(&self, name: &'static str) -> Option<Box<dyn SpanToken>>;

    /// Advance a named monotonic counter.
    fn add(&self, counter: &'static str, n: u64);

    /// Observe one gauge sample (`metric` for `entity` at sim time `t_us`).
    ///
    /// Called from simulation workers: each `(metric, entity)` pair is fed
    /// by exactly one worker in sim-time order, so an implementation that
    /// keeps per-series state sees a deterministic per-series sequence even
    /// though cross-series interleaving is scheduler-dependent. Default is
    /// a no-op so existing probes stay source-compatible.
    fn gauge(&self, _t_us: u64, _metric: &'static str, _entity: u64, _value: f64) {}

    /// Observe one telemetry event.
    ///
    /// Called only from the serial merge loop, in canonical rack order, so
    /// implementations see events in a deterministic sequence at every
    /// thread count. Default is a no-op.
    fn event(&self, _event: &soc_telemetry::Event) {}
}

/// The disabled probe: every hook is a no-op the optimizer can erase.
pub struct NoopProbe;

impl ShardProbe for NoopProbe {
    fn span(&self, _name: &'static str) -> Option<Box<dyn SpanToken>> {
        None
    }

    fn add(&self, _counter: &'static str, _n: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct CountingToken(Arc<AtomicU64>);
    impl SpanToken for CountingToken {}
    impl Drop for CountingToken {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    struct CountingProbe {
        spans_closed: Arc<AtomicU64>,
        counted: AtomicU64,
    }

    impl ShardProbe for CountingProbe {
        fn span(&self, _name: &'static str) -> Option<Box<dyn SpanToken>> {
            Some(Box::new(CountingToken(Arc::clone(&self.spans_closed))))
        }
        fn add(&self, _counter: &'static str, n: u64) {
            self.counted.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[test]
    fn noop_probe_observes_nothing() {
        let probe = NoopProbe;
        assert!(probe.span("anything").is_none());
        probe.add("anything", 7);
    }

    #[test]
    fn tokens_fire_on_drop() {
        let probe = CountingProbe {
            spans_closed: Arc::new(AtomicU64::new(0)),
            counted: AtomicU64::new(0),
        };
        {
            let _a = probe.span("a");
            let _b = probe.span("b");
            assert_eq!(probe.spans_closed.load(Ordering::Relaxed), 0);
        }
        assert_eq!(probe.spans_closed.load(Ordering::Relaxed), 2);
        probe.add("n", 5);
        assert_eq!(probe.counted.load(Ordering::Relaxed), 5);
    }
}

//! Datacenter-level (multi-rack) budget coordination — an extension
//! experiment.
//!
//! "The power delivery system in a cloud datacenter is organized in a
//! hierarchy" (§II) and SmartOClock "is organized hierarchically where each
//! controller manages the components on its level" (§IV). The paper
//! evaluates the rack level; this module extends the same §IV-C split one
//! level up: a datacenter feed that oversubscribes its racks, with
//! rack-level gOAs receiving heterogeneous budgets from a datacenter-level
//! split before subdividing them across servers.
//!
//! The experiment compares *flat* enforcement (each rack admits against its
//! own provisioned limit, blind to the shared feed) with *nested*
//! enforcement (rack budgets are first cut to fit the feed). Flat racks can
//! each stay within their local limit while their sum tramples the feed —
//! exactly the failure mode hierarchical budgets exist to prevent.

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use soc_power::hierarchy::{heterogeneous_split, DemandProfile};
use soc_power::units::Watts;
use soc_traces::fleet::RackTrace;
use soc_traces::gen::{FleetConfig, TraceGenerator};

/// Split a datacenter budget across racks, then each rack's share across its
/// servers — the §IV-C computation applied recursively.
///
/// Returns per-rack, per-server budgets. Budget conservation holds at every
/// level: each rack's server budgets sum to that rack's share, and the rack
/// shares sum to the datacenter budget (when regular demand fits).
///
/// # Panics
/// Panics if `racks` is empty or any rack has no servers.
pub fn nested_split(dc_budget: Watts, racks: &[Vec<DemandProfile>]) -> Vec<Vec<Watts>> {
    assert!(!racks.is_empty(), "need at least one rack");
    let rack_profiles: Vec<DemandProfile> = racks
        .iter()
        .map(|servers| {
            assert!(!servers.is_empty(), "rack with no servers");
            DemandProfile {
                regular: servers.iter().map(|s| s.regular).sum(),
                overclock_demand: servers.iter().map(|s| s.overclock_demand).sum(),
            }
        })
        .collect();
    let rack_budgets = heterogeneous_split(dc_budget, &rack_profiles);
    racks
        .iter()
        .zip(&rack_budgets)
        .map(|(servers, &budget)| heterogeneous_split(budget, servers))
        .collect()
}

/// Configuration for the datacenter coordination experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatacenterConfig {
    /// Number of racks on the shared feed.
    pub racks: usize,
    /// Datacenter feed as a fraction of the sum of rack limits (< 1 means
    /// the feed oversubscribes the racks).
    pub feed_fraction: f64,
    /// Trace length in weeks (week 1 trains templates).
    pub weeks: u64,
    /// Evaluation step.
    pub step: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl DatacenterConfig {
    /// A small test configuration.
    pub fn small_test() -> DatacenterConfig {
        DatacenterConfig {
            racks: 4,
            feed_fraction: 0.90,
            weeks: 2,
            step: SimDuration::from_minutes(15),
            seed: 42,
        }
    }
}

/// Outcome of the flat-vs-nested comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatacenterOutcome {
    /// Evaluated steps.
    pub steps: u64,
    /// Steps where the feed was exceeded under flat (rack-local) admission.
    pub feed_overloads_flat: u64,
    /// Steps where the feed was exceeded under nested admission.
    pub feed_overloads_nested: u64,
    /// Overclock grants under flat admission.
    pub grants_flat: u64,
    /// Overclock grants under nested admission.
    pub grants_nested: u64,
}

/// Run the comparison on a synthetic fleet.
///
/// # Panics
/// Panics if the configuration is degenerate (`racks == 0`, `weeks < 2`).
pub fn simulate_datacenter(config: &DatacenterConfig) -> DatacenterOutcome {
    assert!(config.racks > 0, "need at least one rack");
    assert!(
        config.weeks >= 2,
        "need a training week and an evaluation span"
    );
    let generator = TraceGenerator::new(config.seed);
    let mut fleet_cfg = FleetConfig::small_test();
    fleet_cfg.racks = config.racks;
    fleet_cfg.span = SimDuration::WEEK * config.weeks;
    fleet_cfg.step = config.step;
    fleet_cfg.keep_server_series = true;
    let racks: Vec<RackTrace> = (0..config.racks)
        .map(|r| generator.generate_rack(&fleet_cfg, r))
        .collect();
    let models: Vec<_> = racks
        .iter()
        .map(|r| generator.model_for(r.generation))
        .collect();

    let rack_limit_sum: Watts = racks.iter().map(|r| r.limit).sum();
    let feed = rack_limit_sum * config.feed_fraction;

    let mut outcome = DatacenterOutcome {
        steps: 0,
        feed_overloads_flat: 0,
        feed_overloads_nested: 0,
        grants_flat: 0,
        grants_nested: 0,
    };

    let start = SimTime::ZERO + SimDuration::WEEK;
    let end = SimTime::ZERO + SimDuration::WEEK * config.weeks;
    let mut t = start;
    while t < end {
        // Demand profiles at this instant (true baselines as the "template").
        let profiles: Vec<Vec<DemandProfile>> = racks
            .iter()
            .zip(&models)
            .map(|(rack, model)| {
                let oc_freq = model.plan().max_overclock();
                rack.servers
                    .iter()
                    .map(|s| {
                        let util = s.utilization.value_at(t).unwrap_or(0.5);
                        let cores = (s.oc_demand_cores.value_at(t).unwrap_or(0.0) as usize)
                            .min(model.cores());
                        DemandProfile {
                            regular: Watts::new(s.power.value_at(t).unwrap_or(0.0)),
                            overclock_demand: model.overclock_delta(
                                util.clamp(0.0, 1.0),
                                cores,
                                oc_freq,
                            ),
                        }
                    })
                    .collect()
            })
            .collect();

        // Flat: each rack splits its own provisioned limit.
        let flat_budgets: Vec<Vec<Watts>> = racks
            .iter()
            .zip(&profiles)
            .map(|(rack, servers)| heterogeneous_split(rack.limit, servers))
            .collect();
        // Nested: the feed is split first.
        let nested_budgets = nested_split(feed, &profiles);

        let admit = |budgets: &[Vec<Watts>], grants: &mut u64| -> Watts {
            let mut total = Watts::ZERO;
            for (r, servers) in profiles.iter().enumerate() {
                for (s, profile) in servers.iter().enumerate() {
                    total += profile.regular;
                    if profile.overclock_demand > Watts::ZERO
                        && profile.regular + profile.overclock_demand <= budgets[r][s]
                    {
                        total += profile.overclock_demand;
                        *grants += 1;
                    }
                }
            }
            total
        };
        let flat_draw = admit(&flat_budgets, &mut outcome.grants_flat);
        let nested_draw = admit(&nested_budgets, &mut outcome.grants_nested);
        if flat_draw >= feed {
            outcome.feed_overloads_flat += 1;
        }
        if nested_draw >= feed {
            outcome.feed_overloads_nested += 1;
        }
        outcome.steps += 1;
        t += config.step;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(regular: f64, demand: f64) -> DemandProfile {
        DemandProfile {
            regular: Watts::new(regular),
            overclock_demand: Watts::new(demand),
        }
    }

    #[test]
    fn nested_split_conserves_at_both_levels() {
        let racks = vec![
            vec![profile(300.0, 40.0), profile(200.0, 0.0)],
            vec![
                profile(250.0, 20.0),
                profile(250.0, 20.0),
                profile(100.0, 0.0),
            ],
        ];
        let budgets = nested_split(Watts::new(1500.0), &racks);
        let total: f64 = budgets.iter().flatten().map(|b| b.get()).sum();
        assert!(
            (total - 1500.0).abs() < 1e-6,
            "datacenter budget must be conserved"
        );
        // Every server keeps at least its regular draw (feasible case).
        for (r, rack) in racks.iter().enumerate() {
            for (s, p) in rack.iter().enumerate() {
                assert!(budgets[r][s] + Watts::new(1e-9) >= p.regular);
            }
        }
    }

    #[test]
    fn demanding_rack_gets_more_headroom() {
        let racks = vec![vec![profile(300.0, 100.0)], vec![profile(300.0, 10.0)]];
        let budgets = nested_split(Watts::new(900.0), &racks);
        let extra0 = budgets[0][0].get() - 300.0;
        let extra1 = budgets[1][0].get() - 300.0;
        assert!(
            extra0 > extra1,
            "the demanding rack should receive more headroom"
        );
    }

    #[test]
    fn nested_enforcement_protects_the_feed() {
        let outcome = simulate_datacenter(&DatacenterConfig::small_test());
        assert!(outcome.steps > 0);
        assert!(
            outcome.feed_overloads_nested <= outcome.feed_overloads_flat,
            "nested budgets must not overload the feed more than flat ones \
             (nested {}, flat {})",
            outcome.feed_overloads_nested,
            outcome.feed_overloads_flat
        );
        // Nested admission is more conservative, so it grants no more.
        assert!(outcome.grants_nested <= outcome.grants_flat);
        // But it still grants something — it does not simply reject all.
        assert!(
            outcome.grants_nested > 0,
            "nested admission must keep granting"
        );
    }

    #[test]
    fn deterministic() {
        let a = simulate_datacenter(&DatacenterConfig::small_test());
        let b = simulate_datacenter(&DatacenterConfig::small_test());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "need at least one rack")]
    fn rejects_empty() {
        let mut cfg = DatacenterConfig::small_test();
        cfg.racks = 0;
        let _ = simulate_datacenter(&cfg);
    }
}

//! Trace-driven large-scale policy simulation (paper §V-B, Table I, Fig. 6).
//!
//! Replays synthetic production traces (rack/server baseline power + per-
//! server overclocking demand, 5-minute granularity) under the five policies
//! of Table I. The first trace week trains the per-server DailyMed power
//! templates and demand profiles; the remaining weeks are simulated:
//! admission per policy, per-step rack power aggregation, warnings at 95 %
//! of the limit, capping events with prioritized shedding (overclock extras
//! are revoked first, then non-overclocked servers are throttled), and the
//! exploration/backoff dynamics of SmartOClock and NoWarning.
//!
//! The paper's own evaluation also uses a purpose-built discrete-event
//! simulator here ("We develop a discrete event simulator to evaluate
//! SmartOClock", §V-B); the full agent implementation is exercised
//! end-to-end by the cluster harness instead.

pub use crate::largescale_metrics::{PolicyMetrics, RackOutcome};
use crate::probe::{NoopProbe, ShardProbe};
use serde::{Deserialize, Serialize};
use simcore::faults::{FaultPlan, FaultPlanConfig};
use simcore::time::{SimDuration, SimTime};
use smartoclock::epoch::EpochTracker;
use smartoclock::goa::GlobalOverclockAgent;
use smartoclock::policy::PolicyKind;
use soc_power::hierarchy::DemandProfile;
use soc_power::model::PowerModel;
use soc_power::rack::RackMonitor;
use soc_power::units::{MegaHertz, Watts};
use soc_predict::template::{PowerTemplate, TemplateKind};
use soc_reliability::binning::{BinningConfig, SiliconPart, WearRate};
use soc_reliability::thermal::Cooling;
use soc_reliability::wear::WearModel;
use soc_telemetry::{tm_event, Component, Severity, Telemetry};
use soc_traces::fleet::RackTrace;
use soc_traces::gen::FleetConfig;

/// Configuration of the large-scale simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LargeScaleConfig {
    /// Number of racks to simulate.
    pub racks: usize,
    /// Trace length in weeks (week 1 trains the templates; the rest are
    /// evaluated). Must be at least 2.
    pub weeks: u64,
    /// Sampling/evaluation step.
    pub step: SimDuration,
    /// Servers per rack (min, max).
    pub servers_per_rack: (usize, usize),
    /// Overclocking lifetime budget as a fraction of time per epoch. Table I
    /// stresses *power* management, so the default (1.0) keeps lifetime from
    /// binding; the cluster harness's overclocking-constrained experiment
    /// covers restricted lifetime budgets instead.
    pub oc_time_fraction: f64,
    /// Exploration step in watts (SmartOClock/NoWarning).
    pub explore_step: Watts,
    /// Cap on cumulative exploration.
    pub explore_cap: Watts,
    /// RNG seed for trace generation.
    pub seed: u64,
    /// Control-plane fault schedule (default: no faults). Applies only to
    /// the evaluation weeks; realized per-rack from the shared seed so fault
    /// timelines compose with sharded execution.
    #[serde(default)]
    pub faults: FaultPlanConfig,
    /// How the `Central` baseline behaves while the fault plan marks the
    /// gOA/central controller unreachable: `true` = fail-open (stale
    /// permissions stand, no enforcement — risks budget violations),
    /// `false` = fail-stop (deny all overclocking — forfeits OC uptime).
    #[serde(default)]
    pub central_fail_open: bool,
    /// Per-part silicon heterogeneity (default: uniform fleet). Realized
    /// per-server from the shared seed (stateless draws), so bin identities
    /// compose with sharded execution exactly like the fault timelines.
    #[serde(default)]
    pub binning: BinningConfig,
    /// Kill switch for the columnar engine's weekly slot memoization: when
    /// set, every step predicts through the per-step fallback path instead
    /// of the precomputed slot tables. Results are equivalence-pinned to be
    /// identical either way — this only trades speed for a simpler code
    /// path, so it exists for debugging and for exercising the fallback
    /// (which is otherwise unreachable: template training requires a step
    /// that divides a day, and every day-divisor also divides the week).
    #[serde(default)]
    pub disable_slot_memo: bool,
}

impl LargeScaleConfig {
    /// A small configuration for unit tests.
    pub fn small_test() -> LargeScaleConfig {
        LargeScaleConfig {
            racks: 4,
            weeks: 2,
            step: SimDuration::from_minutes(15),
            servers_per_rack: (6, 8),
            oc_time_fraction: 1.0,
            explore_step: Watts::new(20.0),
            explore_cap: Watts::new(200.0),
            seed: 42,
            faults: FaultPlanConfig::none(),
            central_fail_open: false,
            binning: BinningConfig::uniform(),
            disable_slot_memo: false,
        }
    }

    /// The bench-scale configuration: more racks, 5-minute steps, 3 weeks.
    pub fn bench_reference(racks: usize) -> LargeScaleConfig {
        LargeScaleConfig {
            racks,
            weeks: 3,
            step: SimDuration::from_minutes(5),
            servers_per_rack: (12, 16),
            oc_time_fraction: 1.0,
            explore_step: Watts::new(20.0),
            explore_cap: Watts::new(200.0),
            seed: 42,
            faults: FaultPlanConfig::none(),
            central_fail_open: false,
            binning: BinningConfig::uniform(),
            disable_slot_memo: false,
        }
    }

    pub(crate) fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            region: "largescale".into(),
            racks: self.racks,
            servers_per_rack_min: self.servers_per_rack.0,
            servers_per_rack_max: self.servers_per_rack.1,
            span: SimDuration::WEEK * self.weeks,
            step: self.step,
            oc_core_fraction: 0.45,
            // Tighter than the fleet-wide default: Table I's clusters span
            // from comfortably provisioned (low-power) to power-constrained
            // (high-power), which a wider oversubscription range produces.
            oversubscription: (1.50, 2.15),
            outlier_day_prob: 0.03,
            intel_fraction: 0.4,
            vm_churn_weekly: 0.05,
            keep_server_series: true,
        }
    }
}

/// Per-server mutable control state of the row-oriented reference engine
/// (the columnar production engine keeps the same fields as parallel columns
/// in [`crate::columns::ServerColumns`]).
struct ServerState {
    budget: Watts,
    explore_extra: Watts,
    backoff_steps: u32,
    backoff_remaining: u32,
    /// Remaining overclock time this week.
    oc_remaining: SimDuration,
    /// A budget update delayed in flight (fault injection): applied once
    /// sim time reaches the delivery instant.
    pending_budget: Option<(SimTime, Watts)>,
}

/// Trained per-server predictors: the week-1 power template and the
/// overclock-demand profile, with the static prediction bias of the fault
/// plan already applied.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedServer {
    /// Regular (non-overclocked) power template.
    pub template: PowerTemplate,
    /// Overclock demand in watts (cores × per-core delta at typical
    /// utilization).
    pub demand_template: PowerTemplate,
}

/// Week-1 training output for one rack, reusable across policy variants.
///
/// Templates depend only on the trace, the power model, and
/// `config.faults.prediction_bias` — not on the policy — so multi-policy
/// drivers (`table1_policies`, `par_speedup`) train once and simulate many
/// times.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedRack {
    /// One trained entry per server, in rack order.
    pub servers: Vec<TrainedServer>,
}

/// Build the per-server templates from the first trace week (paper §IV-B).
///
/// This is the `rack/setup` phase of [`simulate_rack_probed`], split out so
/// callers can amortize training across policy variants and keep it out of
/// timed simulation legs.
pub fn train_rack(config: &LargeScaleConfig, rack: &RackTrace, model: &PowerModel) -> TrainedRack {
    let plan = model.plan();
    let oc_freq = plan.max_overclock();
    let train_end = SimTime::ZERO + SimDuration::WEEK;
    let per_core_extra = |util: f64| model.overclock_delta(util.clamp(0.0, 1.0), 1, oc_freq);
    // Static prediction bias (fault injection): the trained regular-power
    // templates systematically over- or under-predict. Applied once here so
    // per-step noise (prediction_factor) is never double-counted.
    let bias = config.faults.prediction_bias;
    let servers = rack
        .servers
        .iter()
        .map(|s| {
            let train_power = s.power.slice(SimTime::ZERO, train_end);
            let train_util = s.utilization.slice(SimTime::ZERO, train_end);
            let train_demand = s.oc_demand_cores.slice(SimTime::ZERO, train_end);
            // Demand in watts: cores × per-core delta at the typical
            // utilization of this server.
            let util = simcore::stats::mean(train_util.values());
            let demand_watts = train_demand.map(|cores| cores * per_core_extra(util).get());
            let mut template = PowerTemplate::build(&train_power, TemplateKind::DailyMed);
            if bias != 1.0 {
                template = template.map_values(|v| v * bias);
            }
            TrainedServer {
                template,
                demand_template: PowerTemplate::build(&demand_watts, TemplateKind::DailyMed),
            }
        })
        .collect();
    TrainedRack { servers }
}

/// Resolved per-part silicon for one rack run: admitted overclock levels,
/// hoisted wear-rate coefficients, and the deny/down-bin counts.
///
/// Both engines call [`resolve_rack_silicon`] with identical arguments, so
/// every float in here is computed exactly once per rack and shared — the
/// byte-determinism contract extends to heterogeneous fleets by
/// construction. `None` (uniform config) keeps both engines on their
/// pre-binning paths, byte-for-byte.
pub(crate) struct RackSilicon {
    /// Drawn silicon per server, in rack order.
    pub parts: Vec<SiliconPart>,
    /// Risk-admitted overclock frequency per server; `None` = the part's
    /// risk exceeds the budget at every overclocked level (bin-denied).
    pub eff: Vec<Option<MegaHertz>>,
    /// Hoisted ageing-rate coefficients per server at its admitted level
    /// (placeholder at turbo for denied servers, which never accrue wear).
    pub wear: Vec<WearRate>,
    /// Servers denied all overclocking by the risk budget.
    pub bin_denied: u64,
    /// Servers admitted below the plan's maximum overclock.
    pub down_binned: u64,
}

/// Draw and risk-admit every server's silicon for one rack, hoisting the
/// per-part wear rates the step loop charges. Returns `None` for the
/// degenerate uniform config (no heterogeneity, no extra work, no new
/// telemetry — the pre-binning byte streams are preserved exactly).
///
/// Part ids reuse [`FaultPlan::entity_id`], so a server's silicon is the
/// same under sharded and serial execution and across engines. The wear
/// hoist runs each part's scaled [`WearModel`] at the air-cooled
/// steady-state junction temperature of a fully-utilized server at the
/// admitted frequency.
pub(crate) fn resolve_rack_silicon(
    config: &LargeScaleConfig,
    rack_index: usize,
    servers: usize,
    model: &PowerModel,
) -> Option<RackSilicon> {
    if config.binning.is_uniform() {
        return None;
    }
    let plan = model.plan();
    let base_wear = WearModel::reference(*model.curve());
    let cooling = Cooling::Air;
    let mut silicon = RackSilicon {
        parts: Vec::with_capacity(servers),
        eff: Vec::with_capacity(servers),
        wear: Vec::with_capacity(servers),
        bin_denied: 0,
        down_binned: 0,
    };
    for i in 0..servers {
        let part = config
            .binning
            .part(&plan, FaultPlan::entity_id(rack_index, i));
        let eff = part.admit(&plan, config.binning.risk_budget, plan.max_overclock());
        match eff {
            None => silicon.bin_denied += 1,
            Some(f) if f < plan.max_overclock() => silicon.down_binned += 1,
            Some(_) => {}
        }
        let freq = eff.unwrap_or(plan.turbo());
        let oc_power = model.server_power_uniform(1.0, freq);
        let temp_c = cooling.ambient_c() + cooling.thermal_resistance() * oc_power.get();
        silicon
            .wear
            .push(WearRate::hoist(&base_wear, &part, freq, temp_c));
        silicon.parts.push(part);
        silicon.eff.push(eff);
    }
    Some(silicon)
}

/// Emit the `bin_deny` / `down_bin` admission telemetry for one rack's
/// resolved silicon, in server order — shared verbatim by both engines so
/// heterogeneous event streams stay byte-identical.
pub(crate) fn emit_binning_events(
    silicon: &RackSilicon,
    telemetry: &Telemetry,
    at: SimTime,
    rack_index: usize,
    policy: PolicyKind,
    max_overclock: MegaHertz,
    sim_decision: u64,
) {
    for (i, (part, eff)) in silicon.parts.iter().zip(silicon.eff.iter()).enumerate() {
        match eff {
            None => {
                tm_event!(telemetry, at, Component::Sim, Severity::Warn, "bin_deny",
                    "rack" => rack_index,
                    "server" => i,
                    "policy" => policy.name(),
                    "bin" => part.bin,
                    "risk" => part.risk,
                    "decision_id" => telemetry.next_id(),
                    "cause_id" => sim_decision);
            }
            Some(f) if *f < max_overclock => {
                tm_event!(telemetry, at, Component::Sim, Severity::Info, "down_bin",
                    "rack" => rack_index,
                    "server" => i,
                    "policy" => policy.name(),
                    "bin" => part.bin,
                    "risk" => part.risk,
                    "to_mhz" => f.get(),
                    "decision_id" => telemetry.next_id(),
                    "cause_id" => sim_decision);
            }
            Some(_) => {}
        }
    }
}

/// Simulate one policy over a freshly generated fleet; returns per-rack
/// outcomes (aggregate into Table I rows with
/// [`PolicyMetrics::aggregate`]).
///
/// # Panics
/// Panics if `config.weeks < 2` or `config.racks == 0`.
pub fn simulate_policy(config: &LargeScaleConfig, policy: PolicyKind) -> Vec<RackOutcome> {
    simulate_policy_traced(config, policy, &Telemetry::disabled())
}

/// [`simulate_policy`] with telemetry: each rack emits `rack_sim_start` /
/// `rack_sim_end` events plus per-step `rack_capping` warnings under
/// [`Component::Sim`], and per-policy request/grant/capping counters.
///
/// Delegates to [`crate::shard::simulate_policy_sharded`] with a single
/// worker, so the serial path and the `--threads N` path are the same code
/// and byte-identical by construction (per-rack buffered telemetry with
/// deterministic id bases, merged in rack order).
///
/// # Panics
/// Panics if `config.weeks < 2` or `config.racks == 0`.
pub fn simulate_policy_traced(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    telemetry: &Telemetry,
) -> Vec<RackOutcome> {
    crate::shard::simulate_policy_sharded(config, policy, telemetry, 1)
}

/// Simulate one rack under one policy.
pub fn simulate_rack(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    rack: &RackTrace,
    model: &PowerModel,
) -> RackOutcome {
    simulate_rack_traced(config, policy, rack, model, &Telemetry::disabled())
}

/// [`simulate_rack`] with telemetry (see [`simulate_policy_traced`]).
pub fn simulate_rack_traced(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    rack: &RackTrace,
    model: &PowerModel,
    telemetry: &Telemetry,
) -> RackOutcome {
    simulate_rack_probed(config, policy, rack, model, telemetry, &NoopProbe)
}

/// [`simulate_rack_traced`] with performance observation hooks.
///
/// The probe sees three flat spans — `"rack/setup"` around template
/// training, and per step `"rack/admission"` (per-server admission checks)
/// and `"rack/aggregation"` (power aggregation, capping enforcement, and
/// exploration bookkeeping) — plus a `sim_steps` counter on completion.
/// Hooks are observation-only: simulation state never reads anything back,
/// so probed and unprobed runs are byte-identical (see `tests/prof.rs`).
pub fn simulate_rack_probed(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    rack: &RackTrace,
    model: &PowerModel,
    telemetry: &Telemetry,
    probe: &dyn ShardProbe,
) -> RackOutcome {
    // --- Training: build templates from week 1. ---
    let setup_span = probe.span("rack/setup");
    let trained = train_rack(config, rack, model);
    drop(setup_span);
    crate::columns::simulate_rack_columnar(config, policy, rack, model, &trained, telemetry, probe)
}

/// [`simulate_rack_probed`] over pre-trained templates: the columnar
/// production engine without the `rack/setup` phase. Timed benchmark legs
/// (`par_speedup`) call this so measured time is pure simulation.
pub fn simulate_rack_trained_probed(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    rack: &RackTrace,
    model: &PowerModel,
    trained: &TrainedRack,
    telemetry: &Telemetry,
    probe: &dyn ShardProbe,
) -> RackOutcome {
    crate::columns::simulate_rack_columnar(config, policy, rack, model, trained, telemetry, probe)
}

/// The pre-columnar row-oriented engine, kept verbatim as an executable
/// specification: a `Vec<ServerState>` of structs, per-server
/// `PowerTemplate::predict` calls in the inner loop, and fresh per-step
/// allocations. [`crate::columns`] must stay byte-identical to this —
/// `tests/equivalence.rs` pins it across seeds × thread counts × fault
/// plans, and `par_speedup` both times the two engines against each other
/// (the committed `speedup`) and asserts their outcomes agree on every run.
pub fn simulate_rack_reference(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    rack: &RackTrace,
    model: &PowerModel,
    trained: &TrainedRack,
    telemetry: &Telemetry,
) -> RackOutcome {
    let plan = model.plan();
    let oc_freq = plan.max_overclock();
    let train_end = SimTime::ZERO + SimDuration::WEEK;
    let trace_end = SimTime::ZERO + SimDuration::WEEK * config.weeks;
    // The fault schedule covers the evaluation weeks only; it is a pure
    // function of the plan config, so every shard realizes the same
    // timeline regardless of execution order.
    let faults = FaultPlan::generate(&config.faults, train_end, trace_end);
    // Per-part silicon (None for the default uniform fleet): binned
    // admission levels, hoisted wear rates, and deny/down-bin counts.
    let silicon = resolve_rack_silicon(config, rack.index, rack.servers.len(), model);
    let step_days = config.step.as_days_f64();
    let weekly_allowance = SimDuration::WEEK.mul_f64(config.oc_time_fraction);
    let mut servers: Vec<ServerState> = trained
        .servers
        .iter()
        .map(|_| ServerState {
            budget: Watts::ZERO,
            explore_extra: Watts::ZERO,
            backoff_steps: 0,
            backoff_remaining: 0,
            oc_remaining: weekly_allowance,
            pending_budget: None,
        })
        .collect();

    let mut monitor = RackMonitor::new(rack.limit, 0.95);
    let mut outcome = RackOutcome::new(rack.index, rack.mean_utilization());
    outcome.limit = rack.limit;
    let mut warned_last_step = false;
    let mut epochs = EpochTracker::weekly();
    let goa = GlobalOverclockAgent::new(rack.limit, policy);
    let mut goa_was_down = false;
    let mut degraded_decision = 0u64;
    let mut dropped_updates = 0u64;
    let mut delayed_updates = 0u64;
    let mut telemetry_gaps = 0u64;
    let sim_decision = telemetry.next_id();
    tm_event!(telemetry, train_end, Component::Sim, Severity::Info, "rack_sim_start",
        "rack" => rack.index,
        "policy" => policy.name(),
        "servers" => rack.servers.len(),
        "limit_w" => rack.limit.get(),
        "decision_id" => sim_decision);
    if let Some(s) = &silicon {
        emit_binning_events(
            s,
            telemetry,
            train_end,
            rack.index,
            policy,
            plan.max_overclock(),
            sim_decision,
        );
        outcome.bin_denied = s.bin_denied;
        outcome.down_binned = s.down_binned;
    }

    let mut t = train_end;
    while t < trace_end {
        // Weekly epoch boundary: refresh lifetime allowances. This is the
        // only cross-step coupling point; between boundaries every rack
        // evolves independently, which is what lets the sharded engine
        // (`crate::shard`) deal whole racks across worker threads.
        if epochs.advance(t).is_some() {
            for s in &mut servers {
                s.oc_remaining = weekly_allowance;
            }
        }
        // Delayed budget updates (fault injection) mature first: a message
        // sent during an earlier step finally lands.
        for s in servers.iter_mut() {
            if let Some((due, b)) = s.pending_budget {
                if t >= due {
                    s.budget = b;
                    s.pending_budget = None;
                }
            }
        }
        // gOA budget computation at this instant (heterogeneous or even).
        // While the fault plan marks the gOA unreachable no recomputation
        // happens: every server keeps enforcing its last-received budget —
        // the paper's stale-budget degraded mode (§III-Q5).
        let goa_down = faults.goa_unreachable(t);
        if goa_down != goa_was_down {
            goa_was_down = goa_down;
            if goa_down {
                degraded_decision = telemetry.next_id();
                tm_event!(telemetry, t, Component::Fault, Severity::Warn, "degraded_enter",
                    "rack" => rack.index,
                    "policy" => policy.name(),
                    "kind" => "goa_outage",
                    "decision_id" => degraded_decision,
                    "cause_id" => sim_decision);
            } else {
                tm_event!(telemetry, t, Component::Fault, Severity::Info, "degraded_exit",
                    "rack" => rack.index,
                    "policy" => policy.name(),
                    "stale_us" => epochs.staleness(t).unwrap_or(SimDuration::ZERO),
                    "cause_id" => degraded_decision);
                degraded_decision = 0;
            }
        }
        if goa_down {
            outcome.stale_budget_steps += 1;
        } else {
            let demands: Vec<DemandProfile> = trained
                .servers
                .iter()
                .map(|s| DemandProfile {
                    regular: Watts::new(s.template.predict(t).max(0.0)),
                    overclock_demand: Watts::new(s.demand_template.predict(t).max(0.0)),
                })
                .collect();
            let budgets = goa.budgets_for(&demands);
            epochs.mark_refresh(t);
            for (i, (s, b)) in servers.iter_mut().zip(&budgets).enumerate() {
                let entity = FaultPlan::entity_id(rack.index, i);
                if faults.drops_budget_update(t, entity) {
                    // Message lost: the server stays on its stale budget.
                    dropped_updates += 1;
                    continue;
                }
                let delay = faults.budget_update_delay(t, entity);
                if delay.is_zero() {
                    s.budget = *b;
                    s.pending_budget = None;
                } else {
                    delayed_updates += 1;
                    s.pending_budget = Some((t + delay, *b));
                }
            }
        }
        // Injected sOA restarts: volatile state is lost and the server
        // re-joins conservatively — no budget (admission denies until the
        // next refresh), no exploration state.
        for (i, s) in servers.iter_mut().enumerate() {
            let entity = FaultPlan::entity_id(rack.index, i);
            if faults.soa_restarts(t, entity) {
                s.budget = Watts::ZERO;
                s.pending_budget = None;
                s.explore_extra = Watts::ZERO;
                s.backoff_steps = 0;
                s.backoff_remaining = 0;
                outcome.restarts += 1;
                tm_event!(telemetry, t, Component::Fault, Severity::Warn, "fault_injected",
                    "rack" => rack.index,
                    "server" => i,
                    "kind" => "soa_restart",
                    "decision_id" => telemetry.next_id(),
                    "cause_id" => sim_decision);
            }
        }

        // --- Admission per server. ---
        let n = servers.len();
        let mut base_total = Watts::ZERO;
        let mut extras = vec![Watts::ZERO; n];
        let mut wanted = vec![false; n];
        let mut granted = vec![false; n];
        let mut central_total: Watts = rack
            .servers
            .iter()
            .map(|s| Watts::new(s.power.value_at(t).unwrap_or(0.0)))
            .sum();
        for i in 0..n {
            let trace = &rack.servers[i];
            let base = Watts::new(trace.power.value_at(t).unwrap_or(0.0));
            base_total += base;
            let demand_cores = trace.oc_demand_cores.value_at(t).unwrap_or(0.0);
            if demand_cores <= 0.0 {
                continue;
            }
            // Binned silicon: a bin-denied part never issues overclock
            // requests (its sOA knows the admission rule from its own risk
            // score); other parts request their risk-admitted level.
            let eff_freq = match &silicon {
                Some(s) => match s.eff.get(i).copied().flatten() {
                    Some(f) => f,
                    None => continue,
                },
                None => oc_freq,
            };
            // WI telemetry gap (fault injection): the sOA never sees this
            // window's demand, so no request is even issued.
            if faults.telemetry_gap(t, FaultPlan::entity_id(rack.index, i)) {
                telemetry_gaps += 1;
                continue;
            }
            wanted[i] = true;
            outcome.requests += 1;
            let util = trace.utilization.value_at(t).unwrap_or(0.5);
            let cores = (demand_cores as usize).min(model.cores());
            let extra = model.overclock_delta(util.clamp(0.0, 1.0), cores, eff_freq);
            // Lifetime check (all policies that check anything).
            if policy.admission_checked() && servers[i].oc_remaining < config.step {
                continue;
            }
            let admit = if !policy.admission_checked() {
                true
            } else if policy.is_central() {
                if goa_down {
                    // The central controller is the unreachable component:
                    // fail-open grants on stale permission, fail-stop denies.
                    config.central_fail_open
                } else {
                    // Oracle: actual rack draw including extras granted so
                    // far.
                    central_total + extra <= rack.limit
                }
            } else {
                // Decentralized check against the locally-held budget; the
                // fault plan may perturb the prediction (noise is a factor
                // of exactly 1.0 when unconfigured).
                let entity = FaultPlan::entity_id(rack.index, i);
                let predicted = Watts::new(
                    (trained.servers[i].template.predict(t) * faults.prediction_factor(t, entity))
                        .max(0.0),
                );
                predicted + extra <= servers[i].budget + servers[i].explore_extra
            };
            if admit {
                granted[i] = true;
                extras[i] = extra;
                central_total += extra;
                outcome.granted += 1;
                if policy.admission_checked() {
                    servers[i].oc_remaining = servers[i].oc_remaining.saturating_sub(config.step);
                }
            }
        }

        // --- Rack aggregation and enforcement. ---
        let mut draw = base_total + extras.iter().copied().sum::<Watts>();
        let mut perf = vec![0.0f64; n]; // effective speedup of demand servers
        let oc_ratio = oc_freq.ratio(plan.turbo());
        for i in 0..n {
            if wanted[i] {
                perf[i] = if granted[i] {
                    // Binned parts run at their risk-admitted level, so the
                    // speedup is that level's ratio over turbo (a pure
                    // division on hoisted operands — bit-identical to the
                    // columnar engine's per-bin ratio table).
                    match &silicon {
                        Some(s) => s
                            .eff
                            .get(i)
                            .copied()
                            .flatten()
                            .map_or(1.0, |f| f.ratio(plan.turbo())),
                        None => oc_ratio,
                    }
                } else {
                    1.0
                };
            }
        }
        // The monitor classifies the *pre-enforcement* draw: a step whose
        // uncontrolled demand hits the limit IS a capping event, even though
        // the capping mechanism immediately sheds load below it.
        // The monitor classifies the *pre-enforcement* draw: a step whose
        // uncontrolled demand hits the limit IS a capping event, even though
        // the capping mechanism then sheds load below it.
        let signal = monitor.observe(draw);
        // When the central baseline runs fail-open through an outage,
        // nothing enforces: stale permissions stand and the rack draw lands
        // wherever demand takes it — the budget-violation risk the
        // decentralized design avoids.
        let enforcement_disabled = goa_down && policy.is_central() && config.central_fail_open;
        let mut capped = false;
        if draw >= rack.limit && !enforcement_disabled {
            capped = true;
            // The capping transient hits the whole rack before the
            // controller untangles who to throttle: every server suffers a
            // frequency penalty proportional to the overshoot (this is the
            // paper's "Penalty on Power Cap" on non-overclocked VMs).
            let dynamic: Watts = rack
                .servers
                .iter()
                .map(|s| {
                    (Watts::new(s.power.value_at(t).unwrap_or(0.0)) - model.idle())
                        .clamp_non_negative()
                })
                .sum();
            let over = draw - rack.limit;
            let frac = if dynamic.get() > 0.0 {
                (over.get() / dynamic.get()).min(1.0)
            } else {
                0.0
            };
            // Dynamic power ~ f·V² ⇒ frequency penalty is sublinear.
            let freq_penalty = (1.0 - (1.0 - frac).powf(0.55)).max(0.02);
            outcome.record_penalty(freq_penalty);
            for p in perf.iter_mut() {
                *p *= 1.0 - freq_penalty;
            }
            // Enforcement then revokes overclock extras, largest first.
            let mut order: Vec<usize> = (0..n).filter(|&i| granted[i]).collect();
            order.sort_by(|&a, &b| extras[b].get().total_cmp(&extras[a].get()));
            for i in order {
                if draw < rack.limit {
                    break;
                }
                draw -= extras[i];
                extras[i] = Watts::ZERO;
                perf[i] = (1.0 - freq_penalty).min(perf[i]);
            }
            draw = draw.min(rack.limit * 0.98);
            tm_event!(telemetry, t, Component::Sim, Severity::Warn, "rack_capping",
                "rack" => rack.index,
                "policy" => policy.name(),
                "limit_w" => rack.limit.get(),
                "penalty" => freq_penalty,
                "decision_id" => telemetry.next_id(),
                "cause_id" => sim_decision);
        }
        if capped {
            outcome.capping_steps += 1;
        }
        // Post-enforcement safety audit: a draw still above the contracted
        // limit is a power-budget violation (the chaos suite pins this at
        // zero for every enforcing policy, under any fault plan).
        if draw > rack.limit {
            outcome.violation_steps += 1;
            tm_event!(telemetry, t, Component::Fault, Severity::Error, "budget_violation",
                "rack" => rack.index,
                "policy" => policy.name(),
                "draw_w" => draw.get(),
                "limit_w" => rack.limit.get(),
                "decision_id" => telemetry.next_id(),
                "cause_id" => sim_decision);
        }
        outcome.max_draw = outcome.max_draw.max(draw);
        telemetry.metrics(|m| {
            m.observe(
                "sim_rack_draw_w",
                &[("rack", rack.index.into())],
                draw.get(),
            );
        });

        // --- Exploration dynamics for the next step. ---
        let warning_now = signal == soc_power::rack::RackSignal::Warning;
        for i in 0..n {
            let s = &mut servers[i];
            if capped {
                s.explore_extra = Watts::ZERO;
                s.backoff_steps = (s.backoff_steps + 1).min(8);
                s.backoff_remaining = 1 << s.backoff_steps.min(6);
                continue;
            }
            if !policy.explores() {
                continue;
            }
            if warned_last_step && policy.heeds_warnings() && s.explore_extra > Watts::ZERO {
                s.explore_extra = (s.explore_extra - config.explore_step).clamp_non_negative();
                s.backoff_steps = (s.backoff_steps + 1).min(8);
                s.backoff_remaining = 1 << s.backoff_steps.min(6);
                continue;
            }
            if s.backoff_remaining > 0 {
                s.backoff_remaining -= 1;
                continue;
            }
            // Rejected for power this step? Explore a bigger budget.
            // Exploration is staggered across servers (each sOA's 30-second
            // explore window starts at a different phase) so a rack's
            // explorers do not all raise their budgets in the same step.
            let my_turn = (outcome.steps + i as u64).is_multiple_of(3);
            if wanted[i] && !granted[i] && my_turn && s.explore_extra < config.explore_cap {
                s.explore_extra = (s.explore_extra + config.explore_step).min(config.explore_cap);
            } else if granted[i] {
                s.backoff_steps = 0;
            }
        }
        warned_last_step = warning_now;

        // --- Performance bookkeeping. ---
        for i in 0..n {
            if wanted[i] {
                outcome.perf_sum += perf[i];
                outcome.perf_samples += 1;
            }
        }
        // Per-part wear accounting (heterogeneous fleets only): each server
        // granted this step ages at its hoisted part-scaled rate. Folded
        // left-to-right in server order, exactly like the columnar engine.
        if let Some(s) = &silicon {
            for ((was_granted, trace), rate) in granted.iter().zip(&rack.servers).zip(&s.wear) {
                if *was_granted {
                    let util = trace.utilization.value_at(t).unwrap_or(0.5);
                    outcome.wear_days += rate.at(util) * step_days;
                }
            }
        }
        outcome.steps += 1;
        t += config.step;
    }
    outcome.capping_events = monitor.capping_events();
    // Fault accounting rides in its own record so fault-free traces stay
    // byte-for-byte what they were before the faults layer existed.
    if !faults.is_noop() {
        tm_event!(telemetry, trace_end, Component::Fault, Severity::Info, "rack_fault_summary",
            "rack" => rack.index,
            "policy" => policy.name(),
            "outages" => faults.outages().len(),
            "stale_steps" => outcome.stale_budget_steps,
            "violation_steps" => outcome.violation_steps,
            "restarts" => outcome.restarts,
            "dropped_updates" => dropped_updates,
            "delayed_updates" => delayed_updates,
            "telemetry_gaps" => telemetry_gaps,
            "cause_id" => sim_decision);
    }
    tm_event!(telemetry, trace_end, Component::Sim, Severity::Info, "rack_sim_end",
        "rack" => rack.index,
        "policy" => policy.name(),
        "cause_id" => sim_decision,
        "steps" => outcome.steps,
        "requests" => outcome.requests,
        "granted" => outcome.granted,
        "capping_steps" => outcome.capping_steps,
        "capping_events" => outcome.capping_events);
    telemetry.metrics(|m| {
        let policy_label = [("policy", policy.name().into())];
        m.inc_counter_by("sim_requests", &policy_label, outcome.requests);
        m.inc_counter_by("sim_grants", &policy_label, outcome.granted);
        m.inc_counter_by("sim_capping_steps", &policy_label, outcome.capping_steps);
        if silicon.is_some() {
            m.inc_counter_by("sim_bin_denied", &policy_label, outcome.bin_denied);
            m.inc_counter_by("sim_down_binned", &policy_label, outcome.down_binned);
        }
    });
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: PolicyKind) -> Vec<RackOutcome> {
        simulate_policy(&LargeScaleConfig::small_test(), policy)
    }

    #[test]
    fn all_policies_produce_outcomes() {
        for policy in PolicyKind::ALL {
            let outcomes = run(policy);
            assert_eq!(outcomes.len(), 4);
            for o in &outcomes {
                assert!(o.steps > 0);
                assert!(o.granted <= o.requests);
            }
        }
    }

    #[test]
    fn naive_grants_everything() {
        let outcomes = run(PolicyKind::NaiveOClock);
        for o in &outcomes {
            assert_eq!(o.granted, o.requests, "NaiveOClock must grant all requests");
        }
    }

    #[test]
    fn naive_caps_at_least_as_much_as_smart() {
        let naive: u64 = run(PolicyKind::NaiveOClock)
            .iter()
            .map(|o| o.capping_events)
            .sum();
        let smart: u64 = run(PolicyKind::SmartOClock)
            .iter()
            .map(|o| o.capping_events)
            .sum();
        assert!(
            smart <= naive,
            "SmartOClock ({smart}) must not cap more than NaiveOClock ({naive})"
        );
    }

    #[test]
    fn central_never_caps() {
        // The oracle admits only what actually fits.
        let outcomes = run(PolicyKind::Central);
        let caps: u64 = outcomes.iter().map(|o| o.capping_events).sum();
        assert_eq!(caps, 0, "Central has a perfect view and should never cap");
    }

    #[test]
    fn smart_success_rate_at_least_nofeedback() {
        let agg = |p| PolicyMetrics::aggregate(p, &run(p));
        let smart = agg(PolicyKind::SmartOClock);
        let nofb = agg(PolicyKind::NoFeedback);
        assert!(
            smart.success_rate >= nofb.success_rate - 1e-9,
            "exploration should help: smart {} vs nofeedback {}",
            smart.success_rate,
            nofb.success_rate
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(PolicyKind::SmartOClock);
        let b = run(PolicyKind::SmartOClock);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.requests, y.requests);
            assert_eq!(x.granted, y.granted);
            assert_eq!(x.capping_events, y.capping_events);
        }
    }

    #[test]
    fn outage_marks_stale_steps_but_smart_never_violates() {
        let mut cfg = LargeScaleConfig::small_test();
        cfg.faults.goa_outages = 1;
        cfg.faults.goa_outage_len = SimDuration::from_hours(12);
        let outcomes = simulate_policy(&cfg, PolicyKind::SmartOClock);
        assert!(
            outcomes.iter().any(|o| o.stale_budget_steps > 0),
            "a 12h outage must leave stale-budget steps"
        );
        for o in &outcomes {
            assert_eq!(o.violation_steps, 0, "rack {} violated", o.rack);
            assert!(o.max_draw <= o.limit);
        }
    }

    #[test]
    fn zero_fault_config_matches_default_run() {
        let base = simulate_policy(&LargeScaleConfig::small_test(), PolicyKind::SmartOClock);
        // Same zero-probability plan under a different fault seed: the
        // timeline is empty either way, so outcomes are identical.
        let mut cfg = LargeScaleConfig::small_test();
        cfg.faults.seed = 999;
        let with_plan = simulate_policy(&cfg, PolicyKind::SmartOClock);
        assert_eq!(base, with_plan);
    }

    #[test]
    fn uniform_binning_config_matches_default_run() {
        let base = simulate_policy(&LargeScaleConfig::small_test(), PolicyKind::SmartOClock);
        // A uniform (single-bin, zero-spread) binning config is
        // byte-transparent no matter its seed or risk budget: the lottery
        // is degenerate, so outcomes are identical to the pre-binning run.
        let mut cfg = LargeScaleConfig::small_test();
        cfg.binning.seed = 999;
        cfg.binning.risk_budget = 0.25;
        let with_binning = simulate_policy(&cfg, PolicyKind::SmartOClock);
        assert_eq!(base, with_binning);
    }

    #[test]
    fn binned_fleet_reports_denials_and_wear() {
        let mut cfg = LargeScaleConfig::small_test();
        cfg.binning.bins = 8;
        cfg.binning.risk_budget = 0.2;
        cfg.binning.wear_spread = 0.3;
        cfg.binning.seed = 5;
        let outcomes = simulate_policy(&cfg, PolicyKind::SmartOClock);
        let denied: u64 = outcomes.iter().map(|o| o.bin_denied).sum();
        let down: u64 = outcomes.iter().map(|o| o.down_binned).sum();
        assert!(
            denied + down > 0,
            "aggressive binning must deny or down-bin some parts"
        );
        let wear: f64 = outcomes.iter().map(|o| o.wear_days).sum();
        assert!(wear > 0.0, "granted overclocking must accrue per-part wear");
        let m = PolicyMetrics::aggregate(PolicyKind::SmartOClock, &outcomes);
        assert_eq!(m.bin_denied, denied);
        assert_eq!(m.down_binned, down);
    }

    #[test]
    #[should_panic(expected = "at least one training")]
    fn rejects_single_week() {
        let mut cfg = LargeScaleConfig::small_test();
        cfg.weeks = 1;
        let _ = simulate_policy(&cfg, PolicyKind::SmartOClock);
    }
}

//! Trace-driven large-scale policy simulation (paper §V-B, Table I, Fig. 6).
//!
//! Replays synthetic production traces (rack/server baseline power + per-
//! server overclocking demand, 5-minute granularity) under the five policies
//! of Table I. The first trace week trains the per-server DailyMed power
//! templates and demand profiles; the remaining weeks are simulated:
//! admission per policy, per-step rack power aggregation, warnings at 95 %
//! of the limit, capping events with prioritized shedding (overclock extras
//! are revoked first, then non-overclocked servers are throttled), and the
//! exploration/backoff dynamics of SmartOClock and NoWarning.
//!
//! The paper's own evaluation also uses a purpose-built discrete-event
//! simulator here ("We develop a discrete event simulator to evaluate
//! SmartOClock", §V-B); the full agent implementation is exercised
//! end-to-end by the cluster harness instead.

pub use crate::largescale_metrics::{PolicyMetrics, RackOutcome};
use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use smartoclock::epoch::EpochTracker;
use smartoclock::policy::PolicyKind;
use soc_power::hierarchy::{heterogeneous_split, DemandProfile};
use soc_power::model::PowerModel;
use soc_power::rack::RackMonitor;
use soc_power::units::Watts;
use soc_predict::template::{PowerTemplate, TemplateKind};
use soc_telemetry::{tm_event, Component, Severity, Telemetry};
use soc_traces::fleet::RackTrace;
use soc_traces::gen::FleetConfig;

/// Configuration of the large-scale simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LargeScaleConfig {
    /// Number of racks to simulate.
    pub racks: usize,
    /// Trace length in weeks (week 1 trains the templates; the rest are
    /// evaluated). Must be at least 2.
    pub weeks: u64,
    /// Sampling/evaluation step.
    pub step: SimDuration,
    /// Servers per rack (min, max).
    pub servers_per_rack: (usize, usize),
    /// Overclocking lifetime budget as a fraction of time per epoch. Table I
    /// stresses *power* management, so the default (1.0) keeps lifetime from
    /// binding; the cluster harness's overclocking-constrained experiment
    /// covers restricted lifetime budgets instead.
    pub oc_time_fraction: f64,
    /// Exploration step in watts (SmartOClock/NoWarning).
    pub explore_step: Watts,
    /// Cap on cumulative exploration.
    pub explore_cap: Watts,
    /// RNG seed for trace generation.
    pub seed: u64,
}

impl LargeScaleConfig {
    /// A small configuration for unit tests.
    pub fn small_test() -> LargeScaleConfig {
        LargeScaleConfig {
            racks: 4,
            weeks: 2,
            step: SimDuration::from_minutes(15),
            servers_per_rack: (6, 8),
            oc_time_fraction: 1.0,
            explore_step: Watts::new(20.0),
            explore_cap: Watts::new(200.0),
            seed: 42,
        }
    }

    /// The bench-scale configuration: more racks, 5-minute steps, 3 weeks.
    pub fn bench_reference(racks: usize) -> LargeScaleConfig {
        LargeScaleConfig {
            racks,
            weeks: 3,
            step: SimDuration::from_minutes(5),
            servers_per_rack: (12, 16),
            oc_time_fraction: 1.0,
            explore_step: Watts::new(20.0),
            explore_cap: Watts::new(200.0),
            seed: 42,
        }
    }

    pub(crate) fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            region: "largescale".into(),
            racks: self.racks,
            servers_per_rack_min: self.servers_per_rack.0,
            servers_per_rack_max: self.servers_per_rack.1,
            span: SimDuration::WEEK * self.weeks,
            step: self.step,
            oc_core_fraction: 0.45,
            // Tighter than the fleet-wide default: Table I's clusters span
            // from comfortably provisioned (low-power) to power-constrained
            // (high-power), which a wider oversubscription range produces.
            oversubscription: (1.50, 2.15),
            outlier_day_prob: 0.03,
            intel_fraction: 0.4,
            vm_churn_weekly: 0.05,
            keep_server_series: true,
        }
    }
}

/// Per-server simulation state.
struct ServerState {
    template: PowerTemplate,
    demand_template: PowerTemplate,
    budget: Watts,
    explore_extra: Watts,
    backoff_steps: u32,
    backoff_remaining: u32,
    /// Remaining overclock time this week.
    oc_remaining: SimDuration,
}

/// Simulate one policy over a freshly generated fleet; returns per-rack
/// outcomes (aggregate into Table I rows with
/// [`PolicyMetrics::aggregate`]).
///
/// # Panics
/// Panics if `config.weeks < 2` or `config.racks == 0`.
pub fn simulate_policy(config: &LargeScaleConfig, policy: PolicyKind) -> Vec<RackOutcome> {
    simulate_policy_traced(config, policy, &Telemetry::disabled())
}

/// [`simulate_policy`] with telemetry: each rack emits `rack_sim_start` /
/// `rack_sim_end` events plus per-step `rack_capping` warnings under
/// [`Component::Sim`], and per-policy request/grant/capping counters.
///
/// Delegates to [`crate::shard::simulate_policy_sharded`] with a single
/// worker, so the serial path and the `--threads N` path are the same code
/// and byte-identical by construction (per-rack buffered telemetry with
/// deterministic id bases, merged in rack order).
///
/// # Panics
/// Panics if `config.weeks < 2` or `config.racks == 0`.
pub fn simulate_policy_traced(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    telemetry: &Telemetry,
) -> Vec<RackOutcome> {
    crate::shard::simulate_policy_sharded(config, policy, telemetry, 1)
}

/// Simulate one rack under one policy.
pub fn simulate_rack(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    rack: &RackTrace,
    model: &PowerModel,
) -> RackOutcome {
    simulate_rack_traced(config, policy, rack, model, &Telemetry::disabled())
}

/// [`simulate_rack`] with telemetry (see [`simulate_policy_traced`]).
pub fn simulate_rack_traced(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    rack: &RackTrace,
    model: &PowerModel,
    telemetry: &Telemetry,
) -> RackOutcome {
    let plan = model.plan();
    let oc_freq = plan.max_overclock();
    let train_end = SimTime::ZERO + SimDuration::WEEK;
    let trace_end = SimTime::ZERO + SimDuration::WEEK * config.weeks;
    let per_core_extra = |util: f64| model.overclock_delta(util.clamp(0.0, 1.0), 1, oc_freq);

    // --- Training: build templates from week 1. ---
    let weekly_allowance = SimDuration::WEEK.mul_f64(config.oc_time_fraction);
    let mut servers: Vec<ServerState> = rack
        .servers
        .iter()
        .map(|s| {
            let train_power = s.power.slice(SimTime::ZERO, train_end);
            let train_util = s.utilization.slice(SimTime::ZERO, train_end);
            let train_demand = s.oc_demand_cores.slice(SimTime::ZERO, train_end);
            // Demand in watts: cores × per-core delta at the typical
            // utilization of this server.
            let util = simcore::stats::mean(train_util.values());
            let demand_watts = train_demand.map(|cores| cores * per_core_extra(util).get());
            ServerState {
                template: PowerTemplate::build(&train_power, TemplateKind::DailyMed),
                demand_template: PowerTemplate::build(&demand_watts, TemplateKind::DailyMed),
                budget: Watts::ZERO,
                explore_extra: Watts::ZERO,
                backoff_steps: 0,
                backoff_remaining: 0,
                oc_remaining: weekly_allowance,
            }
        })
        .collect();

    let mut monitor = RackMonitor::new(rack.limit, 0.95);
    let mut outcome = RackOutcome::new(rack.index, rack.mean_utilization());
    let mut warned_last_step = false;
    let mut epochs = EpochTracker::weekly();
    let sim_decision = telemetry.next_id();
    tm_event!(telemetry, train_end, Component::Sim, Severity::Info, "rack_sim_start",
        "rack" => rack.index,
        "policy" => policy.name(),
        "servers" => rack.servers.len(),
        "limit_w" => rack.limit.get(),
        "decision_id" => sim_decision);

    let mut t = train_end;
    while t < trace_end {
        // Weekly epoch boundary: refresh lifetime allowances. This is the
        // only cross-step coupling point; between boundaries every rack
        // evolves independently, which is what lets the sharded engine
        // (`crate::shard`) deal whole racks across worker threads.
        if epochs.advance(t).is_some() {
            for s in &mut servers {
                s.oc_remaining = weekly_allowance;
            }
        }
        // gOA budget computation at this instant (heterogeneous or even).
        let demands: Vec<DemandProfile> = servers
            .iter()
            .map(|s| DemandProfile {
                regular: Watts::new(s.template.predict(t).max(0.0)),
                overclock_demand: Watts::new(s.demand_template.predict(t).max(0.0)),
            })
            .collect();
        let budgets = if policy.heterogeneous_budgets() {
            heterogeneous_split(rack.limit, &demands)
        } else {
            vec![rack.limit / servers.len() as f64; servers.len()]
        };
        for (s, b) in servers.iter_mut().zip(&budgets) {
            s.budget = *b;
        }

        // --- Admission per server. ---
        let n = servers.len();
        let mut base_total = Watts::ZERO;
        let mut extras = vec![Watts::ZERO; n];
        let mut wanted = vec![false; n];
        let mut granted = vec![false; n];
        let mut central_total: Watts = rack
            .servers
            .iter()
            .map(|s| Watts::new(s.power.value_at(t).unwrap_or(0.0)))
            .sum();
        for i in 0..n {
            let trace = &rack.servers[i];
            let base = Watts::new(trace.power.value_at(t).unwrap_or(0.0));
            base_total += base;
            let demand_cores = trace.oc_demand_cores.value_at(t).unwrap_or(0.0);
            if demand_cores <= 0.0 {
                continue;
            }
            wanted[i] = true;
            outcome.requests += 1;
            let util = trace.utilization.value_at(t).unwrap_or(0.5);
            let cores = (demand_cores as usize).min(model.cores());
            let extra = model.overclock_delta(util.clamp(0.0, 1.0), cores, oc_freq);
            // Lifetime check (all policies that check anything).
            if policy.admission_checked() && servers[i].oc_remaining < config.step {
                continue;
            }
            let admit = if !policy.admission_checked() {
                true
            } else if policy.is_central() {
                // Oracle: actual rack draw including extras granted so far.
                central_total + extra <= rack.limit
            } else {
                let predicted = Watts::new(servers[i].template.predict(t).max(0.0));
                predicted + extra <= servers[i].budget + servers[i].explore_extra
            };
            if admit {
                granted[i] = true;
                extras[i] = extra;
                central_total += extra;
                outcome.granted += 1;
                if policy.admission_checked() {
                    servers[i].oc_remaining = servers[i].oc_remaining.saturating_sub(config.step);
                }
            }
        }

        // --- Rack aggregation and enforcement. ---
        let mut draw = base_total + extras.iter().copied().sum::<Watts>();
        let mut perf = vec![0.0f64; n]; // effective speedup of demand servers
        let oc_ratio = oc_freq.ratio(plan.turbo());
        for i in 0..n {
            if wanted[i] {
                perf[i] = if granted[i] { oc_ratio } else { 1.0 };
            }
        }
        // The monitor classifies the *pre-enforcement* draw: a step whose
        // uncontrolled demand hits the limit IS a capping event, even though
        // the capping mechanism immediately sheds load below it.
        // The monitor classifies the *pre-enforcement* draw: a step whose
        // uncontrolled demand hits the limit IS a capping event, even though
        // the capping mechanism then sheds load below it.
        let signal = monitor.observe(draw);
        let mut capped = false;
        if draw >= rack.limit {
            capped = true;
            // The capping transient hits the whole rack before the
            // controller untangles who to throttle: every server suffers a
            // frequency penalty proportional to the overshoot (this is the
            // paper's "Penalty on Power Cap" on non-overclocked VMs).
            let dynamic: Watts = rack
                .servers
                .iter()
                .map(|s| {
                    (Watts::new(s.power.value_at(t).unwrap_or(0.0)) - model.idle())
                        .clamp_non_negative()
                })
                .sum();
            let over = draw - rack.limit;
            let frac = if dynamic.get() > 0.0 {
                (over.get() / dynamic.get()).min(1.0)
            } else {
                0.0
            };
            // Dynamic power ~ f·V² ⇒ frequency penalty is sublinear.
            let freq_penalty = (1.0 - (1.0 - frac).powf(0.55)).max(0.02);
            outcome.record_penalty(freq_penalty);
            for p in perf.iter_mut() {
                *p *= 1.0 - freq_penalty;
            }
            // Enforcement then revokes overclock extras, largest first.
            let mut order: Vec<usize> = (0..n).filter(|&i| granted[i]).collect();
            order.sort_by(|&a, &b| extras[b].get().total_cmp(&extras[a].get()));
            for i in order {
                if draw < rack.limit {
                    break;
                }
                draw -= extras[i];
                extras[i] = Watts::ZERO;
                perf[i] = (1.0 - freq_penalty).min(perf[i]);
            }
            draw = draw.min(rack.limit * 0.98);
            tm_event!(telemetry, t, Component::Sim, Severity::Warn, "rack_capping",
                "rack" => rack.index,
                "policy" => policy.name(),
                "limit_w" => rack.limit.get(),
                "penalty" => freq_penalty,
                "decision_id" => telemetry.next_id(),
                "cause_id" => sim_decision);
        }
        if capped {
            outcome.capping_steps += 1;
        }
        telemetry.metrics(|m| {
            m.observe(
                "sim_rack_draw_w",
                &[("rack", rack.index.into())],
                draw.get(),
            );
        });

        // --- Exploration dynamics for the next step. ---
        let warning_now = signal == soc_power::rack::RackSignal::Warning;
        for i in 0..n {
            let s = &mut servers[i];
            if capped {
                s.explore_extra = Watts::ZERO;
                s.backoff_steps = (s.backoff_steps + 1).min(8);
                s.backoff_remaining = 1 << s.backoff_steps.min(6);
                continue;
            }
            if !policy.explores() {
                continue;
            }
            if warned_last_step && policy.heeds_warnings() && s.explore_extra > Watts::ZERO {
                s.explore_extra = (s.explore_extra - config.explore_step).clamp_non_negative();
                s.backoff_steps = (s.backoff_steps + 1).min(8);
                s.backoff_remaining = 1 << s.backoff_steps.min(6);
                continue;
            }
            if s.backoff_remaining > 0 {
                s.backoff_remaining -= 1;
                continue;
            }
            // Rejected for power this step? Explore a bigger budget.
            // Exploration is staggered across servers (each sOA's 30-second
            // explore window starts at a different phase) so a rack's
            // explorers do not all raise their budgets in the same step.
            let my_turn = (outcome.steps + i as u64).is_multiple_of(3);
            if wanted[i] && !granted[i] && my_turn && s.explore_extra < config.explore_cap {
                s.explore_extra = (s.explore_extra + config.explore_step).min(config.explore_cap);
            } else if granted[i] {
                s.backoff_steps = 0;
            }
        }
        warned_last_step = warning_now;

        // --- Performance bookkeeping. ---
        for i in 0..n {
            if wanted[i] {
                outcome.perf_sum += perf[i];
                outcome.perf_samples += 1;
            }
        }
        outcome.steps += 1;
        t += config.step;
    }
    outcome.capping_events = monitor.capping_events();
    tm_event!(telemetry, trace_end, Component::Sim, Severity::Info, "rack_sim_end",
        "rack" => rack.index,
        "policy" => policy.name(),
        "cause_id" => sim_decision,
        "steps" => outcome.steps,
        "requests" => outcome.requests,
        "granted" => outcome.granted,
        "capping_steps" => outcome.capping_steps,
        "capping_events" => outcome.capping_events);
    telemetry.metrics(|m| {
        let policy_label = [("policy", policy.name().into())];
        m.inc_counter_by("sim_requests", &policy_label, outcome.requests);
        m.inc_counter_by("sim_grants", &policy_label, outcome.granted);
        m.inc_counter_by("sim_capping_steps", &policy_label, outcome.capping_steps);
    });
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: PolicyKind) -> Vec<RackOutcome> {
        simulate_policy(&LargeScaleConfig::small_test(), policy)
    }

    #[test]
    fn all_policies_produce_outcomes() {
        for policy in PolicyKind::ALL {
            let outcomes = run(policy);
            assert_eq!(outcomes.len(), 4);
            for o in &outcomes {
                assert!(o.steps > 0);
                assert!(o.granted <= o.requests);
            }
        }
    }

    #[test]
    fn naive_grants_everything() {
        let outcomes = run(PolicyKind::NaiveOClock);
        for o in &outcomes {
            assert_eq!(o.granted, o.requests, "NaiveOClock must grant all requests");
        }
    }

    #[test]
    fn naive_caps_at_least_as_much_as_smart() {
        let naive: u64 = run(PolicyKind::NaiveOClock)
            .iter()
            .map(|o| o.capping_events)
            .sum();
        let smart: u64 = run(PolicyKind::SmartOClock)
            .iter()
            .map(|o| o.capping_events)
            .sum();
        assert!(
            smart <= naive,
            "SmartOClock ({smart}) must not cap more than NaiveOClock ({naive})"
        );
    }

    #[test]
    fn central_never_caps() {
        // The oracle admits only what actually fits.
        let outcomes = run(PolicyKind::Central);
        let caps: u64 = outcomes.iter().map(|o| o.capping_events).sum();
        assert_eq!(caps, 0, "Central has a perfect view and should never cap");
    }

    #[test]
    fn smart_success_rate_at_least_nofeedback() {
        let agg = |p| PolicyMetrics::aggregate(p, &run(p));
        let smart = agg(PolicyKind::SmartOClock);
        let nofb = agg(PolicyKind::NoFeedback);
        assert!(
            smart.success_rate >= nofb.success_rate - 1e-9,
            "exploration should help: smart {} vs nofeedback {}",
            smart.success_rate,
            nofb.success_rate
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(PolicyKind::SmartOClock);
        let b = run(PolicyKind::SmartOClock);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.requests, y.requests);
            assert_eq!(x.granted, y.granted);
            assert_eq!(x.capping_events, y.capping_events);
        }
    }

    #[test]
    #[should_panic(expected = "at least one training")]
    fn rejects_single_week() {
        let mut cfg = LargeScaleConfig::small_test();
        cfg.weeks = 1;
        let _ = simulate_policy(&cfg, PolicyKind::SmartOClock);
    }
}

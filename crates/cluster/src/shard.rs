//! Rack-sharded parallel execution of the large-scale simulation.
//!
//! Racks in [`crate::largescale`] interact only at gOA epoch boundaries, and
//! each rack's trace is generated from an independent `Pcg32` stream derived
//! from `(seed, rack_id)` ([`soc_traces::gen::TraceGenerator::generate_rack`]),
//! so whole racks can run on worker threads between epochs. This module
//! deals racks across a [`simcore::par`] worker pool and merges results in
//! canonical rack order, preserving the workspace's byte-identical-per-seed
//! guarantee: `--threads N` output is identical to `--threads 1`.
//!
//! Three things make the merge exact rather than best-effort:
//!
//! 1. **Per-shard RNG**: rack traces never share generator state; the
//!    generator derives a fresh stream per rack index.
//! 2. **Per-shard telemetry**: each rack simulates into a buffered
//!    [`Telemetry`] handle ([`Telemetry::buffered`]) whose decision-id
//!    counter starts at a deterministic base ([`shard_id_base`]) instead of
//!    a shared atomic — so `decision_id`/`cause_id` fields are a pure
//!    function of `(run, rack)`, not of scheduling.
//! 3. **Canonical merge**: after the join, shard buffers are replayed into
//!    the real handle in rack order ([`Telemetry::absorb`]): events append
//!    in the order a serial run would emit them, counters add, and
//!    histograms merge bucket-wise.

use crate::harness::{ClusterConfig, ClusterResult, ClusterSim};
use crate::largescale::{
    simulate_rack_probed, simulate_rack_reference, simulate_rack_trained_probed, train_rack,
    LargeScaleConfig, TrainedRack,
};
use crate::largescale_metrics::RackOutcome;
use crate::probe::{NoopProbe, ShardProbe};
use simcore::par;
use smartoclock::policy::PolicyKind;
use soc_power::model::PowerModel;
use soc_telemetry::{MetricsSnapshot, Telemetry};
use soc_traces::fleet::RackTrace;
use soc_traces::gen::TraceGenerator;

/// Decision-id bit layout for shard-local telemetry handles:
/// `run_id << 44 | (shard + 1) << 24 | local`, giving every shard of every
/// traced run a disjoint id range (16M local ids per shard, ~1M shards per
/// run) without any cross-thread coordination. `run_id` comes from the
/// outer handle's counter *before* the fan-out, so it is identical for
/// every thread count.
const RUN_SHIFT: u32 = 44;
const SHARD_SHIFT: u32 = 24;

/// Deterministic id base for shard `shard` of traced run `run_id`.
pub fn shard_id_base(run_id: u64, shard: usize) -> u64 {
    (run_id << RUN_SHIFT) | ((shard as u64 + 1) << SHARD_SHIFT)
}

/// [`crate::largescale::simulate_policy_traced`] across `threads` workers.
///
/// Racks are dealt round-robin over the worker pool; every rack simulates
/// against its own generated trace and buffered telemetry, and outcomes,
/// events, and metrics are merged back in rack order. Output — return
/// value, event stream, and metrics registry contents — is byte-identical
/// for every `threads` value (`0` means [`par::available_parallelism`]).
///
/// # Panics
/// Panics if `config.weeks < 2` or `config.racks == 0`.
pub fn simulate_policy_sharded(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    telemetry: &Telemetry,
    threads: usize,
) -> Vec<RackOutcome> {
    simulate_policy_sharded_probed(config, policy, telemetry, threads, &NoopProbe)
}

/// [`simulate_policy_sharded`] with performance observation hooks.
///
/// The probe sees flat spans — `"shard/trace_gen"` and `"shard/sim"` per
/// rack on the worker side, one `"merge"` span around the canonical-order
/// absorb — plus `racks` / `merged_events` / `sim_steps` counters. Probing
/// is strictly one-way: nothing the probe returns reaches simulation state,
/// so a probed run emits byte-identical traces, metrics, and outcomes to a
/// [`NoopProbe`] run at every thread count (pinned by `tests/prof.rs`).
///
/// # Panics
/// Panics if `config.weeks < 2` or `config.racks == 0`.
pub fn simulate_policy_sharded_probed(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    telemetry: &Telemetry,
    threads: usize,
    probe: &dyn ShardProbe,
) -> Vec<RackOutcome> {
    validate(config);
    let generator = TraceGenerator::new(config.seed);
    let fleet_cfg = config.fleet_config();
    // The streaming path: each worker generates, trains, and simulates its
    // rack and drops the trace immediately — memory stays bounded by the
    // worker count, not the fleet size (the 100k-rack smoke test rides on
    // this). Multi-policy drivers amortize generation with
    // [`generate_fleet`] + [`simulate_policy_prepared`] instead.
    drive_sharded(
        threads,
        (0..config.racks).collect(),
        telemetry,
        probe,
        |r, _, local, probe| {
            let gen_span = probe.span("shard/trace_gen");
            let rack = generator.generate_rack(&fleet_cfg, r);
            let model = generator.model_for(rack.generation);
            drop(gen_span);
            let sim_span = probe.span("shard/sim");
            let outcome = simulate_rack_probed(config, policy, &rack, &model, local, probe);
            drop(sim_span);
            outcome
        },
    )
}

/// Weeks/racks/binning validation shared by every large-scale entry point.
fn validate(config: &LargeScaleConfig) {
    assert!(
        config.weeks >= 2,
        "need at least one training and one evaluation week"
    );
    assert!(config.racks > 0, "need at least one rack");
    config.binning.validate();
}

/// The deterministic fan-out/merge skeleton shared by every sharded
/// large-scale path (streaming, pre-generated, reference): allocates the run
/// id serially before the fan-out, gives each rack a buffered telemetry
/// handle with a deterministic id base, and replays shard buffers in
/// canonical rack order — so the output byte-stream is a pure function of
/// `(config, policy)`, never of `threads`.
fn drive_sharded<I, F>(
    threads: usize,
    items: Vec<I>,
    telemetry: &Telemetry,
    probe: &dyn ShardProbe,
    sim: F,
) -> Vec<RackOutcome>
where
    I: Send,
    F: Fn(usize, I, &Telemetry, &dyn ShardProbe) -> RackOutcome + Sync,
{
    let n = items.len();
    // Allocate the run id serially, before the fan-out: thread-count
    // independent by construction (0 when telemetry is disabled).
    let run_id = telemetry.next_id();
    let enabled = telemetry.is_enabled();
    let sharded = par::par_map(threads, items, |r, item| {
        if enabled {
            let (local, sink) = Telemetry::buffered(shard_id_base(run_id, r));
            let outcome = sim(r, item, &local, probe);
            (outcome, sink.events(), local.metrics_snapshot())
        } else {
            let disabled = Telemetry::disabled();
            let outcome = sim(r, item, &disabled, probe);
            (outcome, Vec::new(), MetricsSnapshot::default())
        }
    });
    probe.add("racks", n as u64);
    let merge_span = probe.span("merge");
    let outcomes = sharded
        .into_iter()
        .map(|(outcome, events, metrics)| {
            probe.add("merged_events", events.len() as u64);
            // Feed events to the probe here, in canonical rack order on the
            // merge thread, so event-observing probes (health recorders) see
            // a deterministic sequence at every thread count.
            for e in &events {
                probe.event(e);
            }
            telemetry.absorb(&events, &metrics);
            outcome
        })
        .collect();
    drop(merge_span);
    outcomes
}

/// A fleet's traces and power models, generated once and shared across
/// policy variants and benchmark legs (the `par_speedup` methodology fix:
/// trace generation used to run inside every timed path and dominated it).
#[derive(Debug, Clone)]
pub struct FleetTraces {
    racks: Vec<(RackTrace, PowerModel)>,
}

impl FleetTraces {
    /// Number of racks.
    pub fn len(&self) -> usize {
        self.racks.len()
    }

    /// `true` when the fleet holds no racks.
    pub fn is_empty(&self) -> bool {
        self.racks.is_empty()
    }

    /// Iterate over `(trace, model)` pairs in rack order.
    pub fn iter(&self) -> impl Iterator<Item = &(RackTrace, PowerModel)> {
        self.racks.iter()
    }
}

/// Week-1 training output for a whole fleet (see
/// [`crate::largescale::TrainedRack`]), reusable across policy variants.
#[derive(Debug, Clone)]
pub struct TrainedFleet {
    racks: Vec<TrainedRack>,
}

impl TrainedFleet {
    /// Trained racks in rack order.
    pub fn racks(&self) -> &[TrainedRack] {
        &self.racks
    }
}

/// Generate every rack's trace exactly once, dealt across `threads` workers
/// (each rack's trace derives from an independent seeded stream, so
/// generation order is irrelevant to the bytes produced).
///
/// # Panics
/// Panics if `config.weeks < 2` or `config.racks == 0`.
pub fn generate_fleet(config: &LargeScaleConfig, threads: usize) -> FleetTraces {
    generate_fleet_probed(config, threads, &NoopProbe)
}

/// [`generate_fleet`] with performance observation hooks
/// (`"shard/trace_gen"` per rack).
///
/// # Panics
/// Panics if `config.weeks < 2` or `config.racks == 0`.
pub fn generate_fleet_probed(
    config: &LargeScaleConfig,
    threads: usize,
    probe: &dyn ShardProbe,
) -> FleetTraces {
    validate(config);
    let generator = TraceGenerator::new(config.seed);
    let fleet_cfg = config.fleet_config();
    let racks = par::par_map(threads, (0..config.racks).collect(), |_, r| {
        let gen_span = probe.span("shard/trace_gen");
        let rack = generator.generate_rack(&fleet_cfg, r);
        let model = generator.model_for(rack.generation);
        drop(gen_span);
        (rack, model)
    });
    FleetTraces { racks }
}

/// Train every rack's templates once (`"rack/setup"` per rack), for reuse
/// across policy variants: templates depend on the trace, the model, and
/// `config.faults.prediction_bias` — not on the policy.
pub fn train_fleet_probed(
    config: &LargeScaleConfig,
    fleet: &FleetTraces,
    threads: usize,
    probe: &dyn ShardProbe,
) -> TrainedFleet {
    let racks = par::par_map(threads, fleet.racks.iter().collect(), |_, (rack, model)| {
        let setup_span = probe.span("rack/setup");
        let trained = train_rack(config, rack, model);
        drop(setup_span);
        trained
    });
    TrainedFleet { racks }
}

/// [`simulate_policy_sharded_probed`] over a pre-generated fleet and
/// pre-trained templates: the pure-simulation path (columnar engine, no
/// generation or training inside), byte-identical to the streaming path for
/// the same `(config, policy)`.
///
/// # Panics
/// Panics if `fleet` and `trained` disagree on the rack count.
pub fn simulate_policy_prepared_probed(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    fleet: &FleetTraces,
    trained: &TrainedFleet,
    telemetry: &Telemetry,
    threads: usize,
    probe: &dyn ShardProbe,
) -> Vec<RackOutcome> {
    validate(config);
    assert_eq!(
        fleet.racks.len(),
        trained.racks.len(),
        "fleet and trained rack counts must match"
    );
    let items: Vec<(&(RackTrace, PowerModel), &TrainedRack)> =
        fleet.racks.iter().zip(trained.racks.iter()).collect();
    drive_sharded(
        threads,
        items,
        telemetry,
        probe,
        |_, ((rack, model), tr), local, probe| {
            let sim_span = probe.span("shard/sim");
            let outcome =
                simulate_rack_trained_probed(config, policy, rack, model, tr, local, probe);
            drop(sim_span);
            outcome
        },
    )
}

/// [`simulate_policy_prepared_probed`] without pre-trained templates:
/// trains inside each worker (`"rack/setup"` spans), for drivers whose
/// fault plans (and therefore prediction bias) vary between runs but whose
/// traces do not (`exp_fault_tolerance`).
pub fn simulate_policy_on_traces_probed(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    fleet: &FleetTraces,
    telemetry: &Telemetry,
    threads: usize,
    probe: &dyn ShardProbe,
) -> Vec<RackOutcome> {
    validate(config);
    drive_sharded(
        threads,
        fleet.racks.iter().collect(),
        telemetry,
        probe,
        |_, (rack, model), local, probe| {
            let setup_span = probe.span("rack/setup");
            let trained = train_rack(config, rack, model);
            drop(setup_span);
            let sim_span = probe.span("shard/sim");
            let outcome =
                simulate_rack_trained_probed(config, policy, rack, model, &trained, local, probe);
            drop(sim_span);
            outcome
        },
    )
}

/// The retained row-oriented reference engine over the same pre-generated
/// fleet and trained templates, serial by construction. `par_speedup` times
/// this against [`simulate_policy_prepared_probed`] (the committed
/// `speedup`), and `tests/equivalence.rs` pins byte-identity between the
/// two engines; both consume identical inputs, so any divergence is an
/// engine bug, never a data difference.
///
/// # Panics
/// Panics if `fleet` and `trained` disagree on the rack count.
pub fn simulate_policy_prepared_reference(
    config: &LargeScaleConfig,
    policy: PolicyKind,
    fleet: &FleetTraces,
    trained: &TrainedFleet,
    telemetry: &Telemetry,
) -> Vec<RackOutcome> {
    validate(config);
    assert_eq!(
        fleet.racks.len(),
        trained.racks.len(),
        "fleet and trained rack counts must match"
    );
    let items: Vec<(&(RackTrace, PowerModel), &TrainedRack)> =
        fleet.racks.iter().zip(trained.racks.iter()).collect();
    drive_sharded(
        1,
        items,
        telemetry,
        &NoopProbe,
        |_, ((rack, model), tr), local, _| {
            simulate_rack_reference(config, policy, rack, model, tr, local)
        },
    )
}

/// Run several independent closed-loop cluster simulations across `threads`
/// workers (the harness-level driver behind `--threads` in experiment
/// binaries that compare systems, e.g. `exp_power_constrained`).
///
/// Each simulation gets a buffered telemetry handle with a deterministic id
/// base; buffers merge into `telemetry` in input order, so traces read as if
/// the simulations had run back to back on one thread.
pub fn run_cluster_sims(
    configs: Vec<ClusterConfig>,
    telemetry: &Telemetry,
    threads: usize,
) -> Vec<ClusterResult> {
    run_cluster_sims_probed(configs, telemetry, threads, &NoopProbe)
}

/// [`run_cluster_sims`] with performance observation hooks (`"shard/sim"`
/// per simulation, `"merge"` around the absorb, a `cluster_sims` counter).
pub fn run_cluster_sims_probed(
    configs: Vec<ClusterConfig>,
    telemetry: &Telemetry,
    threads: usize,
    probe: &dyn ShardProbe,
) -> Vec<ClusterResult> {
    let run_id = telemetry.next_id();
    let enabled = telemetry.is_enabled();
    probe.add("cluster_sims", configs.len() as u64);
    let results = par::par_map(threads, configs, |i, cfg| {
        let sim_span = probe.span("shard/sim");
        let result = if enabled {
            let (local, sink) = Telemetry::buffered(shard_id_base(run_id, i));
            let result = ClusterSim::with_telemetry(cfg, local.clone()).run();
            (result, sink.events(), local.metrics_snapshot())
        } else {
            (
                ClusterSim::new(cfg).run(),
                Vec::new(),
                MetricsSnapshot::default(),
            )
        };
        drop(sim_span);
        result
    });
    let merge_span = probe.span("merge");
    let merged = results
        .into_iter()
        .map(|(result, events, metrics)| {
            probe.add("merged_events", events.len() as u64);
            // Canonical-order event feed for event-observing probes, as in
            // `simulate_policy_sharded_probed`.
            for e in &events {
                probe.event(e);
            }
            telemetry.absorb(&events, &metrics);
            result
        })
        .collect();
    drop(merge_span);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_telemetry::json::event_to_json;

    fn config() -> LargeScaleConfig {
        LargeScaleConfig::small_test()
    }

    /// Render a traced run as (JSONL trace, metrics dump) for byte compare.
    fn traced_run(threads: usize) -> (String, String, Vec<RackOutcome>) {
        let (tm, sink) = Telemetry::memory();
        let outcomes = simulate_policy_sharded(&config(), PolicyKind::SmartOClock, &tm, threads);
        let trace: String = sink
            .events()
            .iter()
            .map(|e| {
                let mut line = event_to_json(e);
                line.push('\n');
                line
            })
            .collect();
        (trace, tm.metrics_snapshot().render(), outcomes)
    }

    #[test]
    fn outcomes_match_serial_reference() {
        let serial = crate::largescale::simulate_policy(&config(), PolicyKind::SmartOClock);
        let sharded = simulate_policy_sharded(
            &config(),
            PolicyKind::SmartOClock,
            &Telemetry::disabled(),
            4,
        );
        assert_eq!(serial.len(), sharded.len());
        for (a, b) in serial.iter().zip(&sharded) {
            assert_eq!(a.rack, b.rack);
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.granted, b.granted);
            assert_eq!(a.capping_steps, b.capping_steps);
            assert_eq!(a.capping_events, b.capping_events);
        }
    }

    #[test]
    fn trace_and_metrics_are_thread_count_invariant() {
        let (trace_1, metrics_1, outcomes_1) = traced_run(1);
        for threads in [2, 4] {
            let (trace_n, metrics_n, outcomes_n) = traced_run(threads);
            assert_eq!(trace_1, trace_n, "threads={threads} trace diverged");
            assert_eq!(metrics_1, metrics_n, "threads={threads} metrics diverged");
            assert_eq!(outcomes_1.len(), outcomes_n.len());
        }
        assert!(!trace_1.is_empty());
        assert!(trace_1.contains("rack_sim_start"));
    }

    #[test]
    fn shard_id_bases_are_disjoint_and_ordered() {
        let bases: Vec<u64> = (0..100).map(|s| shard_id_base(1, s)).collect();
        for pair in bases.windows(2) {
            assert!(
                pair[1] - pair[0] >= 1 << SHARD_SHIFT,
                "shards must have disjoint id ranges"
            );
        }
        assert!(shard_id_base(2, 0) > shard_id_base(1, 99));
    }

    #[test]
    fn parallel_cluster_sims_match_serial_traces() {
        use crate::harness::SystemKind;
        let configs = || {
            vec![
                ClusterConfig::small_test(SystemKind::NaiveOClock),
                ClusterConfig::small_test(SystemKind::SmartOClock),
            ]
        };
        let run = |threads: usize| {
            let (tm, sink) = Telemetry::memory();
            let results = run_cluster_sims(configs(), &tm, threads);
            let trace: String = sink.events().iter().map(event_to_json).collect();
            (trace, tm.metrics_snapshot().render(), results.len())
        };
        let (trace_1, metrics_1, n_1) = run(1);
        let (trace_2, metrics_2, n_2) = run(2);
        assert_eq!(n_1, 2);
        assert_eq!(n_1, n_2);
        assert_eq!(trace_1, trace_2);
        assert_eq!(metrics_1, metrics_2);
        assert!(!trace_1.is_empty());
    }
}

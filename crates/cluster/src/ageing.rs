//! The overclocking policies of Fig. 7, evaluated with the wear model.
//!
//! Fig. 7 plots cumulative CPU ageing of a diurnal production workload under
//! four lines: *Expected ageing* (the vendor reference: one day per day),
//! *Non-overclocked*, *Always overclock*, and an *Overclock-aware* policy
//! that spends only the credits the baseline accrues.

use serde::{Deserialize, Serialize};
use simcore::series::TimeSeries;
use soc_power::units::MegaHertz;
use soc_reliability::wear::WearModel;

/// The four Fig. 7 policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AgeingPolicy {
    /// Vendor reference: ages one day per wall-clock day.
    Expected,
    /// Run at turbo always.
    NonOverclocked,
    /// Run at the max overclock always.
    AlwaysOverclock,
    /// Overclock only while utilization is above `threshold` *and* the
    /// accumulated credit is positive.
    OverclockAware {
        /// Utilization above which the workload benefits from overclocking.
        threshold: f64,
    },
}

impl AgeingPolicy {
    /// Display name matching Fig. 7's legend.
    pub fn name(self) -> &'static str {
        match self {
            AgeingPolicy::Expected => "Expected ageing",
            AgeingPolicy::NonOverclocked => "Non-overclocked",
            AgeingPolicy::AlwaysOverclock => "Always overclock",
            AgeingPolicy::OverclockAware { .. } => "Overclock-aware",
        }
    }
}

/// Cumulative ageing (in days) after each sample of `utilization`, under the
/// given policy. The overclock-aware policy tracks its credit online and
/// stops overclocking whenever spending would push ageing past expected.
///
/// # Panics
/// Panics if the utilization series is empty.
pub fn cumulative_ageing(
    model: &WearModel,
    utilization: &TimeSeries,
    policy: AgeingPolicy,
) -> Vec<f64> {
    assert!(!utilization.is_empty(), "need a utilization trace");
    let plan = model.curve().plan();
    let temp = model.reference_temp_c();
    let dt = utilization.step();
    let dt_days = dt.as_days_f64();
    let mut total = 0.0;
    let mut elapsed = 0.0;
    let mut out = Vec::with_capacity(utilization.len());
    for (_, u) in utilization.iter() {
        let u = u.clamp(0.0, 1.0);
        elapsed += dt_days;
        let rate = match policy {
            AgeingPolicy::Expected => 1.0,
            AgeingPolicy::NonOverclocked => model.ageing_rate(u, plan.turbo(), temp),
            AgeingPolicy::AlwaysOverclock => model.ageing_rate(u, plan.max_overclock(), temp),
            AgeingPolicy::OverclockAware { threshold } => {
                let credit = elapsed - total;
                let oc_rate = model.ageing_rate(u, plan.max_overclock(), temp);
                if u >= threshold && credit > oc_rate * dt_days {
                    oc_rate
                } else {
                    model.ageing_rate(u, plan.turbo(), temp)
                }
            }
        };
        total += rate * dt_days;
        out.push(total);
    }
    out
}

/// Fraction of samples the overclock-aware policy actually overclocked.
pub fn overclock_aware_duty_cycle(
    model: &WearModel,
    utilization: &TimeSeries,
    threshold: f64,
) -> f64 {
    let plan = model.curve().plan();
    let temp = model.reference_temp_c();
    let dt_days = utilization.step().as_days_f64();
    let mut total = 0.0;
    let mut elapsed = 0.0;
    let mut oc_samples = 0usize;
    for (_, u) in utilization.iter() {
        let u = u.clamp(0.0, 1.0);
        elapsed += dt_days;
        let credit = elapsed - total;
        let oc_rate = model.ageing_rate(u, plan.max_overclock(), temp);
        let rate = if u >= threshold && credit > oc_rate * dt_days {
            oc_samples += 1;
            oc_rate
        } else {
            model.ageing_rate(u, plan.turbo(), temp)
        };
        total += rate * dt_days;
    }
    oc_samples as f64 / utilization.len() as f64
}

/// The diurnal utilization trace Fig. 7 describes: "daily midday peaks above
/// 50% and valleys lower than 20% at night", sampled every 5 minutes for
/// `days` days.
pub fn fig7_utilization(days: u64) -> TimeSeries {
    use simcore::time::{SimDuration, SimTime};
    TimeSeries::generate(
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_days(days),
        SimDuration::from_minutes(5),
        |t| {
            let h = t.time_of_day().as_hours_f64();
            // Smooth midday bump peaking at ~0.65 around 13:00, valley ~0.15.
            let bump = (-((h - 13.0) / 4.5).powi(2)).exp();
            0.15 + 0.50 * bump
        },
    )
}

/// Convenience: frequency used for the overclocked policies.
pub fn overclock_frequency(model: &WearModel) -> MegaHertz {
    model.curve().plan().max_overclock()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WearModel {
        WearModel::default()
    }

    #[test]
    fn fig7_ordering_holds() {
        // Fig. 7: non-OC < expected < always-OC, and OC-aware ≤ expected.
        let m = model();
        let util = fig7_utilization(5);
        let last = |p| *cumulative_ageing(&m, &util, p).last().unwrap();
        let expected = last(AgeingPolicy::Expected);
        let non_oc = last(AgeingPolicy::NonOverclocked);
        let always = last(AgeingPolicy::AlwaysOverclock);
        let aware = last(AgeingPolicy::OverclockAware { threshold: 0.5 });
        assert!((expected - 5.0).abs() < 1e-9);
        assert!(
            non_oc < 0.6 * expected,
            "non-OC {non_oc} vs expected {expected}"
        );
        assert!(
            always > expected,
            "always-OC {always} must exceed expected {expected}"
        );
        assert!(
            aware <= expected + 1e-9,
            "OC-aware {aware} must not exceed expected"
        );
        assert!(
            aware > non_oc,
            "OC-aware spends credits, so it ages more than non-OC"
        );
    }

    #[test]
    fn overclock_aware_has_meaningful_duty_cycle() {
        let m = model();
        let util = fig7_utilization(5);
        let duty = overclock_aware_duty_cycle(&m, &util, 0.5);
        assert!(duty > 0.05 && duty < 0.5, "duty cycle {duty}");
    }

    #[test]
    fn cumulative_series_is_monotone() {
        let m = model();
        let util = fig7_utilization(2);
        for policy in [
            AgeingPolicy::Expected,
            AgeingPolicy::NonOverclocked,
            AgeingPolicy::AlwaysOverclock,
            AgeingPolicy::OverclockAware { threshold: 0.5 },
        ] {
            let series = cumulative_ageing(&m, &util, policy);
            assert_eq!(series.len(), util.len());
            for w in series.windows(2) {
                assert!(w[1] >= w[0], "{} must be monotone", policy.name());
            }
        }
    }

    #[test]
    fn names_match_legend() {
        assert_eq!(AgeingPolicy::Expected.name(), "Expected ageing");
        assert_eq!(
            AgeingPolicy::OverclockAware { threshold: 0.5 }.name(),
            "Overclock-aware"
        );
    }
}

//! # soc-cluster — experiment harnesses
//!
//! Binds the substrates (`soc-power`, `soc-workloads`, `soc-traces`,
//! `soc-predict`, `soc-reliability`) and the `smartoclock` agents into the
//! two evaluation tracks of the paper:
//!
//! * [`envs`] — single-service environment runners: *Baseline*, *Overclock*,
//!   and *ScaleOut* (Figs. 2–3), plus the RPS-sweep used for the production
//!   service results (Figs. 16–17).
//! * [`harness`] — the closed-loop cluster simulation standing in for the
//!   36-server overclockable cluster (§V-A): SocialNet instances with
//!   latency-driven Workload Intelligence, MLTrain on the power-hungry
//!   servers, rack power monitoring with warnings and prioritized capping,
//!   autoscaling environments (*Baseline*, *ScaleOut*, *ScaleUp*,
//!   *SmartOClock*, *NaiveOClock*), energy and cost accounting
//!   (Figs. 12–14, power- and overclocking-constrained experiments).
//! * [`largescale`] — the trace-driven discrete-event simulation of §V-B:
//!   hundreds of racks replaying synthetic production traces under the five
//!   policies of Table I, counting power-capping events, overclocking
//!   success rates, capping penalties, and normalized performance.
//! * [`columns`] — the columnar (struct-of-arrays) production engine behind
//!   [`largescale`]'s per-rack hot path: per-server control state as
//!   parallel columns, batched template/sample lookups hoisted out of the
//!   inner loop, reused per-step buffers, byte-identical to the retained
//!   row-oriented reference engine.
//! * [`shard`] — rack-sharded parallel execution of the large-scale sim:
//!   racks dealt across a `simcore::par` worker pool with per-shard RNG
//!   streams and buffered telemetry, merged in canonical rack order so
//!   `--threads N` runs are byte-identical to `--threads 1`; plus
//!   fleet-trace pre-generation ([`shard::generate_fleet`]) so multi-policy
//!   drivers generate each rack's trace exactly once per run.
//! * [`probe`] — pure observation hooks ([`probe::ShardProbe`]) that let
//!   bench binaries attach wall-clock phase timing to the sharded engine
//!   without this crate ever reading a clock (soc-lint D002).
//! * [`ageing`] — the overclocking policies of Fig. 7 (non-overclocked,
//!   always-overclock, overclock-aware) evaluated over a utilization trace
//!   with the `soc-reliability` wear model.
//! * [`datacenter`] — extension: the §IV-C budget split applied recursively
//!   at the datacenter level (flat vs. nested enforcement on a shared feed).

#![forbid(unsafe_code)]

pub mod ageing;
pub mod columns;
pub mod datacenter;
pub mod envs;
pub mod harness;
pub mod largescale;
pub mod largescale_metrics;
pub mod probe;
pub mod shard;

pub use envs::{run_environment, Environment, ServiceRunResult};
pub use harness::{ClusterConfig, ClusterResult, ClusterSim, SystemKind};
pub use largescale::{simulate_policy, LargeScaleConfig, PolicyMetrics};
pub use probe::{NoopProbe, ShardProbe};
pub use shard::{
    generate_fleet, generate_fleet_probed, run_cluster_sims, run_cluster_sims_probed,
    simulate_policy_on_traces_probed, simulate_policy_prepared_probed,
    simulate_policy_prepared_reference, simulate_policy_sharded, simulate_policy_sharded_probed,
    train_fleet_probed, FleetTraces, TrainedFleet,
};

//! Single-service environment runners (Figs. 2, 3, 16, 17).
//!
//! "We run eight SocialNet microservices under varying loads (low, medium,
//! and high) in three environments: Baseline, Overclock, and ScaleOut.
//! Baseline and Overclock run a single VM at turbo (3.3 GHz) and overclocked
//! (4.0 GHz) frequency. ScaleOut has two VMs running at turbo." (§III-Q1)

use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use soc_power::freq::FrequencyPlan;
use soc_power::units::MegaHertz;
use soc_workloads::loadgen::RateSchedule;
use soc_workloads::microservice::{MicroserviceSim, ServiceSpec};
use soc_workloads::socialnet::LoadLevel;

/// The three environments of Figs. 2–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// One VM at max turbo.
    Baseline,
    /// One VM overclocked to the max overclocking frequency.
    Overclock,
    /// Two VMs at max turbo (provisioned for peak).
    ScaleOut,
}

impl Environment {
    /// All environments in figure order.
    pub const ALL: [Environment; 3] = [
        Environment::Baseline,
        Environment::Overclock,
        Environment::ScaleOut,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Environment::Baseline => "Baseline",
            Environment::Overclock => "Overclock",
            Environment::ScaleOut => "ScaleOut",
        }
    }

    /// VM count and frequency for a given plan.
    pub fn setup(self, plan: FrequencyPlan) -> (usize, MegaHertz) {
        match self {
            Environment::Baseline => (1, plan.turbo()),
            Environment::Overclock => (1, plan.max_overclock()),
            Environment::ScaleOut => (2, plan.turbo()),
        }
    }
}

impl std::fmt::Display for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of one service × load × environment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceRunResult {
    /// P99 latency, ms.
    pub p99_ms: f64,
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Mean CPU utilization of the VMs.
    pub cpu_utilization: f64,
    /// Fraction of requests above the SLO.
    pub slo_miss_frac: f64,
    /// The SLO, for normalization.
    pub slo_ms: f64,
}

impl ServiceRunResult {
    /// Whether the run kept P99 below the SLO.
    pub fn meets_slo(&self) -> bool {
        self.p99_ms <= self.slo_ms
    }
}

/// Run one service at a load level in an environment.
///
/// The offered arrival rate is `load × single-VM turbo capacity` in every
/// environment (ScaleOut spreads the *same* load over two VMs, as in the
/// paper where provisioning is for the peak).
pub fn run_environment(
    spec: &ServiceSpec,
    load: LoadLevel,
    env: Environment,
    plan: FrequencyPlan,
    measure: SimDuration,
    seed: u64,
) -> ServiceRunResult {
    let rate = load.fraction() * spec.capacity_per_vm(1.0);
    run_at_rate(spec, rate, env, plan, measure, seed)
}

/// Run one service at an explicit request rate (requests/second) — the
/// Fig. 16 sweep.
pub fn run_at_rate(
    spec: &ServiceSpec,
    rate_rps: f64,
    env: Environment,
    plan: FrequencyPlan,
    measure: SimDuration,
    seed: u64,
) -> ServiceRunResult {
    let (vms, freq) = env.setup(plan);
    let schedule = RateSchedule::constant(rate_rps);
    let mut sim = MicroserviceSim::new(spec.clone(), plan.turbo(), schedule, vms, seed);
    sim.set_all_frequencies(freq);
    // Warm-up: a quarter of the measurement interval.
    let warmup = SimTime::ZERO + measure.mul_f64(0.25);
    let _ = sim.advance_window(warmup);
    let stats = sim.advance_window(warmup + measure);
    ServiceRunResult {
        p99_ms: stats.p99_ms,
        mean_ms: stats.mean_ms,
        cpu_utilization: stats.cpu_utilization,
        slo_miss_frac: stats.slo_miss_frac,
        slo_ms: spec.slo_ms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_workloads::socialnet::socialnet_service;

    fn quick(spec_name: &str, load: LoadLevel, env: Environment) -> ServiceRunResult {
        let spec = socialnet_service(spec_name).unwrap();
        run_environment(
            &spec,
            load,
            env,
            FrequencyPlan::amd_reference(),
            SimDuration::from_secs(120),
            7,
        )
    }

    #[test]
    fn environments_set_expected_topology() {
        let plan = FrequencyPlan::amd_reference();
        assert_eq!(Environment::Baseline.setup(plan), (1, MegaHertz::new(3300)));
        assert_eq!(
            Environment::Overclock.setup(plan),
            (1, MegaHertz::new(4000))
        );
        assert_eq!(Environment::ScaleOut.setup(plan), (2, MegaHertz::new(3300)));
    }

    #[test]
    fn all_environments_fine_at_low_load() {
        for env in Environment::ALL {
            let r = quick("UserTimeline", LoadLevel::Low, env);
            assert!(
                r.meets_slo(),
                "{env} should meet SLO at low load (p99 {})",
                r.p99_ms
            );
        }
    }

    #[test]
    fn overclock_beats_baseline_at_high_load() {
        let base = quick("ComposePost", LoadLevel::High, Environment::Baseline);
        let oc = quick("ComposePost", LoadLevel::High, Environment::Overclock);
        assert!(
            oc.p99_ms < base.p99_ms,
            "overclock P99 {} should beat baseline {}",
            oc.p99_ms,
            base.p99_ms
        );
    }

    #[test]
    fn scale_out_has_lowest_utilization() {
        let base = quick("HomeTimeline", LoadLevel::Medium, Environment::Baseline);
        let scale = quick("HomeTimeline", LoadLevel::Medium, Environment::ScaleOut);
        assert!(scale.cpu_utilization < base.cpu_utilization);
    }

    #[test]
    fn overclock_lowers_cpu_utilization() {
        // Fig. 16 effect at fixed RPS.
        let base = quick("Text", LoadLevel::Medium, Environment::Baseline);
        let oc = quick("Text", LoadLevel::Medium, Environment::Overclock);
        assert!(oc.cpu_utilization < base.cpu_utilization);
    }
}
